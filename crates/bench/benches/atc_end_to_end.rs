//! End-to-end ATC benchmarks: full compress + decompress through the
//! directory container, in both modes.
//!
//! Backs the headline claims: lossless ratio (Table 1) and lossy ratio
//! (Table 3 / Figure 8) at the container level, including all framing.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_bench::workloads::filtered_trace;
use atc_core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
use atc_trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atc-bench-e2e-{tag}-{}", std::process::id()))
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("atc_end_to_end");
    g.sample_size(10);
    let n = 200_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);
    g.throughput(Throughput::Elements(n as u64));

    let modes: Vec<(&str, Mode)> = vec![
        ("lossless", Mode::Lossless),
        (
            "lossy",
            Mode::Lossy(LossyConfig {
                interval_len: n / 100,
                ..LossyConfig::default()
            }),
        ),
    ];
    for (name, mode) in &modes {
        g.bench_with_input(BenchmarkId::new("compress", name), &trace, |b, t| {
            b.iter(|| {
                let dir = scratch(name);
                let _ = std::fs::remove_dir_all(&dir);
                let mut w = AtcWriter::with_options(
                    &dir,
                    mode.clone(),
                    AtcOptions {
                        codec: "bzip".into(),
                        buffer: n / 1000,
                        threads: 1,
                    },
                )
                .unwrap();
                w.code_all(t.iter().copied()).unwrap();
                let stats = w.finish().unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                black_box(stats)
            });
        });

        // Prepare a compressed directory once for decode benchmarking.
        let dir = scratch(&format!("{name}-dec"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = AtcWriter::with_options(
            &dir,
            mode.clone(),
            AtcOptions {
                codec: "bzip".into(),
                buffer: n / 1000,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(trace.iter().copied()).unwrap();
        w.finish().unwrap();
        g.bench_function(BenchmarkId::new("decompress", name), |b| {
            b.iter(|| {
                let mut r = AtcReader::open(&dir).unwrap();
                black_box(r.decode_all().unwrap().len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

/// Thread-count axis through the full container on the bzip backend: the
/// acceptance bar for the parallel pipeline is >= 2x compression
/// throughput at 4 threads vs 1.
fn bench_end_to_end_threads(c: &mut Criterion) {
    use atc_core::ReadOptions;

    let mut g = c.benchmark_group("atc_end_to_end_threads");
    g.sample_size(10);
    let n = 2_000_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);
    g.throughput(Throughput::Elements(n as u64));

    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("compress_lossless", threads),
            &trace,
            |b, t| {
                // Directory teardown/creation happens in setup, outside
                // the timed routine — the number this bench produces is
                // the compression axis the >=2x acceptance bar is about.
                b.iter_batched(
                    || {
                        let dir = scratch(&format!("mt-{threads}"));
                        let _ = std::fs::remove_dir_all(&dir);
                        dir
                    },
                    |dir| {
                        let mut w = AtcWriter::with_options(
                            &dir,
                            Mode::Lossless,
                            AtcOptions {
                                codec: "bzip".into(),
                                buffer: 100_000,
                                threads,
                            },
                        )
                        .unwrap();
                        w.code_all(t.iter().copied()).unwrap();
                        black_box(w.finish().unwrap())
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        let _ = std::fs::remove_dir_all(scratch(&format!("mt-{threads}")));
    }

    // Decode side: one directory, read back at each thread count.
    let dir = scratch("mt-dec");
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossless,
        AtcOptions {
            codec: "bzip".into(),
            buffer: 100_000,
            threads: 4,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();
    for threads in [1usize, 2, 4, 8] {
        g.bench_function(BenchmarkId::new("decompress_lossless", threads), |b| {
            b.iter(|| {
                let mut r = AtcReader::open_with(
                    &dir,
                    ReadOptions {
                        threads,
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                black_box(r.decode_all().unwrap().len())
            });
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_end_to_end, bench_end_to_end_threads);
criterion_main!(benches);
