//! End-to-end ATC benchmarks: full compress + decompress through the
//! directory container, in both modes.
//!
//! Backs the headline claims: lossless ratio (Table 1) and lossy ratio
//! (Table 3 / Figure 8) at the container level, including all framing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_bench::workloads::filtered_trace;
use atc_core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
use atc_trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atc-bench-e2e-{tag}-{}", std::process::id()))
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("atc_end_to_end");
    g.sample_size(10);
    let n = 200_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);
    g.throughput(Throughput::Elements(n as u64));

    let modes: Vec<(&str, Mode)> = vec![
        ("lossless", Mode::Lossless),
        (
            "lossy",
            Mode::Lossy(LossyConfig {
                interval_len: n / 100,
                ..LossyConfig::default()
            }),
        ),
    ];
    for (name, mode) in &modes {
        g.bench_with_input(BenchmarkId::new("compress", name), &trace, |b, t| {
            b.iter(|| {
                let dir = scratch(name);
                let _ = std::fs::remove_dir_all(&dir);
                let mut w = AtcWriter::with_options(
                    &dir,
                    mode.clone(),
                    AtcOptions {
                        codec: "bzip".into(),
                        buffer: n / 1000,
                    },
                )
                .unwrap();
                w.code_all(t.iter().copied()).unwrap();
                let stats = w.finish().unwrap();
                let _ = std::fs::remove_dir_all(&dir);
                black_box(stats)
            });
        });

        // Prepare a compressed directory once for decode benchmarking.
        let dir = scratch(&format!("{name}-dec"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = AtcWriter::with_options(
            &dir,
            mode.clone(),
            AtcOptions {
                codec: "bzip".into(),
                buffer: n / 1000,
            },
        )
        .unwrap();
        w.code_all(trace.iter().copied()).unwrap();
        w.finish().unwrap();
        g.bench_function(BenchmarkId::new("decompress", name), |b| {
            b.iter(|| {
                let mut r = AtcReader::open(&dir).unwrap();
                black_box(r.decode_all().unwrap().len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
