//! Micro-benchmarks for the bytesort transformation (forward and inverse).
//!
//! Backs Table 2: bytesort's non-codec decompression cost is the inverse
//! transform, which the paper claims is linear in time and space.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_core::bytesort::{bytesort_forward, bytesort_inverse, unshuffle, unshuffle_inverse};

fn trace(n: usize) -> Vec<u64> {
    // Two interleaved regions plus a stride: representative structure.
    (0..n as u64)
        .map(|i| match i % 3 {
            0 => 0x0010_0000_0000 + (i / 3) * 64,
            1 => 0x0001_0000_0000 + ((i * 2654435761) % 100_000) * 64,
            _ => 0x0000_0040_0000 + (i % 4096) * 16,
        })
        .collect()
}

fn bench_bytesort(c: &mut Criterion) {
    let mut g = c.benchmark_group("bytesort");
    g.sample_size(20);
    for n in [100_000usize, 1_000_000] {
        let addrs = trace(n);
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::new("forward", n), &addrs, |b, a| {
            b.iter(|| black_box(bytesort_forward(black_box(a))));
        });
        let cols = bytesort_forward(&addrs);
        g.bench_with_input(BenchmarkId::new("inverse", n), &cols, |b, cols| {
            b.iter(|| black_box(bytesort_inverse(black_box(cols)).unwrap()));
        });
        g.bench_with_input(BenchmarkId::new("unshuffle", n), &addrs, |b, a| {
            b.iter(|| black_box(unshuffle(black_box(a))));
        });
        let ucols = unshuffle(&addrs);
        g.bench_with_input(
            BenchmarkId::new("unshuffle_inverse", n),
            &ucols,
            |b, cols| {
                b.iter(|| black_box(unshuffle_inverse(black_box(cols)).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_bytesort);
criterion_main!(benches);
