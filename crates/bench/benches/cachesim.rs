//! Micro-benchmarks for the cache substrate (filter + stack simulator).
//!
//! Backs Figures 3 and 4: the stack simulator runs 5 set counts x 2 traces
//! per benchmark, so its per-access cost bounds the experiment wall time —
//! and the cache filter runs in front of *every* ingest path, so its
//! single-thread speed caps end-to-end compression throughput.
//!
//! Axes: `cache_filter/filter_200k_accesses` (the gated headline number:
//! one filter pass over a pre-generated access stream),
//! `cache_filter/batch/N` (batch-size sensitivity of the batched entry
//! point), and `cache_filter/par/W` (set-partitioned parallel filtering
//! at W partitions on a W-worker engine). `stack_sim/par_assoc_1_to_32/W`
//! mirrors the parallel axis for miss-curve sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_cache::{Cache, CacheConfig, CacheFilter, ParallelCacheFilter, ParallelStackSim, StackSim};
use atc_engine::Engine;
use atc_trace::{spec, Access};

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_filter");
    g.sample_size(10);
    let n = 200_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    // Generate once: the bench measures the filter, not the workload
    // generator it used to share its loop with.
    let accesses: Vec<Access> = p.workload(7).take(n).collect();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("filter_200k_accesses", |b| {
        let mut out = Vec::with_capacity(n);
        b.iter(|| {
            let mut f = CacheFilter::paper();
            out.clear();
            f.filter_batch(&accesses, &mut out);
            black_box(out.len())
        });
    });
    // Batch-size sensitivity: how small can an ingest adapter's read
    // chunks get before per-batch overhead shows up?
    for batch in [1_024usize, 16_384, 65_536] {
        g.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                let mut f = CacheFilter::paper();
                out.clear();
                for chunk in accesses.chunks(batch) {
                    f.filter_batch(chunk, &mut out);
                }
                black_box(out.len())
            });
        });
    }
    // Set-partitioned parallel filtering: W partitions on a W-worker
    // engine (single-core containers show parallel ≈ serial here; the
    // CI artifact carries the multi-core numbers).
    for workers in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("par", workers), &workers, |b, &workers| {
            let engine = Engine::new(workers);
            let mut out = Vec::with_capacity(n);
            b.iter(|| {
                let mut f = ParallelCacheFilter::paper(engine.clone(), workers);
                out.clear();
                f.filter_batch(&accesses, &mut out);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_stack_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_sim");
    g.sample_size(10);
    let n = 500_000usize;
    let trace: Vec<u64> = {
        let mut f = CacheFilter::paper();
        let p = spec::profile("429.mcf").unwrap();
        f.filter(p.workload(7)).take(n).collect()
    };
    g.throughput(Throughput::Elements(n as u64));
    for sets in [64usize, 1024, 16384] {
        g.bench_with_input(BenchmarkId::new("assoc_1_to_32", sets), &trace, |b, t| {
            b.iter(|| {
                let mut sim = StackSim::new(sets, 32);
                sim.run(t.iter().copied());
                black_box(sim.miss_ratio(32))
            });
        });
    }
    // The parallel sweep at the Figure 3 geometry that dominates the
    // wall time (1024 sets x 32 ways).
    for workers in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("par_assoc_1_to_32", workers),
            &trace,
            |b, t| {
                let engine = Engine::new(workers);
                b.iter(|| {
                    let mut sim = ParallelStackSim::new(1024, 32, engine.clone(), workers);
                    sim.run_batch(t);
                    black_box(sim.miss_ratio(32))
                });
            },
        );
    }
    g.bench_with_input(
        BenchmarkId::new("explicit_lru_4way", 128),
        &trace,
        |b, t| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::paper_l1());
                black_box(cache.access_batch(t));
                black_box(cache.miss_ratio())
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_filter, bench_stack_sim);
criterion_main!(benches);
