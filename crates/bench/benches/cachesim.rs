//! Micro-benchmarks for the cache substrate (filter + stack simulator).
//!
//! Backs Figures 3 and 4: the stack simulator runs 5 set counts x 2 traces
//! per benchmark, so its per-access cost bounds the experiment wall time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_cache::{Cache, CacheConfig, CacheFilter, StackSim};
use atc_trace::spec;

fn bench_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache_filter");
    g.sample_size(10);
    let n = 200_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("filter_200k_accesses", |b| {
        b.iter(|| {
            let mut f = CacheFilter::paper();
            let misses = f.filter(p.workload(7).take(n)).count();
            black_box(misses)
        });
    });
    g.finish();
}

fn bench_stack_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("stack_sim");
    g.sample_size(10);
    let n = 500_000usize;
    let trace: Vec<u64> = {
        let mut f = CacheFilter::paper();
        let p = spec::profile("429.mcf").unwrap();
        f.filter(p.workload(7)).take(n).collect()
    };
    g.throughput(Throughput::Elements(n as u64));
    for sets in [64usize, 1024, 16384] {
        g.bench_with_input(BenchmarkId::new("assoc_1_to_32", sets), &trace, |b, t| {
            b.iter(|| {
                let mut sim = StackSim::new(sets, 32);
                sim.run(t.iter().copied());
                black_box(sim.miss_ratio(32))
            });
        });
    }
    g.bench_with_input(
        BenchmarkId::new("explicit_lru_4way", 128),
        &trace,
        |b, t| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::paper_l1());
                for &a in t {
                    cache.access_block(a);
                }
                black_box(cache.miss_ratio())
            });
        },
    );
    g.finish();
}

criterion_group!(benches, bench_filter, bench_stack_sim);
criterion_main!(benches);
