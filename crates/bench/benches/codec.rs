//! Micro-benchmarks for the byte-level back ends (bzip2-class vs gzip-class
//! vs store).
//!
//! Backs Tables 1 and 2: the codec dominates compression time and
//! contributes 50–65% of decompression time in the paper's measurements.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_codec::{Bzip, Codec, Lz, Store};

/// Bytesorted-trace-like input: long runs with embedded counters.
fn structured(n: usize) -> Vec<u8> {
    (0..n)
        .map(|i| match i * 8 / n {
            0..=3 => 0u8,         // high columns: zeros
            4 => 0xF2,            // region byte
            5 => (i / 256) as u8, // slow counter
            _ => (i % 251) as u8, // fast counter
        })
        .collect()
}

fn bench_codecs(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(10);
    let n = 1 << 20;
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));

    let codecs: Vec<(&str, Box<dyn Codec>)> = vec![
        ("bzip", Box::new(Bzip::default())),
        ("lz", Box::new(Lz::default())),
        ("store", Box::new(Store)),
    ];
    for (name, codec) in &codecs {
        g.bench_with_input(BenchmarkId::new("compress", name), &data, |b, d| {
            b.iter(|| black_box(codec.compress(black_box(d))));
        });
        // Streaming entry point with a reused scratch buffer: the
        // steady-state segment path of the writers (no per-call Vec).
        g.bench_with_input(BenchmarkId::new("compress_into", name), &data, |b, d| {
            let mut scratch = Vec::new();
            b.iter(|| black_box(codec.compress_into(black_box(d), &mut scratch)));
        });
        let packed = codec.compress(&data);
        g.bench_with_input(BenchmarkId::new("decompress", name), &packed, |b, p| {
            b.iter(|| black_box(codec.decompress(black_box(p)).unwrap()));
        });
        g.bench_with_input(
            BenchmarkId::new("decompress_into", name),
            &packed,
            |b, p| {
                let mut scratch = Vec::new();
                b.iter(|| black_box(codec.decompress_into(black_box(p), &mut scratch).unwrap()));
            },
        );
    }
    g.finish();
}

/// Thread-count axis for the free-running readahead reader over a
/// many-segment stream: workers pull frames as they finish (no batch
/// barrier), so decode throughput should track the thread count on
/// multi-core hosts.
fn bench_readahead(c: &mut Criterion) {
    use atc_codec::{CodecWriter, ReadaheadReader};
    use std::io::{Read, Write};
    use std::sync::Arc;

    let mut g = c.benchmark_group("readahead");
    g.sample_size(10);
    let n = 8 << 20;
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));

    let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
    let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1 << 20);
    w.write_all(&data).unwrap();
    let file = w.finish().unwrap();

    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("bzip", threads), &file, |b, f| {
            b.iter(|| {
                let mut r = ReadaheadReader::new(
                    std::io::Cursor::new(f.clone()),
                    Arc::clone(&codec),
                    threads,
                );
                let mut back = Vec::with_capacity(n);
                r.read_to_end(&mut back).unwrap();
                black_box(back.len())
            });
        });
    }
    g.finish();
}

/// Thread-count axis for the bzip backend over a multi-block input: the
/// 900 kB blocks are independent, so compression/decompression should
/// scale with threads while emitting byte-identical streams.
fn bench_bzip_threads(c: &mut Criterion) {
    let mut g = c.benchmark_group("bzip_threads");
    g.sample_size(10);
    let n = 8 << 20; // ~9 default-size blocks
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));

    let serial = Bzip::default();
    let packed = serial.compress(&data);
    for threads in [1usize, 2, 4, 8] {
        let codec = Bzip::with_threads(threads);
        g.bench_with_input(BenchmarkId::new("compress", threads), &data, |b, d| {
            b.iter(|| black_box(codec.compress(black_box(d))));
        });
        g.bench_with_input(BenchmarkId::new("decompress", threads), &packed, |b, p| {
            b.iter(|| black_box(codec.decompress(black_box(p)).unwrap()));
        });
    }
    g.finish();
}

/// Thread-count axis for the streaming writer: segments compress on the
/// worker pool while the producer keeps feeding.
fn bench_parallel_writer(c: &mut Criterion) {
    use atc_codec::ParallelCodecWriter;
    use std::io::Write;
    use std::sync::Arc;

    let mut g = c.benchmark_group("parallel_writer");
    g.sample_size(10);
    let n = 8 << 20;
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("bzip", threads), &data, |b, d| {
            let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
            b.iter(|| {
                let mut w = ParallelCodecWriter::new(
                    Vec::with_capacity(1 << 20),
                    Arc::clone(&codec),
                    threads,
                );
                w.write_all(black_box(d)).unwrap();
                black_box(w.finish().unwrap())
            });
        });
    }
    g.finish();
}

/// CRC-32 over a 1 MiB block: every compressed block pays this on both
/// the write and the verify path, so it must run at SIMD-width speed.
fn bench_crc(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec");
    g.sample_size(20);
    let n = 1 << 20;
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("crc32", |b| {
        b.iter(|| black_box(atc_codec::crc::crc32(black_box(&data))));
    });
    g.finish();
}

fn bench_bwt(c: &mut Criterion) {
    let mut g = c.benchmark_group("bwt");
    g.sample_size(10);
    let n = 1 << 19;
    let data = structured(n);
    g.throughput(Throughput::Bytes(n as u64));
    g.bench_function("forward", |b| {
        b.iter(|| black_box(atc_codec::bwt::bwt_forward(black_box(&data))));
    });
    let (last, primary) = atc_codec::bwt::bwt_forward(&data);
    g.bench_function("inverse", |b| {
        b.iter(|| black_box(atc_codec::bwt::bwt_inverse(black_box(&last), primary).unwrap()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codecs,
    bench_bzip_threads,
    bench_parallel_writer,
    bench_readahead,
    bench_crc,
    bench_bwt
);
criterion_main!(benches);
