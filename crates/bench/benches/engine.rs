//! Work-stealing engine micro-benchmarks: fire-and-forget task
//! throughput, scoped fork/join, and a skewed-home steal scenario.
//!
//! Like the thread-axis benches, a single-core host can only show
//! multi-worker ≈ serial plus scheduling overhead; the point of the
//! worker axis is the CI runner, where the same ids land in the
//! `BENCH_ci` artifact and the `engine/` gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::mpsc;

use atc_engine::Engine;

/// A few hundred cycles of integer work — enough that a task is not pure
/// scheduler overhead, small enough that submission cost still shows.
fn spin(seed: u64) -> u64 {
    let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
    for _ in 0..256 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    x
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    let tasks = 4096usize;
    g.throughput(Throughput::Elements(tasks as u64));

    for workers in [1usize, 2, 4] {
        let engine = Engine::new(workers);

        // Fire-and-forget submit → result channel, one home deque.
        g.bench_with_input(BenchmarkId::new("submit", workers), &engine, |b, engine| {
            let home = engine.assign_home();
            b.iter(|| {
                let (tx, rx) = mpsc::channel::<u64>();
                for i in 0..tasks {
                    let tx = tx.clone();
                    engine.submit(home, move || {
                        let _ = tx.send(spin(i as u64));
                    });
                }
                drop(tx);
                black_box(rx.iter().fold(0u64, u64::wrapping_add))
            });
        });

        // Structured fork/join with stack-borrowing tasks (the Bzip
        // multi-block shape).
        g.bench_with_input(BenchmarkId::new("scope", workers), &engine, |b, engine| {
            b.iter(|| {
                let mut outs = vec![0u64; 256];
                engine.scope(|s| {
                    for (i, out) in outs.iter_mut().enumerate() {
                        s.spawn(move || {
                            *out = (0..16).fold(i as u64, |acc, _| spin(acc));
                        });
                    }
                });
                black_box(outs.iter().fold(0u64, |a, &b| a.wrapping_add(b)))
            });
        });
    }

    // The donation scenario: everything lands on one home, the other
    // workers must steal. Throughput here is the whole point of the
    // shared engine vs a static split (where 3 of 4 workers would idle).
    let engine = Engine::new(4);
    g.bench_with_input(BenchmarkId::new("steal_skewed", 4), &engine, |b, engine| {
        b.iter(|| {
            let (tx, rx) = mpsc::channel::<u64>();
            for i in 0..tasks {
                let tx = tx.clone();
                engine.submit(0, move || {
                    let _ = tx.send(spin(i as u64));
                });
            }
            drop(tx);
            black_box(rx.iter().fold(0u64, u64::wrapping_add))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
