//! Micro-benchmarks for sorted byte-histograms and interval matching.
//!
//! Backs Table 3 / the lossy path: per interval the compressor computes 8
//! histograms, sorts them, and compares against every chunk-table entry.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use atc_core::hist::{ByteHistograms, Translation};

fn addrs(n: usize, salt: u64) -> Vec<u64> {
    (0..n as u64)
        .map(|i| (i ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 12)
        .collect()
}

fn bench_histograms(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    g.sample_size(20);
    let n = 1_000_000;
    let a = addrs(n, 1);
    let b = addrs(n, 2);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("from_addrs_1M", |bch| {
        bch.iter(|| black_box(ByteHistograms::from_addrs(black_box(&a))));
    });
    let ha = ByteHistograms::from_addrs(&a);
    let hb = ByteHistograms::from_addrs(&b);
    g.bench_function("sort", |bch| {
        bch.iter(|| black_box(black_box(&ha).sorted()));
    });
    let sa = ha.sorted();
    let sb = hb.sorted();
    g.throughput(Throughput::Elements(1));
    g.bench_function("distance", |bch| {
        bch.iter(|| black_box(black_box(&sa).distance(black_box(&sb))));
    });
    g.bench_function("translation_build", |bch| {
        bch.iter(|| black_box(Translation::between(sa.permutation(0), sb.permutation(0))));
    });
    let t = Translation::between(sa.permutation(0), sb.permutation(0));
    let mut translations: [Option<Translation>; 8] = Default::default();
    translations[0] = Some(t);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("translate_1M", |bch| {
        bch.iter(|| {
            let mut acc = 0u64;
            for &x in &a {
                acc ^= atc_core::hist::translate_addr(x, &translations);
            }
            black_box(acc)
        });
    });
    g.finish();
}

criterion_group!(benches, bench_histograms);
criterion_main!(benches);
