//! Network-service benchmarks: a loopback `ReadRange` against the
//! local `read_range` it must reproduce byte-for-byte.
//!
//! The contrast between ids is the protocol's cost: `local_range` is
//! the in-process oracle; `loopback_range` pays the frame encode, two
//! socket hops, and the client-side decode for the same window; and
//! `loopback_range_warm` shows what the shared segment cache shaves
//! off the server's decode once the window is hot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_bench::workloads::filtered_trace;
use atc_cache::SegmentCache;
use atc_core::{AtcOptions, Mode};
use atc_net::{AtcClient, NetServer, ServeOptions};
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};
use atc_trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atc-bench-net-{tag}-{}", std::process::id()))
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net");
    g.sample_size(10);
    let n = 400_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);

    let root = scratch("store");
    let _ = std::fs::remove_dir_all(&root);
    let mut store = AtcStore::create(
        &root,
        Mode::Lossless,
        StoreOptions {
            shards: 3,
            policy: ShardPolicy::RoundRobin,
            atc: AtcOptions {
                codec: "lz".into(),
                buffer: 50_000,
                threads: 1,
            },
            max_buffered_bytes: None,
        },
    )
    .unwrap();
    store.code_all(trace.iter().copied()).unwrap();
    store.finish().unwrap();

    // A mid-store window: the seek machinery positions, then ~2 frames
    // per shard stream out.
    let (start, end) = (150_000u64, 250_000u64);
    let window = end - start;
    g.throughput(Throughput::Bytes(window * 8));

    g.bench_function(BenchmarkId::new("local_range", window), |b| {
        b.iter(|| {
            let mut reader = StoreReader::open(&root).unwrap();
            black_box(reader.read_range(start..end).unwrap().len())
        });
    });

    // Cold loopback: a fresh cache per iteration, so the server decodes
    // the window every time — protocol cost plus full decode cost.
    g.bench_function(BenchmarkId::new("loopback_range", window), |b| {
        b.iter(|| {
            let server = NetServer::bind(
                &root,
                "127.0.0.1:0",
                ServeOptions {
                    workers: 2,
                    segment_cache: Some(SegmentCache::isolated(64 << 20)),
                    ..ServeOptions::default()
                },
            )
            .unwrap();
            let addr = server.local_addr().unwrap();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run());
            let mut client = AtcClient::connect(addr).unwrap();
            let len = client.read_range(start..end).unwrap().len();
            handle.shutdown();
            join.join().unwrap().unwrap();
            black_box(len)
        });
    });

    // Warm loopback: one long-lived server whose cache has seen the
    // window — successive clients ride the shared decode work.
    let server = NetServer::bind(
        &root,
        "127.0.0.1:0",
        ServeOptions {
            workers: 2,
            segment_cache: Some(SegmentCache::isolated(64 << 20)),
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    {
        let mut client = AtcClient::connect(addr).unwrap();
        assert_eq!(client.read_range(start..end).unwrap().len() as u64, window);
    }
    g.bench_function(BenchmarkId::new("loopback_range_warm", window), |b| {
        b.iter(|| {
            let mut client = AtcClient::connect(addr).unwrap();
            black_box(client.read_range(start..end).unwrap().len())
        });
    });
    handle.shutdown();
    join.join().unwrap().unwrap();

    let _ = std::fs::remove_dir_all(&root);
    g.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
