//! Micro-benchmarks for the C/DC address predictor.
//!
//! Backs Figure 5: the predictor runs twice per benchmark (exact and lossy
//! traces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_bench::workloads::filtered_trace;
use atc_prefetch::{CdcConfig, CdcPredictor};
use atc_trace::spec;

fn bench_cdc(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdc_predictor");
    g.sample_size(10);
    let n = 500_000usize;
    for name in ["462.libquantum", "458.sjeng"] {
        let p = spec::profile(name).unwrap();
        let trace = filtered_trace(p, n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("run", name), &trace, |b, t| {
            b.iter(|| {
                let mut pred = CdcPredictor::new(CdcConfig::paper());
                black_box(pred.run(t.iter().copied()))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cdc);
criterion_main!(benches);
