//! Random-access benchmarks: the sidecar-driven `seek` against the
//! linear frame walk it replaces, and warm segment-cache reads against
//! cold decodes of the same window.
//!
//! All four benches end by decoding exactly one frame at the target, so
//! the contrast between ids is pure positioning cost: `sidecar` decodes
//! at most one segment before the target, `linear_skip` decodes every
//! frame in front of it, and `warm_cache` serves the target segment
//! from memory without touching the codec at all.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use atc_bench::workloads::filtered_trace;
use atc_cache::SegmentCache;
use atc_core::{AtcOptions, AtcReader, AtcWriter, Mode, ReadOptions};
use atc_trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atc-bench-seek-{tag}-{}", std::process::id()))
}

fn bench_seek(c: &mut Criterion) {
    let mut g = c.benchmark_group("seek");
    g.sample_size(10);
    let n = 400_000usize;
    let buffer = 50_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);

    let dir = scratch("trace");
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossless,
        AtcOptions {
            codec: "lz".into(),
            buffer,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();

    // Land on the last full frame so the linear walk has the whole
    // trace in front of it.
    let target = (n / buffer) as u64 - 1;
    // One frame of payload comes back per iteration; everything else the
    // iteration does is the positioning cost under measurement.
    g.throughput(Throughput::Elements(buffer as u64));

    g.bench_function(BenchmarkId::new("sidecar", target), |b| {
        b.iter(|| {
            let mut r = AtcReader::open(&dir).unwrap();
            r.seek(target).unwrap();
            black_box(r.next_frame().unwrap().unwrap().len())
        });
    });
    g.bench_function(BenchmarkId::new("linear_skip", target), |b| {
        b.iter(|| {
            let mut r = AtcReader::open(&dir).unwrap();
            for _ in 0..target {
                black_box(r.next_frame().unwrap().unwrap().len());
            }
            black_box(r.next_frame().unwrap().unwrap().len())
        });
    });

    // Cold: a fresh cache every iteration, so every segment load misses
    // and pays the full read + decompress.
    g.bench_function("cold_cache", |b| {
        b.iter(|| {
            let cache = Arc::new(SegmentCache::new(64 << 20));
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    segment_cache: Some(cache),
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            r.seek(target).unwrap();
            black_box(r.next_frame().unwrap().unwrap().len())
        });
    });
    // Warm: one shared cache pre-populated before sampling starts; the
    // seek resolves against decoded bytes already in memory.
    let warm = Arc::new(SegmentCache::new(64 << 20));
    {
        let mut r = AtcReader::open_with(
            &dir,
            ReadOptions {
                segment_cache: Some(warm.clone()),
                ..ReadOptions::default()
            },
        )
        .unwrap();
        r.seek(target).unwrap();
        r.next_frame().unwrap().unwrap();
    }
    g.bench_function("warm_cache", |b| {
        b.iter(|| {
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    segment_cache: Some(warm.clone()),
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            r.seek(target).unwrap();
            black_box(r.next_frame().unwrap().unwrap().len())
        });
    });

    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_seek);
criterion_main!(benches);
