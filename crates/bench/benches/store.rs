//! Sharded-store benchmarks: shard-count axis through the store
//! write/merged-read paths, and the frame-granular `next_frame` read
//! path against the value-granular `decode` path.
//!
//! Like the thread-axis benches, the shard axis can only show
//! sharding ≈ serial on a single-core host; the speedup materializes on
//! multi-core runners because shards share no state.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atc_bench::workloads::filtered_trace;
use atc_core::{AtcOptions, AtcReader, AtcWriter, Mode, ReadOptions};
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};
use atc_trace::spec;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("atc-bench-store-{tag}-{}", std::process::id()))
}

fn bench_store_shards(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.sample_size(10);
    let n = 400_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);
    g.throughput(Throughput::Elements(n as u64));

    let opts = |shards: usize| StoreOptions {
        shards,
        policy: ShardPolicy::RoundRobin,
        atc: AtcOptions {
            codec: "bzip".into(),
            buffer: 50_000,
            threads: 4,
        },
        max_buffered_bytes: None,
    };

    for shards in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("write", shards), &trace, |b, t| {
            b.iter_batched(
                || {
                    let root = scratch(&format!("w-{shards}"));
                    let _ = std::fs::remove_dir_all(&root);
                    root
                },
                |root| {
                    let mut s = AtcStore::create(&root, Mode::Lossless, opts(shards)).unwrap();
                    s.code_all(t.iter().copied()).unwrap();
                    black_box(s.finish().unwrap())
                },
                BatchSize::LargeInput,
            );
        });
        let _ = std::fs::remove_dir_all(scratch(&format!("w-{shards}")));

        // Merged read-back over a prepared store.
        let root = scratch(&format!("r-{shards}"));
        let _ = std::fs::remove_dir_all(&root);
        let mut s = AtcStore::create(&root, Mode::Lossless, opts(shards)).unwrap();
        s.code_all(trace.iter().copied()).unwrap();
        s.finish().unwrap();
        g.bench_function(BenchmarkId::new("read", shards), |b| {
            b.iter(|| {
                let mut r = StoreReader::open_with(
                    &root,
                    ReadOptions {
                        threads: 4,
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                black_box(r.decode_all().unwrap().len())
            });
        });
        // The pre-batching merged cursor (one value at a time through the
        // per-shard buffers): the gap to `read` is the per-value overhead
        // the frame-sized zipper removes (ROADMAP item).
        g.bench_function(BenchmarkId::new("read_stepwise", shards), |b| {
            b.iter(|| {
                let mut r = StoreReader::open_with(
                    &root,
                    ReadOptions {
                        threads: 4,
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                r.merge_batching(false);
                black_box(r.decode_all().unwrap().len())
            });
        });
        let _ = std::fs::remove_dir_all(&root);
    }

    // Track-driven exact merge under data-dependent routing: the same
    // trace packed by address region, read back in exact arrival order
    // from the recorded interleave track (vs the rotation zipper above).
    for shards in [2usize, 4] {
        let root = scratch(&format!("tr-{shards}"));
        let _ = std::fs::remove_dir_all(&root);
        let mut s = AtcStore::create(
            &root,
            Mode::Lossless,
            StoreOptions {
                policy: ShardPolicy::AddressRange { shift: 14 },
                ..opts(shards)
            },
        )
        .unwrap();
        s.code_all(trace.iter().copied()).unwrap();
        s.finish().unwrap();
        g.bench_function(BenchmarkId::new("read_interleave", shards), |b| {
            b.iter(|| {
                let mut r = StoreReader::open_with(
                    &root,
                    ReadOptions {
                        threads: 4,
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                assert!(r.merge_is_exact());
                black_box(r.decode_all().unwrap().len())
            });
        });
        let _ = std::fs::remove_dir_all(&root);
    }
    g.finish();
}

/// The zero-copy frame path against the value path on one trace: `read`
/// copies every decoded segment into the consumer's buffer, `next_frame`
/// hands column bytes to the bytesort inverse in place.
fn bench_read_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("atc_read_path");
    g.sample_size(10);
    let n = 400_000usize;
    let p = spec::profile("482.sphinx3").unwrap();
    let trace = filtered_trace(p, n, 7);
    g.throughput(Throughput::Elements(n as u64));

    let dir = scratch("paths");
    let _ = std::fs::remove_dir_all(&dir);
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossless,
        AtcOptions {
            codec: "bzip".into(),
            buffer: 50_000,
            threads: 1,
        },
    )
    .unwrap();
    w.code_all(trace.iter().copied()).unwrap();
    w.finish().unwrap();

    for threads in [1usize, 4] {
        let open = |threads: usize| {
            AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap()
        };
        g.bench_function(BenchmarkId::new("decode", threads), |b| {
            b.iter(|| {
                let mut r = open(threads);
                black_box(r.decode_all().unwrap().len())
            });
        });
        g.bench_function(BenchmarkId::new("next_frame", threads), |b| {
            b.iter(|| {
                let mut r = open(threads);
                let mut total = 0usize;
                let mut sum = 0u64;
                while let Some(frame) = r.next_frame().unwrap() {
                    total += frame.len();
                    // Touch the data so the borrow is not optimized away.
                    sum = sum.wrapping_add(frame[0]);
                }
                black_box((total, sum))
            });
        });
    }
    let _ = std::fs::remove_dir_all(&dir);
    g.finish();
}

criterion_group!(benches, bench_store_shards, bench_read_paths);
criterion_main!(benches);
