//! Micro-benchmarks for the TCgen-class baseline compressor.
//!
//! Backs Tables 1 and 2 (the `tcg` column and the TCgen decompression row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use atc_bench::workloads::filtered_trace;
use atc_tcgen::{Tcgen, TcgenConfig};
use atc_trace::spec;

fn bench_tcgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcgen");
    g.sample_size(10);
    let n = 200_000usize;
    let codec = Arc::new(atc_codec::Bzip::default());
    let tc = Tcgen::new(
        TcgenConfig {
            table_lines: 1 << 14,
        },
        codec,
    );

    for name in ["462.libquantum", "429.mcf"] {
        let p = spec::profile(name).unwrap();
        let trace = filtered_trace(p, n, 7);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("compress", name), &trace, |b, t| {
            b.iter(|| black_box(tc.compress(black_box(t))));
        });
        let packed = tc.compress(&trace);
        g.bench_with_input(BenchmarkId::new("decompress", name), &packed, |b, p| {
            b.iter(|| black_box(tc.decompress(black_box(p)).unwrap()));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_tcgen);
criterion_main!(benches);
