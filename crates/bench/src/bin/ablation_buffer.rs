//! Ablation: the bytesort buffer size B.
//!
//! §4.2 of the paper: "For bytesort, the BPA depends on the buffer size. A
//! bigger buffer means that we work with bigger blocks, where long-term
//! regularity can be exposed. Hence a bigger buffer yields a higher
//! compression ratio." This sweep measures BPA across buffer sizes for
//! bytesort and, as a control, plain byte-unshuffling (which benefits far
//! less because it never groups regions).
//!
//! ```text
//! cargo run -p atc-bench --release --bin ablation_buffer [-- --len 2000000]
//! ```

use atc_bench::workloads::{
    bpa, compress_transformed, default_codec, filtered_trace, profile_or_die, Args, Scale,
    Transform,
};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let len = scale.trace_len;
    let codec = default_codec();
    let profiles = args
        .list("profiles")
        .unwrap_or_else(|| vec!["429".into(), "483".into(), "456".into()]);

    println!("# Ablation — bytesort buffer size B (paper: bigger B, higher ratio)");
    println!("# trace length = {len}");
    println!();
    println!(
        "{:<16} {:>10} {:>12} {:>12}",
        "trace", "B", "bytesort", "unshuffle"
    );

    for name in &profiles {
        let p = profile_or_die(name);
        let trace = filtered_trace(p, len, scale.seed);
        for div in [1000usize, 100, 30, 10, 3] {
            let b = (len / div).max(1);
            let c_bs = compress_transformed(&trace, Transform::Bytesort, b, codec.as_ref());
            let c_us = compress_transformed(&trace, Transform::Unshuffle, b, codec.as_ref());
            println!(
                "{:<16} {:>10} {:>12.3} {:>12.3}",
                p.name(),
                b,
                bpa(c_bs.len(), trace.len()),
                bpa(c_us.len(), trace.len())
            );
        }
        println!();
    }
    println!("# expected shape: bytesort BPA falls monotonically-ish with B;");
    println!("# unshuffle is mostly flat (no cross-region grouping to expose)");
}
