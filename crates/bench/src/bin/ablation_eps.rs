//! Ablation: the similarity threshold ε.
//!
//! §5.2 of the paper: "If ε is too small, we obtain a low compression
//! ratio. If it is too high, the compressed trace may not accurately
//! reflect the original trace. We found experimentally that ε = 0.1
//! provides high compression ratios while preserving the memory locality."
//!
//! This sweep quantifies both sides: lossy BPA (compression) and the worst
//! miss-ratio deviation over a set of cache configurations (accuracy) as ε
//! varies.
//!
//! ```text
//! cargo run -p atc-bench --release --bin ablation_eps [-- --len 500000]
//! ```

use atc_bench::workloads::{bpa, filtered_trace, lossy_roundtrip, profile_or_die, Args, Scale};
use atc_cache::StackSim;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 500_000);
    let len = scale.trace_len;
    let interval = (len / 100).max(1);
    let buffer = (interval / 10).max(1);
    let profiles = args
        .list("profiles")
        .unwrap_or_else(|| vec!["458".into(), "470".into(), "403".into()]);

    println!("# Ablation — similarity threshold eps (paper default: 0.1)");
    println!("# trace length = {len}; L = {interval}");
    println!();
    println!(
        "{:<16} {:>6} {:>9} {:>7} {:>7} {:>10}",
        "trace", "eps", "bpa", "chunks", "imit.", "worst-dmr"
    );

    for name in &profiles {
        let p = profile_or_die(name);
        let exact = filtered_trace(p, len, scale.seed);
        let mut sims_exact = Vec::new();
        for sets in [256usize, 1024, 4096] {
            let mut s = StackSim::new(sets, 16);
            s.run(exact.iter().copied());
            sims_exact.push(s);
        }
        for eps in [0.01, 0.03, 0.1, 0.3, 1.0] {
            let (approx, stats) = lossy_roundtrip(&exact, interval, buffer, eps, true);
            let mut worst = 0.0f64;
            for (i, sets) in [256usize, 1024, 4096].iter().enumerate() {
                let mut s = StackSim::new(*sets, 16);
                s.run(approx.iter().copied());
                for ways in [1usize, 2, 4, 8, 16] {
                    worst = worst.max((sims_exact[i].miss_ratio(ways) - s.miss_ratio(ways)).abs());
                }
            }
            println!(
                "{:<16} {:>6} {:>9.3} {:>7} {:>7} {:>10.4}",
                p.name(),
                eps,
                bpa(stats.compressed_bytes as usize, exact.len()),
                stats.chunks,
                stats.imitations,
                worst
            );
        }
        println!();
    }
    println!("# expected shape: bpa falls as eps grows; worst-dmr rises as eps grows");
}
