//! Related-work baseline sweep (§3 of the paper).
//!
//! Positions bytesort against the broader lossless landscape the paper
//! cites: general-purpose compression alone (gzip/bzip2 classes), the
//! Mache/PDATS delta-coding family, byte-unshuffling, the TCgen/VPC
//! predictor family, and bytesort — all over the same traces.
//!
//! ```text
//! cargo run -p atc-bench --release --bin baselines [-- --len 1000000]
//! ```

use std::sync::Arc;

use atc_bench::workloads::{
    bpa, compress_transformed, filtered_trace, tcgen_lines_for, Args, Scale, Transform,
};
use atc_codec::{Bzip, Codec, Lz};
use atc_tcgen::{Tcgen, TcgenConfig};
use atc_trace::spec::profiles;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 1_000_000);
    let len = scale.trace_len;
    let buffer = (len / 10).max(1);
    let bzip: Arc<dyn Codec> = Arc::new(Bzip::default());
    let lz: Arc<dyn Codec> = Arc::new(Lz::default());
    let tc = Tcgen::new(
        TcgenConfig {
            table_lines: tcgen_lines_for(len),
        },
        Arc::clone(&bzip),
    );
    let selected = args.list("profiles");

    println!("# Related-work baselines — bits per address");
    println!("# trace length = {len}; transform buffer = {buffer}");
    println!("# lzraw = gzip-class alone; bzraw = bzip2-class alone;");
    println!("# delta = Mache/PDATS-style zigzag deltas + bzip2-class;");
    println!("# us/bs = unshuffle/bytesort + bzip2-class; tcg = TCgen-class");
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "trace", "lzraw", "bzraw", "delta", "us", "tcg", "bs"
    );

    let mut totals = [0.0f64; 6];
    let mut count = 0usize;
    for p in profiles() {
        if let Some(sel) = &selected {
            if !sel.iter().any(|s| s == p.name() || s == p.number()) {
                continue;
            }
        }
        let trace = filtered_trace(p, len, scale.seed);
        let row = [
            bpa(
                compress_transformed(&trace, Transform::Raw, len, lz.as_ref()).len(),
                trace.len(),
            ),
            bpa(
                compress_transformed(&trace, Transform::Raw, len, bzip.as_ref()).len(),
                trace.len(),
            ),
            bpa(
                compress_transformed(&trace, Transform::Delta, buffer, bzip.as_ref()).len(),
                trace.len(),
            ),
            bpa(
                compress_transformed(&trace, Transform::Unshuffle, buffer, bzip.as_ref()).len(),
                trace.len(),
            ),
            bpa(tc.compress(&trace).len(), trace.len()),
            bpa(
                compress_transformed(&trace, Transform::Bytesort, buffer, bzip.as_ref()).len(),
                trace.len(),
            ),
        ];
        for (t, r) in totals.iter_mut().zip(row) {
            *t += r;
        }
        count += 1;
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            p.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5]
        );
    }
    let n = count.max(1) as f64;
    println!(
        "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
        "arith. mean",
        totals[0] / n,
        totals[1] / n,
        totals[2] / n,
        totals[3] / n,
        totals[4] / n,
        totals[5] / n
    );
}
