//! `bench_gate` — compares a bench run's JSON-Lines output (written by the
//! vendored criterion when `ATC_BENCH_JSON` is set) against a checked-in
//! baseline, and fails if throughput regressed beyond tolerance.
//!
//! ```text
//! bench_gate <current.json> <baseline.json> [--prefix codec/] [--tolerance 0.20]
//! ```
//!
//! Only baseline entries whose id starts with `--prefix` (default
//! `codec/`) and that carry a throughput figure are gated; everything
//! else in the artifact is informational. An entry present in the
//! baseline but missing from the current run fails the gate (coverage
//! must not silently shrink); entries only in the current run are
//! reported but never fail.
//!
//! Baselines are runner-specific absolute numbers, so the gate is
//! one-sided: only *slower than baseline by more than the tolerance*
//! fails. To refresh the baseline after an intentional change, re-run the
//! bench-smoke recipe and copy the artifact over
//! `ci/bench_baseline.json` (see README, "CI and the bench baseline").

use std::collections::BTreeMap;
use std::process::ExitCode;

/// One parsed benchmark record.
#[derive(Debug, Clone, PartialEq)]
struct Record {
    ns_per_iter: f64,
    /// MiB/s or Melem/s, whichever the bench reports (ids are gated
    /// against themselves, so the unit always matches across files).
    throughput: Option<f64>,
}

/// Extracts the string value of `"id"` from one JSON-Lines record
/// (handles the `\"` / `\\` escapes the writer can emit).
fn parse_id(line: &str) -> Option<String> {
    let start = line.find("\"id\":\"")? + 6;
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let next = *bytes.get(i + 1)?;
                out.push(next as char);
                i += 2;
            }
            b => {
                out.push(b as char);
                i += 1;
            }
        }
    }
    None
}

/// Extracts a numeric field like `"mib_per_s":90.700` from a record.
fn parse_number(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a JSON-Lines bench file into `id -> record`, last write wins
/// (re-runs append, and the freshest number is the one that matters).
fn parse_file(text: &str) -> BTreeMap<String, Record> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some(id) = parse_id(line) else { continue };
        let Some(ns_per_iter) = parse_number(line, "ns_per_iter") else {
            continue;
        };
        let throughput =
            parse_number(line, "mib_per_s").or_else(|| parse_number(line, "melem_per_s"));
        out.insert(
            id,
            Record {
                ns_per_iter,
                throughput,
            },
        );
    }
    out
}

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run(args: &[String]) -> Result<(), String> {
    let positional: Vec<&String> = {
        let mut out = Vec::new();
        let mut skip = false;
        for a in args {
            if skip {
                skip = false;
                continue;
            }
            if a.starts_with("--") {
                skip = true;
                continue;
            }
            out.push(a);
        }
        out
    };
    let [current_path, baseline_path] = positional[..] else {
        return Err(
            "usage: bench_gate <current.json> <baseline.json> [--prefix codec/] \
             [--tolerance 0.20]"
                .into(),
        );
    };
    let prefix = flag_value(args, "--prefix").unwrap_or_else(|| "codec/".into());
    let tolerance: f64 = flag_value(args, "--tolerance")
        .map(|t| t.parse().map_err(|_| format!("bad tolerance {t:?}")))
        .transpose()?
        .unwrap_or(0.20);
    if !(0.0..1.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} outside [0, 1)"));
    }

    let current = parse_file(
        &std::fs::read_to_string(current_path)
            .map_err(|e| format!("cannot read {current_path}: {e}"))?,
    );
    let baseline = parse_file(
        &std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?,
    );

    // A deleted or silently-failing bench leaves the current run with no
    // entries under the gated prefix at all. Catch that shape up front
    // with one clear error instead of (at best) a per-id "missing"
    // failure per baseline entry — and instead of *nothing* when the
    // baseline's entries under this prefix carry no throughput figure.
    if baseline.keys().any(|id| id.starts_with(&prefix))
        && !current.keys().any(|id| id.starts_with(&prefix))
    {
        return Err(format!(
            "current run {current_path} has no entries with prefix {prefix:?} but the \
             baseline does — was the bench deleted, or did it fail to run?"
        ));
    }

    let mut failures = Vec::new();
    let mut gated = 0usize;
    for (id, base) in baseline.iter().filter(|(id, _)| id.starts_with(&prefix)) {
        let Some(base_thrpt) = base.throughput else {
            continue;
        };
        gated += 1;
        // A zero or non-finite baseline would make every later comparison
        // vacuous (a floor of 0 passes any regression, and NaN passes
        // every `<`): refuse the entry loudly instead of gating nothing.
        if !base_thrpt.is_finite() || base_thrpt <= 0.0 {
            failures.push(format!(
                "{id}: baseline records degenerate throughput {base_thrpt} — \
                 re-record the baseline (see README, \"CI and the bench baseline\")"
            ));
            continue;
        }
        match current.get(id).and_then(|r| r.throughput) {
            None => failures.push(format!(
                "{id}: present in baseline but missing from the current run"
            )),
            Some(now) if !now.is_finite() || now <= 0.0 => failures.push(format!(
                "{id}: current run records degenerate throughput {now} — \
                 the bench emitted no usable number"
            )),
            Some(now) => {
                let floor = base_thrpt * (1.0 - tolerance);
                let delta = (now / base_thrpt - 1.0) * 100.0;
                println!("{id:<44} baseline {base_thrpt:>9.1}  now {now:>9.1}  ({delta:+.1}%)");
                if now < floor {
                    failures.push(format!(
                        "{id}: throughput {now:.1} is {:.1}% below baseline {base_thrpt:.1} \
                         (tolerance {:.0}%)",
                        (1.0 - now / base_thrpt) * 100.0,
                        tolerance * 100.0
                    ));
                }
            }
        }
    }
    for id in current.keys().filter(|id| id.starts_with(&prefix)) {
        if !baseline.contains_key(id) {
            println!("{id:<44} new benchmark (not in baseline, not gated)");
        }
    }

    if gated == 0 {
        return Err(format!(
            "baseline {baseline_path} has no gated entries with prefix {prefix:?} — \
             wrong file or stale baseline"
        ));
    }
    if failures.is_empty() {
        println!(
            "bench gate OK: {gated} benchmarks within {:.0}%",
            tolerance * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench gate FAILED:\n{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"id\":\"codec/compress/bzip\",\"ns_per_iter\":11030000.0,\"mib_per_s\":90.7}\n",
        "{\"id\":\"codec/decompress/bzip\",\"ns_per_iter\":5000000.0,\"mib_per_s\":200.0}\n",
        "{\"id\":\"bwt/forward\",\"ns_per_iter\":1000.0}\n",
    );

    fn write_tmp(tag: &str, text: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("bench-gate-{tag}-{}", std::process::id()));
        std::fs::write(&path, text).unwrap();
        path
    }

    #[test]
    fn parses_records() {
        let parsed = parse_file(SAMPLE);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed["codec/compress/bzip"].throughput, Some(90.7));
        assert_eq!(parsed["bwt/forward"].throughput, None);
        assert_eq!(parsed["bwt/forward"].ns_per_iter, 1000.0);
    }

    #[test]
    fn parses_escaped_ids() {
        let parsed = parse_file("{\"id\":\"odd\\\"name\",\"ns_per_iter\":1.0}");
        assert!(parsed.contains_key("odd\"name"));
    }

    #[test]
    fn last_record_wins() {
        let text = concat!(
            "{\"id\":\"codec/x\",\"ns_per_iter\":1.0,\"mib_per_s\":10.0}\n",
            "{\"id\":\"codec/x\",\"ns_per_iter\":1.0,\"mib_per_s\":20.0}\n",
        );
        assert_eq!(parse_file(text)["codec/x"].throughput, Some(20.0));
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = write_tmp("base-ok", SAMPLE);
        let current = SAMPLE.replace("90.7", "75.0"); // -17%, inside 20%
        let cur = write_tmp("cur-ok", &current);
        let args = vec![cur.display().to_string(), base.display().to_string()];
        assert!(run(&args).is_ok());
    }

    #[test]
    fn gate_fails_beyond_tolerance() {
        let base = write_tmp("base-slow", SAMPLE);
        let current = SAMPLE.replace("90.7", "60.0"); // -34%
        let cur = write_tmp("cur-slow", &current);
        let args = vec![cur.display().to_string(), base.display().to_string()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("codec/compress/bzip"), "{err}");
    }

    #[test]
    fn gate_fails_on_missing_entry() {
        let base = write_tmp("base-miss", SAMPLE);
        let cur = write_tmp(
            "cur-miss",
            "{\"id\":\"codec/compress/bzip\",\"ns_per_iter\":1.0,\"mib_per_s\":90.7}\n",
        );
        let args = vec![cur.display().to_string(), base.display().to_string()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("codec/decompress/bzip"), "{err}");
    }

    #[test]
    fn gate_fails_on_empty_baseline_prefix() {
        let base = write_tmp(
            "base-none",
            "{\"id\":\"bwt/forward\",\"ns_per_iter\":1.0}\n",
        );
        let cur = write_tmp("cur-none", SAMPLE);
        let args = vec![cur.display().to_string(), base.display().to_string()];
        assert!(run(&args).is_err());
    }

    #[test]
    fn deleted_bench_fails_even_without_gated_throughput() {
        // Baseline lists the prefix (here with ns-only entries that the
        // throughput gate skips); the current run has nothing under it —
        // the "was the bench deleted" check must fire rather than the
        // gate passing vacuously or drowning in per-id noise.
        let base = write_tmp(
            "base-deleted",
            "{\"id\":\"codec/compress/bzip\",\"ns_per_iter\":1.0}\n",
        );
        let cur = write_tmp(
            "cur-deleted",
            "{\"id\":\"other/bench\",\"ns_per_iter\":1.0}\n",
        );
        let args = vec![cur.display().to_string(), base.display().to_string()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("no entries with prefix"), "{err}");
        assert!(err.contains("deleted"), "{err}");
    }

    #[test]
    fn zero_throughput_baseline_fails_with_message() {
        // A hand-edited or corrupted baseline with 0 (or negative/NaN)
        // throughput must fail loudly, not pass vacuously off a floor of
        // zero (or poison the comparison with NaN).
        for bad in ["0.0", "-3.5"] {
            let base = write_tmp(&format!("base-degen-{bad}"), &SAMPLE.replace("90.7", bad));
            let cur = write_tmp(&format!("cur-degen-{bad}"), SAMPLE);
            let args = vec![cur.display().to_string(), base.display().to_string()];
            let err = run(&args).unwrap_err();
            assert!(err.contains("degenerate"), "{err}");
            assert!(err.contains("codec/compress/bzip"), "{err}");
        }
    }

    #[test]
    fn zero_throughput_current_fails_with_message() {
        let base = write_tmp("base-curdegen", SAMPLE);
        let cur = write_tmp("cur-curdegen", &SAMPLE.replace("200.0", "0.0"));
        let args = vec![cur.display().to_string(), base.display().to_string()];
        let err = run(&args).unwrap_err();
        assert!(err.contains("degenerate"), "{err}");
        assert!(err.contains("codec/decompress/bzip"), "{err}");
    }

    #[test]
    fn faster_is_never_a_failure() {
        let base = write_tmp("base-fast", SAMPLE);
        let current = SAMPLE.replace("90.7", "500.0");
        let cur = write_tmp("cur-fast", &current);
        let args = vec![cur.display().to_string(), base.display().to_string()];
        assert!(run(&args).is_ok());
    }
}
