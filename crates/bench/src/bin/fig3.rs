//! Figure 3 — cache miss ratio vs associativity for exact and lossy traces.
//!
//! For each benchmark the paper plots, simulates set-associative LRU caches
//! (associativity 1..=32, several set counts) on the exact trace and on the
//! lossy-compressed ("approx") trace, and prints both curves. The paper's
//! shape to reproduce: approx tracks exact closely, preserving the curve
//! shape even where small distortions appear.
//!
//! Set counts are scaled down by default (the trace is ~50x shorter than
//! the paper's 1 B addresses); pass `--paper-sets` for the original
//! 2k..512k set counts.
//!
//! ```text
//! cargo run -p atc-bench --release --bin fig3 [-- --len 1000000 --quick]
//! ```

use atc_bench::workloads::{filtered_trace, lossy_roundtrip, Args, Scale};
use atc_cache::StackSim;

/// The 15 benchmarks shown in the paper's Figure 3.
const FIG3_TRACES: &[&str] = &[
    "400", "401", "410", "429", "435", "450", "453", "456", "458", "462", "464", "470", "473",
    "482", "483",
];

const MAX_ASSOC: usize = 32;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let len = scale.trace_len;
    // The paper uses 100 intervals over 1 B addresses with L = 10 M, which
    // covers every benchmark's working set several times per interval. At
    // reduced trace lengths that *ratio* (L >> footprint) is what must be
    // preserved, so the default here is 20 intervals per trace.
    let interval = (len / args.get_or("intervals", 20)).max(1);
    let buffer = (interval / 10).max(1);

    let set_counts: Vec<usize> = if args.flag("paper-sets") {
        vec![2 << 10, 8 << 10, 32 << 10, 128 << 10, 512 << 10]
    } else {
        vec![64, 256, 1024, 4096, 16384]
    };

    println!("# Figure 3 — miss ratio vs associativity (LRU), exact vs approx");
    println!("# trace length = {len}; L = {interval}; eps = 0.1; sets = {set_counts:?}");
    println!("# columns: trace sets assoc exact approx");
    println!();

    let selected = args.list("profiles");
    let mut worst: Vec<(String, f64)> = Vec::new();

    for name in FIG3_TRACES {
        if let Some(sel) = &selected {
            if !sel.iter().any(|s| s == name || s.starts_with(name)) {
                continue;
            }
        }
        let p = atc_bench::workloads::profile_or_die(name);
        let exact = filtered_trace(p, len, scale.seed);
        let (approx, _) = lossy_roundtrip(&exact, interval, buffer, 0.1, true);

        let mut max_delta = 0.0f64;
        for &sets in &set_counts {
            let mut sim_exact = StackSim::new(sets, MAX_ASSOC);
            sim_exact.run(exact.iter().copied());
            let mut sim_approx = StackSim::new(sets, MAX_ASSOC);
            sim_approx.run(approx.iter().copied());
            for assoc in [1usize, 2, 4, 8, 16, 24, 32] {
                let e = sim_exact.miss_ratio(assoc);
                let a = sim_approx.miss_ratio(assoc);
                max_delta = max_delta.max((e - a).abs());
                println!(
                    "{:<14} {:>7} {:>5} {:>8.4} {:>8.4}",
                    p.name(),
                    sets,
                    assoc,
                    e,
                    a
                );
            }
        }
        worst.push((p.name().to_string(), max_delta));
        println!();
    }

    println!("# max |exact - approx| miss-ratio deviation per trace:");
    for (name, d) in &worst {
        println!("#   {name:<16} {d:.4}");
    }
}
