//! Figure 4 — the impact of disabling byte translation (trace 470).
//!
//! The paper's ablation: on the lbm-like phased trace, lossy compression
//! *with* byte translation tracks the exact miss-ratio curve; with
//! translation disabled, imitated intervals replay the chunk's own
//! addresses, the apparent footprint shrinks, and "the cache size that is
//! necessary to remove capacity misses looks twice smaller than it is in
//! reality".
//!
//! ```text
//! cargo run -p atc-bench --release --bin fig4 [-- --len 1000000 --sets 8192]
//! ```

use atc_bench::workloads::{filtered_trace, lossy_roundtrip, profile_or_die, Args, Scale};
use atc_cache::StackSim;

const MAX_ASSOC: usize = 32;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 1_000_000);
    let len = scale.trace_len;
    let interval = (len / 100).max(1);
    let buffer = (interval / 10).max(1);
    // Paper: 256k sets on a 1 B trace; scaled default 8k.
    let sets: usize = args.get_or("sets", 8192);

    let p = profile_or_die(&args.get_or("profile", "470".to_string()));
    println!("# Figure 4 — byte translation ablation on {}", p.name());
    println!("# trace length = {len}; L = {interval}; sets = {sets}");
    println!("# columns: assoc exact with-translation no-translation");
    println!();

    let exact = filtered_trace(p, len, scale.seed);
    let (with_t, stats_with) = lossy_roundtrip(&exact, interval, buffer, 0.1, true);
    let (without_t, stats_without) = lossy_roundtrip(&exact, interval, buffer, 0.1, false);

    let curve = |trace: &[u64]| {
        let mut sim = StackSim::new(sets, MAX_ASSOC);
        sim.run(trace.iter().copied());
        sim.miss_curve()
    };
    let c_exact = curve(&exact);
    let c_with = curve(&with_t);
    let c_without = curve(&without_t);

    for a in 1..=MAX_ASSOC {
        println!(
            "{:>5} {:>9.4} {:>9.4} {:>9.4}",
            a,
            c_exact[a - 1],
            c_with[a - 1],
            c_without[a - 1]
        );
    }

    println!();
    println!(
        "# chunks: with translation = {}, without = {}",
        stats_with.chunks, stats_without.chunks
    );
    // Quantify the myopic-interval distortion: distinct blocks seen.
    let distinct = |t: &[u64]| {
        let mut v: Vec<u64> = t.to_vec();
        v.sort_unstable();
        v.dedup();
        v.len()
    };
    let (de, dw, dn) = (distinct(&exact), distinct(&with_t), distinct(&without_t));
    println!("# distinct blocks: exact {de}, with translation {dw}, without {dn}");
    println!(
        "# footprint preserved: {:.0}% with translation, {:.0}% without (paper: ~2x shrink without)",
        dw as f64 / de as f64 * 100.0,
        dn as f64 / de as f64 * 100.0
    );
}
