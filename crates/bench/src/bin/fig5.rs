//! Figure 5 — C/DC address predictor on exact vs lossy traces.
//!
//! The paper simulates a C/DC predictor (64 KB CZones, 256-entry index
//! table, 256-entry GHB, 2-delta correlation) over each exact trace and its
//! lossy-compressed counterpart, comparing the fractions of non-predicted,
//! correctly predicted and mispredicted addresses. The shape to reproduce:
//! the two bars look alike for every trace, with only small distortions.
//!
//! ```text
//! cargo run -p atc-bench --release --bin fig5 [-- --len 1000000 --quick]
//! ```

use atc_bench::workloads::{filtered_trace, lossy_roundtrip, pct, Args, Scale};
use atc_prefetch::{CdcConfig, CdcPredictor};
use atc_trace::spec::profiles;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let len = scale.trace_len;
    // The paper uses 100 intervals over 1 B addresses with L = 10 M, which
    // covers every benchmark's working set several times per interval. At
    // reduced trace lengths that *ratio* (L >> footprint) is what must be
    // preserved, so the default here is 20 intervals per trace.
    let interval = (len / args.get_or("intervals", 20)).max(1);
    let buffer = (interval / 10).max(1);
    let selected = args.list("profiles");

    println!("# Figure 5 — C/DC predictor, exact vs lossy traces");
    println!("# trace length = {len}; L = {interval}; eps = 0.1");
    println!("# CZone 64 KB, IT 256, GHB 256, 2-delta correlation");
    println!();
    println!(
        "{:<16} {:<7} {:>9} {:>9} {:>9}",
        "trace", "variant", "non-pred", "correct", "incorrect"
    );

    let mut max_shift = 0.0f64;
    for p in profiles() {
        if let Some(sel) = &selected {
            if !sel.iter().any(|s| s == p.name() || s == p.number()) {
                continue;
            }
        }
        let exact = filtered_trace(p, len, scale.seed);
        let (approx, _) = lossy_roundtrip(&exact, interval, buffer, 0.1, true);

        let run = |trace: &[u64]| {
            let mut pred = CdcPredictor::new(CdcConfig::paper());
            pred.run(trace.iter().copied())
        };
        let se = run(&exact);
        let sa = run(&approx);

        println!(
            "{:<16} {:<7} {:>9} {:>9} {:>9}",
            p.name(),
            "exact",
            pct(se.non_predicted_fraction()),
            pct(se.correct_fraction()),
            pct(se.incorrect_fraction())
        );
        println!(
            "{:<16} {:<7} {:>9} {:>9} {:>9}",
            "",
            "lossy",
            pct(sa.non_predicted_fraction()),
            pct(sa.correct_fraction()),
            pct(sa.incorrect_fraction())
        );
        let shift = (se.correct_fraction() - sa.correct_fraction())
            .abs()
            .max((se.non_predicted_fraction() - sa.non_predicted_fraction()).abs());
        max_shift = max_shift.max(shift);
    }

    println!();
    println!(
        "# largest exact-vs-lossy category shift: {:.1} percentage points",
        max_shift * 100.0
    );
}
