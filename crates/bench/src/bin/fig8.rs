//! Figure 8 — lossy compression of a random 64-bit value stream.
//!
//! The paper pipes 100 M random 64-bit values (800 MB) through `bin2atc` in
//! lossy mode: every interval of L = 10 M looks like the first one, so a
//! single chunk is stored plus the byte-translation records in INFO, giving
//! a compression ratio of 10. This binary replays that demonstration at
//! configurable scale (default 10 M values, L = 1 M: same 10-intervals
//! shape).
//!
//! ```text
//! cargo run -p atc-bench --release --bin fig8 [-- --len 10000000]
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use atc_bench::workloads::{Args, Scale};
use atc_core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 10_000_000);
    let len = scale.trace_len;
    let interval = args.get_or("interval", (len / 10).max(1));
    let buffer = (interval / 10).max(1);

    println!("# Figure 8 — 'cat /dev/urandom | bin2atc foobar' at scale");
    println!("# values = {len} (paper: 100 M); L = {interval} (paper: 10 M)");
    println!();

    let dir = std::env::temp_dir().join(format!("atc-fig8-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let cfg = LossyConfig {
        interval_len: interval,
        ..LossyConfig::default()
    };
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(cfg),
        AtcOptions {
            codec: "bzip".into(),
            buffer,
            threads: 1,
        },
    )
    .expect("create trace dir");

    let mut rng = StdRng::seed_from_u64(scale.seed);
    for _ in 0..len {
        w.code(rng.random::<u64>()).expect("compress");
    }
    let stats = w.finish().expect("finish");

    // Mirror the paper's `du -b foobar/*` output.
    println!("% du -b {}/*", dir.display());
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("read dir")
        .map(|e| e.expect("dir entry"))
        .collect();
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        println!(
            "{:>12} {}",
            e.metadata().expect("metadata").len(),
            e.path().display()
        );
    }

    // Mirror `atc2bin foobar | wc -c`.
    let mut r = AtcReader::open(&dir).expect("reopen");
    let mut n = 0u64;
    while let Some(_v) = r.decode().expect("decode") {
        n += 1;
    }
    println!("% atc2bin | wc -c");
    println!("{:>12}", n * 8);

    println!();
    println!(
        "# chunks stored: {} of {} intervals ({} imitations)",
        stats.chunks, stats.intervals, stats.imitations
    );
    println!(
        "# compression ratio: {:.1}x (paper: ~10x with the same interval count)",
        stats.ratio()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
