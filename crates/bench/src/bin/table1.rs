//! Table 1 — bits per address for five lossless pipelines over the 22
//! SPEC-like traces.
//!
//! Columns (as in the paper): `bz2` = codec alone, `us` =
//! byte-unshuffling + codec, `tcg` = TCgen-class predictor compressor
//! (memory matched to the
//! big bytesort), `bs1` = bytesort with B = trace/100 (the paper's 1 M over
//! 100 M), `bs10` = bytesort with B = trace/10 (the paper's 10 M).
//!
//! ```text
//! cargo run -p atc-bench --release --bin table1 [-- --len 2000000 --quick]
//! ```

use std::sync::Arc;

use atc_bench::workloads::{
    bpa, compress_transformed, default_codec, filtered_trace, tcgen_lines_for, Args, Scale,
    Transform,
};
use atc_tcgen::{Tcgen, TcgenConfig};
use atc_trace::spec::profiles;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let codec = default_codec();
    let selected = args.list("profiles");

    let len = scale.trace_len;
    let b1 = (len / 100).max(1);
    let b10 = (len / 10).max(1);
    let lines = tcgen_lines_for(len);

    println!("# Table 1 — bits per address (smaller is better)");
    println!("# trace length = {len} filtered addresses per benchmark (paper: 100 M)");
    println!("# bs1 buffer B = {b1} (paper: 1 M), bs10 buffer B = {b10} (paper: 10 M)");
    println!("# tcgen tables = {lines} lines x (DFCM3[2], FCM3[3], FCM2[3], FCM1[3])");
    println!();
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "trace", "bz2", "us", "tcg", "bs1", "bs10"
    );

    let mut totals = [0.0f64; 5];
    let mut sizes = [0u64; 5]; // total compressed bytes per method
    let mut count = 0usize;

    for p in profiles() {
        if let Some(sel) = &selected {
            if !sel.iter().any(|s| s == p.name() || s == p.number()) {
                continue;
            }
        }
        let trace = filtered_trace(p, len, scale.seed);

        let c_bz2 = compress_transformed(&trace, Transform::Raw, len.max(1), codec.as_ref());
        let c_us = compress_transformed(&trace, Transform::Unshuffle, b10, codec.as_ref());
        let tc = Tcgen::new(TcgenConfig { table_lines: lines }, Arc::clone(&codec));
        let c_tcg = tc.compress(&trace);
        let c_bs1 = compress_transformed(&trace, Transform::Bytesort, b1, codec.as_ref());
        let c_bs10 = compress_transformed(&trace, Transform::Bytesort, b10, codec.as_ref());

        let row = [
            bpa(c_bz2.len(), trace.len()),
            bpa(c_us.len(), trace.len()),
            bpa(c_tcg.len(), trace.len()),
            bpa(c_bs1.len(), trace.len()),
            bpa(c_bs10.len(), trace.len()),
        ];
        for (t, r) in totals.iter_mut().zip(row) {
            *t += r;
        }
        for (s, c) in sizes.iter_mut().zip([
            c_bz2.len(),
            c_us.len(),
            c_tcg.len(),
            c_bs1.len(),
            c_bs10.len(),
        ]) {
            *s += c as u64;
        }
        count += 1;
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            p.name(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        );
    }

    if count == 0 {
        eprintln!("no profiles selected");
        std::process::exit(2);
    }
    let n = count as f64;
    println!(
        "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
        "arith. mean",
        totals[0] / n,
        totals[1] / n,
        totals[2] / n,
        totals[3] / n,
        totals[4] / n
    );

    // The paper's §4.2 savings claims, recomputed on total storage.
    let save = |a: u64, b: u64| (1.0 - b as f64 / a as f64) * 100.0;
    println!();
    println!("# aggregate storage savings (paper's §4.2 claims in parentheses):");
    println!("#   us   vs bz2 : {:5.1}%  (38%)", save(sizes[0], sizes[1]));
    println!("#   tcg  vs us  : {:5.1}%  (33%)", save(sizes[1], sizes[2]));
    println!("#   bs10 vs tcg : {:5.1}%  (25%)", save(sizes[2], sizes[4]));
    println!("#   bs1  vs tcg : {:5.1}%  ( 8%)", save(sizes[2], sizes[3]));
}
