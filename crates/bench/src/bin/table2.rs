//! Table 2 — decompression time of the 22 traces for TCgen vs bytesort.
//!
//! Reports total wall time, the byte-level codec's contribution, and the
//! decode rate in addresses/second — the three rows of the paper's Table 2.
//! The paper's shape to reproduce: bytesort decodes faster than TCgen, and
//! the codec contributes ~50% of TCgen's time vs ~65% of bytesort's.
//!
//! ```text
//! cargo run -p atc-bench --release --bin table2 [-- --len 2000000 --quick]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atc_bench::workloads::{
    compress_transformed, decompress_transformed, default_codec, filtered_trace, tcgen_lines_for,
    Args, Scale, Transform,
};
use atc_codec::{Codec, CodecError};
use atc_tcgen::{Tcgen, TcgenConfig};
use atc_trace::spec::profiles;

/// Codec wrapper that accumulates time spent in `decompress`, so the
/// byte-level contribution is measured *inside* the real decode pass
/// (avoiding cold-cache bias from a separate pass).
#[derive(Debug)]
struct TimingCodec {
    inner: Arc<dyn Codec>,
    decompress_nanos: AtomicU64,
}

impl TimingCodec {
    fn new(inner: Arc<dyn Codec>) -> Self {
        Self {
            inner,
            decompress_nanos: AtomicU64::new(0),
        }
    }

    fn take(&self) -> Duration {
        // ordering: Relaxed — single-purpose timing accumulator, read
        // after the measured work completes on this thread.
        Duration::from_nanos(self.decompress_nanos.swap(0, Ordering::Relaxed))
    }
}

impl Codec for TimingCodec {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        self.inner.compress(data)
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let t0 = Instant::now();
        let out = self.inner.decompress(data);
        self.decompress_nanos
            // ordering: Relaxed — timing accumulator; the engine's task
            // handshake publishes it before `take` runs.
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }
}

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let codec = default_codec();

    let len = scale.trace_len;
    let b1 = (len / 100).max(1);
    let b10 = (len / 10).max(1);
    let lines = tcgen_lines_for(len);
    let tc = Tcgen::new(TcgenConfig { table_lines: lines }, Arc::clone(&codec));

    println!("# Table 2 — decompression of the 22 traces");
    println!("# trace length = {len} filtered addresses per benchmark (paper: 100 M)");
    println!();

    // Compress all traces with the three methods under comparison.
    let mut packed_tcg = Vec::new();
    let mut packed_bs1 = Vec::new();
    let mut packed_bs10 = Vec::new();
    let mut total_addrs = 0u64;
    for p in profiles() {
        let trace = filtered_trace(p, len, scale.seed);
        total_addrs += trace.len() as u64;
        packed_tcg.push(tc.compress(&trace));
        packed_bs1.push(compress_transformed(
            &trace,
            Transform::Bytesort,
            b1,
            codec.as_ref(),
        ));
        packed_bs10.push(compress_transformed(
            &trace,
            Transform::Bytesort,
            b10,
            codec.as_ref(),
        ));
    }

    // Decompress each set, timing total and codec-only contributions.
    let time_bytesort = |packed: &[Vec<u8>]| -> (Duration, Duration) {
        let t0 = Instant::now();
        let mut codec_time = Duration::ZERO;
        let mut produced = 0u64;
        for data in packed {
            let (addrs, ct) = decompress_transformed(data, Transform::Bytesort, codec.as_ref());
            produced += addrs.len() as u64;
            codec_time += ct;
        }
        assert_eq!(produced, total_addrs);
        (t0.elapsed(), codec_time)
    };

    // TCgen: measure the codec contribution inside the real decode pass via
    // a timing-wrapper codec.
    let timing = Arc::new(TimingCodec::new(Arc::clone(&codec)));
    let tc_timed = Tcgen::new(
        TcgenConfig { table_lines: lines },
        Arc::clone(&timing) as Arc<dyn Codec>,
    );
    let (tcg_total, tcg_codec_time) = {
        let t0 = Instant::now();
        let mut produced = 0u64;
        for data in &packed_tcg {
            produced += tc_timed.decompress(data).unwrap().len() as u64;
        }
        assert_eq!(produced, total_addrs);
        (t0.elapsed(), timing.take())
    };

    let (bs1_total, bs1_codec) = time_bytesort(&packed_bs1);
    let (bs10_total, bs10_codec) = time_bytesort(&packed_bs10);

    let rate = |d: Duration| total_addrs as f64 / d.as_secs_f64() / 1e6;
    println!(
        "{:<24} {:>12} {:>14} {:>14}",
        "", "TCgen", "bytesort 1%", "bytesort 10%"
    );
    println!(
        "{:<24} {:>12.2} {:>14.2} {:>14.2}",
        "total time (sec)",
        tcg_total.as_secs_f64(),
        bs1_total.as_secs_f64(),
        bs10_total.as_secs_f64()
    );
    println!(
        "{:<24} {:>12.2} {:>14.2} {:>14.2}",
        "codec contrib. (sec)",
        tcg_codec_time.as_secs_f64(),
        bs1_codec.as_secs_f64(),
        bs10_codec.as_secs_f64()
    );
    println!(
        "{:<24} {:>12.2} {:>14.2} {:>14.2}",
        "addr/second (x10^6)",
        rate(tcg_total),
        rate(bs1_total),
        rate(bs10_total)
    );
    println!();
    println!(
        "# speedup vs TCgen: bs1 {:4.0}%, bs10 {:4.0}%  (paper: 40% and 26%)",
        (tcg_total.as_secs_f64() / bs1_total.as_secs_f64() - 1.0) * 100.0,
        (tcg_total.as_secs_f64() / bs10_total.as_secs_f64() - 1.0) * 100.0
    );
}
