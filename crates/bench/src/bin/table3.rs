//! Table 3 — bits per address, lossless vs lossy compression.
//!
//! The paper compresses 1 B-address traces with (a) bytesort (buffer 1 M)
//! and (b) the lossy scheme with interval length L = 10 M and ε = 0.1, i.e.
//! 100 intervals per trace and B = L/10. This binary keeps those ratios at
//! configurable scale: L = len/100, B = L/10.
//!
//! ```text
//! cargo run -p atc-bench --release --bin table3 [-- --len 2000000 --quick]
//! ```

use atc_bench::workloads::{
    bpa, compress_transformed, default_codec, filtered_trace, Args, Scale, Transform,
};
use atc_core::{AtcOptions, AtcWriter, LossyConfig, Mode};
use atc_trace::spec::profiles;

fn main() {
    let args = Args::parse();
    let scale = Scale::from_args(&args, 2_000_000);
    let codec = default_codec();

    let len = scale.trace_len;
    let interval = (len / 100).max(1);
    let buffer = (interval / 10).max(1);
    let threshold = args.get_or("threshold", 0.1);

    println!("# Table 3 — bits per address, lossless vs lossy");
    println!(
        "# trace length = {len} (paper: 1 B); L = {interval} (paper: 10 M); eps = {threshold}"
    );
    println!("# lossless = bytesort with B = {buffer} (paper: 1 M)");
    println!();
    println!(
        "{:<16} {:>9} {:>9} {:>7} {:>7}",
        "trace", "lossless", "lossy", "chunks", "imit."
    );

    let tmp = std::env::temp_dir().join(format!("atc-table3-{}", std::process::id()));
    let mut sum_lossless = 0.0;
    let mut sum_lossy = 0.0;
    let mut count = 0usize;

    for p in profiles() {
        let trace = filtered_trace(p, len, scale.seed);

        let c_lossless = compress_transformed(&trace, Transform::Bytesort, buffer, codec.as_ref());
        let bpa_lossless = bpa(c_lossless.len(), trace.len());

        let dir = tmp.join(p.number());
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = LossyConfig {
            interval_len: interval,
            threshold,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "bzip".into(),
                buffer,
                threads: 1,
            },
        )
        .expect("create trace dir");
        w.code_all(trace.iter().copied()).expect("compress");
        let stats = w.finish().expect("finish");
        let bpa_lossy = stats.bits_per_address();

        sum_lossless += bpa_lossless;
        sum_lossy += bpa_lossy;
        count += 1;
        println!(
            "{:<16} {:>9.3} {:>9.3} {:>7} {:>7}",
            p.name(),
            bpa_lossless,
            bpa_lossy,
            stats.chunks,
            stats.imitations
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    let n = count as f64;
    println!(
        "{:<16} {:>9.3} {:>9.3}",
        "arith. mean",
        sum_lossless / n,
        sum_lossy / n
    );
    println!();
    println!("# paper's means: lossless 3.39, lossy 0.72 (ratio ~4.7x)");
    println!(
        "# measured ratio: {:.1}x",
        (sum_lossless / n) / (sum_lossy / n).max(1e-9)
    );
    let _ = std::fs::remove_dir_all(&tmp);
}
