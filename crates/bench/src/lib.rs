//! # atc-bench — experiment harness
//!
//! Binaries regenerating every table and figure of the paper's evaluation
//! (see `src/bin/`) plus criterion micro-benchmarks (see `benches/`).
//! Shared workload plumbing lives in this library.

pub mod workloads;
