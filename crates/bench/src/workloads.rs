//! Shared experiment plumbing: trace production, transform+codec pipelines,
//! and a tiny CLI-flag parser used by every experiment binary.

// atclint: file-allow(library-unwrap) -- bench harness: experiment setup
// failure (temp dirs, roundtrips of freshly written traces) has no
// recovery story; fail fast with a message beats threading Result
// through every table generator.

use std::sync::Arc;
use std::time::{Duration, Instant};

use atc_cache::CacheFilter;
use atc_codec::{varint, Bzip, Codec};
use atc_core::bytesort;
use atc_trace::spec::{profile, Profile};

/// Produces the first `len` cache-filtered block addresses of a profile,
/// using the paper's L1 filter (32 KB 4-way LRU I+D).
pub fn filtered_trace(p: &Profile, len: usize, seed: u64) -> Vec<u64> {
    let mut filter = CacheFilter::paper();
    filter.filter(p.workload(seed)).take(len).collect()
}

/// Looks up a profile or panics with a helpful message.
pub fn profile_or_die(name: &str) -> &'static Profile {
    profile(name).unwrap_or_else(|| {
        eprintln!("unknown profile {name:?}; known profiles:");
        for p in atc_trace::spec::profiles() {
            eprintln!("  {}", p.name());
        }
        std::process::exit(2);
    })
}

/// Bits per address of a compressed representation.
pub fn bpa(compressed_bytes: usize, addrs: usize) -> f64 {
    if addrs == 0 {
        0.0
    } else {
        compressed_bytes as f64 * 8.0 / addrs as f64
    }
}

/// The default back-end codec used by all experiments (the bzip2 stand-in).
pub fn default_codec() -> Arc<dyn Codec> {
    Arc::new(Bzip::default())
}

/// Which reversible transform to apply before the byte-level codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// None: raw little-endian addresses (the paper's `bz2` column).
    Raw,
    /// Successive-delta coding (zigzag varints), the Mache/PDATS family of
    /// §3's related work.
    Delta,
    /// Byte-unshuffling only (the `us` column).
    Unshuffle,
    /// Full bytesort (the `bs1`/`bs10` columns).
    Bytesort,
}

/// Compresses a trace with `transform` applied per `buffer`-address frame,
/// then the codec over the whole framed stream.
///
/// This isolates exactly what Table 1 measures: transformation + bzip2,
/// without container overhead.
pub fn compress_transformed(
    trace: &[u64],
    transform: Transform,
    buffer: usize,
    codec: &dyn Codec,
) -> Vec<u8> {
    let mut raw = Vec::with_capacity(trace.len() * 8 + 16);
    for chunk in trace.chunks(buffer.max(1)) {
        varint::write_u64(&mut raw, chunk.len() as u64).expect("vec write");
        match transform {
            Transform::Raw => {
                for &a in chunk {
                    raw.extend_from_slice(&a.to_le_bytes());
                }
            }
            Transform::Delta => {
                let mut prev = 0u64;
                for &a in chunk {
                    varint::write_i64(&mut raw, a.wrapping_sub(prev) as i64).expect("vec write");
                    prev = a;
                }
            }
            Transform::Unshuffle => {
                for col in bytesort::unshuffle(chunk) {
                    raw.extend_from_slice(&col);
                }
            }
            Transform::Bytesort => {
                for col in bytesort::bytesort_forward(chunk) {
                    raw.extend_from_slice(&col);
                }
            }
        }
    }
    codec.compress(&raw)
}

/// Inverts [`compress_transformed`]; returns the trace and the time spent
/// inside the byte-level codec alone (the paper's "bzip2 contribution" of
/// Table 2).
pub fn decompress_transformed(
    data: &[u8],
    transform: Transform,
    codec: &dyn Codec,
) -> (Vec<u64>, Duration) {
    let t0 = Instant::now();
    let raw = codec.decompress(data).expect("experiment data is valid");
    let codec_time = t0.elapsed();
    let mut out = Vec::new();
    let mut cur = &raw[..];
    while !cur.is_empty() {
        let n = varint::read_u64(&mut cur).expect("frame header") as usize;
        match transform {
            Transform::Raw => {
                for i in 0..n {
                    out.push(u64::from_le_bytes(
                        cur[i * 8..i * 8 + 8].try_into().expect("8 bytes"),
                    ));
                }
                cur = &cur[n * 8..];
            }
            Transform::Delta => {
                let mut prev = 0u64;
                for _ in 0..n {
                    let d = varint::read_i64(&mut cur).expect("delta varint");
                    prev = prev.wrapping_add(d as u64);
                    out.push(prev);
                }
            }
            Transform::Unshuffle => {
                let cols: Vec<Vec<u8>> = (0..8).map(|j| cur[j * n..(j + 1) * n].to_vec()).collect();
                out.extend(bytesort::unshuffle_inverse(&cols).expect("valid columns"));
                cur = &cur[n * 8..];
            }
            Transform::Bytesort => {
                let cols: Vec<Vec<u8>> = (0..8).map(|j| cur[j * n..(j + 1) * n].to_vec()).collect();
                out.extend(bytesort::bytesort_inverse(&cols).expect("valid columns"));
                cur = &cur[n * 8..];
            }
        }
    }
    (out, codec_time)
}

/// TCgen predictor-table lines matched to the big-bytesort memory footprint
/// at this trace length (the paper matches 2^20 lines to B = 10 M).
pub fn tcgen_lines_for(trace_len: usize) -> usize {
    // big bytesort memory ~ 2 buffers of (len/10) addresses * 8 B;
    // tcgen memory ~ lines * 11 slots * 8 B  =>  lines ~ len / 69.
    (trace_len / 64).next_power_of_two().max(1024)
}

/// Minimal flag parser: `--key value` pairs plus bare flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse() -> Self {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 < argv.len() && !argv[i + 1].starts_with("--") {
                    pairs.push((key.to_string(), argv[i + 1].clone()));
                    i += 2;
                } else {
                    flags.push(key.to_string());
                    i += 1;
                }
            } else {
                flags.push(a.clone());
                i += 1;
            }
        }
        Self { pairs, flags }
    }

    /// Value of `--key`, parsed.
    pub fn get<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.parse().ok())
    }

    /// Value of `--key` or a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.get(key).unwrap_or(default)
    }

    /// Whether a bare `--flag` was passed.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Comma-separated list value of `--key`.
    pub fn list(&self, key: &str) -> Option<Vec<String>> {
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.split(',').map(str::to_string).collect())
    }
}

/// Standard experiment scale knobs shared by the binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Filtered addresses per trace.
    pub trace_len: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Scale {
    /// Reads `--len` and `--seed`, with `--quick` shrinking the default.
    pub fn from_args(args: &Args, default_len: usize) -> Self {
        let quick = args.flag("quick");
        let trace_len = args.get_or("len", if quick { default_len / 10 } else { default_len });
        Self {
            trace_len,
            seed: args.get_or("seed", 42),
        }
    }
}

/// Formats a fraction as a fixed-width percentage.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Lossy-compresses `trace` into a scratch directory, decompresses it back,
/// and returns the *approximate* trace plus the compression statistics.
///
/// This is the exact/approx pair the paper uses for Figures 3–5: the
/// approximate trace has the same length as the exact one but its intervals
/// may be (byte-translated) imitations.
pub fn lossy_roundtrip(
    trace: &[u64],
    interval_len: usize,
    buffer: usize,
    threshold: f64,
    byte_translation: bool,
) -> (Vec<u64>, atc_core::AtcStats) {
    use atc_core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
    static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    // ordering: Relaxed — the counter only needs uniqueness (atomic
    // RMW), not ordering with any other memory.
    let id = NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("atc-lossy-roundtrip-{}-{id}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = LossyConfig {
        interval_len,
        threshold,
        byte_translation,
        ..LossyConfig::default()
    };
    let mut w = AtcWriter::with_options(
        &dir,
        Mode::Lossy(cfg),
        AtcOptions {
            codec: "bzip".into(),
            buffer,
            threads: 1,
        },
    )
    .expect("create scratch trace dir");
    w.code_all(trace.iter().copied()).expect("compress");
    let stats = w.finish().expect("finish");
    let mut r = AtcReader::open(&dir).expect("reopen");
    let approx = r.decode_all().expect("decompress");
    assert_eq!(
        approx.len(),
        trace.len(),
        "lossy must preserve trace length"
    );
    let _ = std::fs::remove_dir_all(&dir);
    (approx, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_codec::Store;

    #[test]
    fn transformed_roundtrip_all_variants() {
        let trace: Vec<u64> = (0..5000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let codec = Store;
        for t in [
            Transform::Raw,
            Transform::Delta,
            Transform::Unshuffle,
            Transform::Bytesort,
        ] {
            for buffer in [7usize, 1000, 5000, 10_000] {
                let packed = compress_transformed(&trace, t, buffer, &codec);
                let (back, _) = decompress_transformed(&packed, t, &codec);
                assert_eq!(back, trace, "{t:?} buffer={buffer}");
            }
        }
    }

    #[test]
    fn filtered_trace_has_requested_len() {
        let p = profile_or_die("462.libquantum");
        assert_eq!(filtered_trace(p, 1234, 1).len(), 1234);
    }

    #[test]
    fn bpa_math() {
        assert!((bpa(1000, 1000) - 8.0).abs() < 1e-12);
        assert_eq!(bpa(1000, 0), 0.0);
    }

    #[test]
    fn tcgen_lines_reasonable() {
        assert!(tcgen_lines_for(2_000_000) >= 1 << 14);
        assert!(tcgen_lines_for(100).is_power_of_two());
    }
}
