//! Set-associative cache with true-LRU replacement.
//!
//! The cache is the hot inner loop of trace filtering (every raw access
//! passes through it before the codec sees anything), so its layout is
//! tuned for the probe path:
//!
//! * **SoA slot arrays** — tags and last-use stamps live in two flat
//!   `Vec<u64>`s indexed `set * ways + way`; the dirty bits are packed
//!   into a `u64` bitset (one cache line covers 4096 slots) instead of a
//!   byte-per-slot `Vec<bool>`.
//! * **Per-set stamps** — LRU only compares recency *within* a set, so
//!   each set has its own monotonic counter instead of one global clock.
//!   Within a set the per-set ordering equals the global ordering (both
//!   increment once per access to that set), which is proved against a
//!   global-clock reference implementation by differential tests.
//! * **One fused probe pass** — hit way, first invalid way, and LRU
//!   victim are found in a single branch-light sweep over the set's
//!   ways. Invalid ways always carry stamp 0 while valid stamps start
//!   at 1, so "first invalid, else least recently used, ties to the
//!   lowest way" collapses into one "first minimum stamp" scan that the
//!   hit test rides along with. Way counts 1/2/4/8 dispatch to a
//!   const-generic probe the compiler fully unrolls.

/// Configuration of a set-associative cache.
///
/// # Examples
///
/// ```
/// use atc_cache::CacheConfig;
///
/// // The paper's L1: 32 KB, 4-way, 64-byte blocks.
/// let cfg = CacheConfig::paper_l1();
/// assert_eq!(cfg.capacity_bytes(), 32 * 1024);
/// assert_eq!(cfg.sets, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// log2 of the block size in bytes.
    pub block_shift: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 32 KB, 4-way, LRU, 64-byte blocks.
    pub fn paper_l1() -> Self {
        Self {
            sets: 128,
            ways: 4,
            block_shift: 6,
        }
    }

    /// Creates a configuration from capacity and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is not a positive power of two or if
    /// `ways == 0`.
    pub fn with_capacity(capacity_bytes: usize, ways: usize, block_shift: u32) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let block = 1usize << block_shift;
        let sets = capacity_bytes / (ways * block);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "capacity {capacity_bytes} with {ways} ways and {block}-byte blocks \
             gives invalid set count {sets}"
        );
        Self {
            sets,
            ways,
            block_shift,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * (1usize << self.block_shift)
    }
}

/// Result of one cache access (see [`Cache::access`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a dirty line evicted by this access, if any.
    ///
    /// This models the write-back traffic the paper's trace format can tag
    /// in the spare top bits of a block address (§2).
    pub writeback: Option<u64>,
}

/// A set-associative LRU cache over block addresses.
///
/// Tracks presence and dirtiness (no data), which is all trace filtering
/// and write-back modelling need.
///
/// # Examples
///
/// ```
/// use atc_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 1, block_shift: 6 });
/// assert!(!c.access_addr(0));      // cold miss
/// assert!(c.access_addr(0));       // hit
/// assert!(!c.access_addr(128));    // same set, evicts block 0
/// assert!(!c.access_addr(0));      // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * ways` tag slots; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Last-use stamp per slot, from the owning set's clock. Invalid
    /// slots are always 0; valid stamps start at 1 (the fused victim
    /// scan relies on this to fold the invalid-way preference into the
    /// minimum-stamp search).
    stamps: Vec<u64>,
    /// Dirty bit per slot (written since fill), packed 64 slots per word.
    dirty: Vec<u64>,
    /// Per-set access counter: LRU only orders accesses within a set, so
    /// a set-local clock reproduces the global-clock victim choice
    /// exactly (pinned by differential tests against a global-clock
    /// reference).
    set_clock: Vec<u64>,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Tag value marking an empty way.
const INVALID: u64 = u64::MAX;

/// One fused sweep over a set's ways: the hit way (or `W` if none) and
/// the victim way ride the same loop. The victim is the first way with
/// the minimum stamp — invalid ways hold stamp 0 and valid stamps start
/// at 1, so this is "first invalid way, else first least-recently-used
/// way", exactly the two-scan choice the old implementation made.
#[inline(always)]
fn probe<const W: usize>(tags: &[u64; W], stamps: &[u64; W], block: u64) -> (usize, usize) {
    let mut hit = W;
    let mut victim = 0usize;
    let mut min_stamp = stamps[0];
    let mut w = 0;
    while w < W {
        if tags[w] == block {
            hit = w;
        }
        if stamps[w] < min_stamp {
            min_stamp = stamps[w];
            victim = w;
        }
        w += 1;
    }
    (hit, victim)
}

/// [`probe`] for associativities without a dedicated unrolled instance.
#[inline]
fn probe_dyn(tags: &[u64], stamps: &[u64], block: u64) -> (usize, usize) {
    let mut hit = tags.len();
    let mut victim = 0usize;
    let mut min_stamp = stamps[0];
    for w in 0..tags.len() {
        if tags[w] == block {
            hit = w;
        }
        if stamps[w] < min_stamp {
            min_stamp = stamps[w];
            victim = w;
        }
    }
    (hit, victim)
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a positive power of two or
    /// `cfg.ways == 0`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.sets.is_power_of_two());
        assert!(cfg.ways > 0);
        let slots = cfg.sets * cfg.ways;
        Self {
            cfg,
            tags: vec![INVALID; slots],
            stamps: vec![0; slots],
            dirty: vec![0; slots.div_ceil(64)],
            set_clock: vec![0; cfg.sets],
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses a *byte* address as a read; returns `true` on hit. On a
    /// miss the block is inserted, evicting the LRU way.
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.access(addr >> self.cfg.block_shift, false).hit
    }

    /// Accesses a *block* address as a read; returns `true` on hit.
    pub fn access_block(&mut self, block: u64) -> bool {
        self.access(block, false).hit
    }

    #[inline(always)]
    fn dirty_get(&self, slot: usize) -> bool {
        (self.dirty[slot >> 6] >> (slot & 63)) & 1 != 0
    }

    #[inline(always)]
    fn dirty_assign(&mut self, slot: usize, value: bool) {
        let word = &mut self.dirty[slot >> 6];
        let bit = slot & 63;
        *word = (*word & !(1u64 << bit)) | ((value as u64) << bit);
    }

    /// Accesses a *block* address, marking the line dirty on writes, and
    /// reporting any dirty line the fill evicted.
    #[inline]
    pub fn access(&mut self, block: u64, is_write: bool) -> AccessResult {
        // Unrolled probes for the common associativities. Batch callers
        // hoist this dispatch out of their loop entirely (see
        // `CacheFilter::filter_batch`).
        match self.cfg.ways {
            1 => self.access_ways::<1>(block, is_write),
            2 => self.access_ways::<2>(block, is_write),
            4 => self.access_ways::<4>(block, is_write),
            8 => self.access_ways::<8>(block, is_write),
            _ => self.access_dyn(block, is_write),
        }
    }

    /// [`Cache::access`] monomorphized for a known associativity, so a
    /// batch loop carries no per-access way-count dispatch.
    ///
    /// # Panics
    ///
    /// Panics (via the array casts) if `W != self.cfg.ways`.
    #[inline(always)]
    pub(crate) fn access_ways<const W: usize>(
        &mut self,
        block: u64,
        is_write: bool,
    ) -> AccessResult {
        debug_assert_ne!(block, INVALID, "block address collides with sentinel");
        debug_assert_eq!(W, self.cfg.ways);
        let set = (block as usize) & (self.cfg.sets - 1);
        let base = set * W;
        let clock = &mut self.set_clock[set];
        *clock += 1;
        let stamp = *clock;
        // `try_into` is a length-checked cast to a fixed-size array view.
        // atclint: allow(library-unwrap) -- infallible: the slice is
        // exactly W elements by construction of the range.
        let tags: &[u64; W] = self.tags[base..base + W].try_into().expect("ways");
        // atclint: allow(library-unwrap) -- infallible: ditto.
        let stamps: &[u64; W] = self.stamps[base..base + W].try_into().expect("ways");
        let verdict = probe::<W>(tags, stamps, block);
        self.finish(W, base, verdict, block, stamp, is_write)
    }

    /// [`Cache::access`] for associativities without an unrolled probe.
    #[inline]
    fn access_dyn(&mut self, block: u64, is_write: bool) -> AccessResult {
        debug_assert_ne!(block, INVALID, "block address collides with sentinel");
        let ways = self.cfg.ways;
        let set = (block as usize) & (self.cfg.sets - 1);
        let base = set * ways;
        let clock = &mut self.set_clock[set];
        *clock += 1;
        let stamp = *clock;
        let verdict = probe_dyn(
            &self.tags[base..base + ways],
            &self.stamps[base..base + ways],
            block,
        );
        self.finish(ways, base, verdict, block, stamp, is_write)
    }

    /// Common tail of the access paths: apply the probe's
    /// `(hit way, victim way)` verdict.
    #[inline(always)]
    fn finish(
        &mut self,
        ways: usize,
        base: usize,
        (hit, victim): (usize, usize),
        block: u64,
        stamp: u64,
        is_write: bool,
    ) -> AccessResult {
        if hit < ways {
            let slot = base + hit;
            self.stamps[slot] = stamp;
            // Branch-free `dirty |= is_write`.
            self.dirty[slot >> 6] |= (is_write as u64) << (slot & 63);
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        let slot = base + victim;
        let old_tag = self.tags[slot];
        let writeback = if old_tag != INVALID && self.dirty_get(slot) {
            self.writebacks += 1;
            Some(old_tag)
        } else {
            None
        };
        self.tags[slot] = block;
        self.stamps[slot] = stamp;
        self.dirty_assign(slot, is_write);
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Accesses a slice of block addresses as reads; returns how many hit.
    ///
    /// The batched form of [`Cache::access_block`]: one call amortizes
    /// the per-access dispatch for simulator sweeps and benchmarks that
    /// only need aggregate counts (the per-access verdicts are already
    /// folded into [`Cache::hits`] / [`Cache::misses`]).
    pub fn access_batch(&mut self, blocks: &[u64]) -> u64 {
        let before = self.hits;
        match self.cfg.ways {
            1 => self.access_batch_ways::<1>(blocks),
            2 => self.access_batch_ways::<2>(blocks),
            4 => self.access_batch_ways::<4>(blocks),
            8 => self.access_batch_ways::<8>(blocks),
            _ => {
                for &b in blocks {
                    self.access_dyn(b, false);
                }
            }
        }
        self.hits - before
    }

    /// Way-count-monomorphized read loop behind [`Cache::access_batch`].
    fn access_batch_ways<const W: usize>(&mut self, blocks: &[u64]) {
        for &b in blocks {
            self.access_ways::<W>(b, false);
        }
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions (write-backs) observed so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Empties the cache and resets statistics.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.dirty.fill(0);
        self.set_clock.fill(0);
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sets: usize, ways: usize) -> Cache {
        Cache::new(CacheConfig {
            sets,
            ways,
            block_shift: 6,
        })
    }

    /// The pre-SoA implementation, kept verbatim as the differential
    /// reference: a *global* clock, `Vec<bool>` dirty bits, and the
    /// three-scan probe (`position` for the hit, `position` for an
    /// invalid way, `min_by_key` for the LRU victim).
    #[derive(Debug, Clone)]
    pub(crate) struct RefCache {
        cfg: CacheConfig,
        tags: Vec<u64>,
        stamps: Vec<u64>,
        dirty: Vec<bool>,
        clock: u64,
        hits: u64,
        misses: u64,
        writebacks: u64,
    }

    impl RefCache {
        pub(crate) fn new(cfg: CacheConfig) -> Self {
            Self {
                cfg,
                tags: vec![INVALID; cfg.sets * cfg.ways],
                stamps: vec![0; cfg.sets * cfg.ways],
                dirty: vec![false; cfg.sets * cfg.ways],
                clock: 0,
                hits: 0,
                misses: 0,
                writebacks: 0,
            }
        }

        /// Same semantics as the old `Cache::access`, but also reports
        /// which slot was touched so victim choice itself can be pinned.
        pub(crate) fn access_with_slot(
            &mut self,
            block: u64,
            is_write: bool,
        ) -> (AccessResult, usize) {
            let set = (block as usize) & (self.cfg.sets - 1);
            let base = set * self.cfg.ways;
            let ways = &mut self.tags[base..base + self.cfg.ways];
            self.clock += 1;
            if let Some(w) = ways.iter().position(|&t| t == block) {
                self.stamps[base + w] = self.clock;
                self.dirty[base + w] |= is_write;
                self.hits += 1;
                return (
                    AccessResult {
                        hit: true,
                        writeback: None,
                    },
                    base + w,
                );
            }
            self.misses += 1;
            let victim = match ways.iter().position(|&t| t == INVALID) {
                Some(w) => w,
                None => {
                    let stamps = &self.stamps[base..base + self.cfg.ways];
                    let (w, _) = stamps
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, &s)| s)
                        .expect("ways > 0");
                    w
                }
            };
            let slot = base + victim;
            let writeback = if self.tags[slot] != INVALID && self.dirty[slot] {
                self.writebacks += 1;
                Some(self.tags[slot])
            } else {
                None
            };
            self.tags[slot] = block;
            self.stamps[slot] = self.clock;
            self.dirty[slot] = is_write;
            (
                AccessResult {
                    hit: false,
                    writeback,
                },
                slot,
            )
        }
    }

    /// Replays `ops` through the SoA cache and the global-clock
    /// three-scan reference, asserting identical results *and* identical
    /// victim slots at every step.
    fn differential(cfg: CacheConfig, ops: &[(u64, bool)]) {
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (i, &(block, is_write)) in ops.iter().enumerate() {
            let (want, want_slot) = reference.access_with_slot(block, is_write);
            let got = cache.access(block, is_write);
            assert_eq!(got, want, "op {i}: access({block}, {is_write})");
            if !got.hit {
                assert_eq!(
                    cache.tags[want_slot], block,
                    "op {i}: fused scan picked a different victim slot"
                );
            }
        }
        assert_eq!(cache.hits(), reference.hits);
        assert_eq!(cache.misses(), reference.misses);
        assert_eq!(cache.writebacks(), reference.writebacks);
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheConfig::paper_l1();
        assert_eq!(cfg.sets * cfg.ways * 64, 32 * 1024);
        let cfg2 = CacheConfig::with_capacity(32 * 1024, 4, 6);
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn lru_order() {
        let mut c = tiny(1, 2);
        assert!(!c.access_block(1));
        assert!(!c.access_block(2));
        assert!(c.access_block(1)); // 1 is now MRU, 2 is LRU
        assert!(!c.access_block(3)); // evicts 2
        assert!(c.access_block(1));
        assert!(!c.access_block(2));
    }

    #[test]
    fn set_isolation() {
        let mut c = tiny(2, 1);
        assert!(!c.access_block(0)); // set 0
        assert!(!c.access_block(1)); // set 1
        assert!(c.access_block(0));
        assert!(c.access_block(1));
    }

    #[test]
    fn working_set_fits() {
        // 4 sets x 2 ways = 8 blocks: any 8-block working set mapping evenly
        // hits after the first pass.
        let mut c = tiny(4, 2);
        for pass in 0..3 {
            for b in 0..8u64 {
                let hit = c.access_block(b);
                assert_eq!(hit, pass > 0, "pass {pass} block {b}");
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 16);
    }

    #[test]
    fn miss_ratio_statistics() {
        let mut c = tiny(1, 1);
        assert_eq!(c.miss_ratio(), 0.0);
        c.access_block(1);
        c.access_block(1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn byte_addresses_map_to_blocks() {
        let mut c = tiny(4, 4);
        assert!(!c.access_addr(100)); // block 1
        assert!(c.access_addr(64)); // same block
        assert!(c.access_addr(127));
        assert!(!c.access_addr(128)); // block 2
    }

    #[test]
    fn writeback_on_dirty_eviction_only() {
        let mut c = tiny(1, 1);
        // Clean fill, clean eviction: no writeback.
        let r = c.access(1, false);
        assert_eq!(
            r,
            AccessResult {
                hit: false,
                writeback: None
            }
        );
        let r = c.access(2, false);
        assert_eq!(r.writeback, None);
        // Dirty fill, then eviction: writeback of the dirty block.
        let r = c.access(3, true);
        assert_eq!(r.writeback, None);
        let r = c.access(4, false);
        assert_eq!(r.writeback, Some(3));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(1, 1);
        c.access(7, false); // clean fill
        c.access(7, true); // write hit dirties the line
        let r = c.access(8, false);
        assert_eq!(r.writeback, Some(7));
    }

    #[test]
    fn dirty_bit_cleared_on_refill() {
        let mut c = tiny(1, 1);
        c.access(1, true); // dirty
        assert_eq!(c.access(2, false).writeback, Some(1));
        // Line 2 was filled clean: evicting it is silent.
        assert_eq!(c.access(3, false).writeback, None);
    }

    #[test]
    fn access_batch_counts_hits() {
        let mut c = tiny(4, 2);
        let blocks = [0u64, 1, 2, 3, 0, 1, 2, 3];
        assert_eq!(c.access_batch(&blocks), 4);
        assert_eq!(c.misses(), 4);
        assert_eq!(c.hits(), 4);
        // Batch and one-at-a-time agree.
        let mut d = tiny(4, 2);
        let hits = blocks.iter().filter(|&&b| d.access_block(b)).count();
        assert_eq!(hits as u64, 4);
        assert_eq!(d.hits(), c.hits());
    }

    /// Satellite regression test: the fused single-pass probe must pick
    /// the *same victim slot* as the old `position` + `position` +
    /// `min_by_key` triple scan — first invalid way, else the first
    /// least-recently-used way — on a stream engineered to exercise
    /// partially-filled sets, full sets, and refills after write-backs.
    #[test]
    fn fused_scan_picks_identical_victims() {
        for ways in [1usize, 2, 3, 4, 5, 8] {
            let cfg = CacheConfig {
                sets: 2,
                ways,
                block_shift: 6,
            };
            // Conflict-heavy: all blocks land in set 0 or set 1, with
            // writes mixed in so dirty refills are also covered.
            let mut ops = Vec::new();
            let mut x = 0x9e3779b97f4a7c15u64;
            for i in 0..4000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let block = (x >> 55) & 0xF; // 16 blocks over 2 sets
                ops.push((block, i % 3 == 0));
            }
            differential(cfg, &ops);
        }
    }

    /// Per-set stamps must replay the global clock's LRU decisions on an
    /// adversarial stream that interleaves two sets at wildly different
    /// rates (the case where per-set and global stamp *values* diverge
    /// the most, while their per-set *order* must not).
    #[test]
    fn per_set_clock_matches_global_clock() {
        let cfg = CacheConfig {
            sets: 2,
            ways: 4,
            block_shift: 6,
        };
        let mut ops = Vec::new();
        for round in 0..500u64 {
            // Set 0 is hammered, set 1 is touched rarely: a global clock
            // gives set 1 huge stamp gaps, a per-set clock does not.
            for b in 0..6u64 {
                ops.push((b * 2, round % 5 == b % 5));
            }
            if round % 17 == 0 {
                ops.push((round % 8 * 2 + 1, round % 2 == 0));
            }
        }
        differential(cfg, &ops);
    }
}
