//! Set-associative cache with true-LRU replacement.

/// Configuration of a set-associative cache.
///
/// # Examples
///
/// ```
/// use atc_cache::CacheConfig;
///
/// // The paper's L1: 32 KB, 4-way, 64-byte blocks.
/// let cfg = CacheConfig::paper_l1();
/// assert_eq!(cfg.capacity_bytes(), 32 * 1024);
/// assert_eq!(cfg.sets, 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// log2 of the block size in bytes.
    pub block_shift: u32,
}

impl CacheConfig {
    /// The paper's L1 configuration: 32 KB, 4-way, LRU, 64-byte blocks.
    pub fn paper_l1() -> Self {
        Self {
            sets: 128,
            ways: 4,
            block_shift: 6,
        }
    }

    /// Creates a configuration from capacity and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the derived set count is not a positive power of two or if
    /// `ways == 0`.
    pub fn with_capacity(capacity_bytes: usize, ways: usize, block_shift: u32) -> Self {
        assert!(ways > 0, "associativity must be positive");
        let block = 1usize << block_shift;
        let sets = capacity_bytes / (ways * block);
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "capacity {capacity_bytes} with {ways} ways and {block}-byte blocks \
             gives invalid set count {sets}"
        );
        Self {
            sets,
            ways,
            block_shift,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * (1usize << self.block_shift)
    }
}

/// Result of one cache access (see [`Cache::access`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a dirty line evicted by this access, if any.
    ///
    /// This models the write-back traffic the paper's trace format can tag
    /// in the spare top bits of a block address (§2).
    pub writeback: Option<u64>,
}

/// A set-associative LRU cache over block addresses.
///
/// Tracks presence and dirtiness (no data), which is all trace filtering
/// and write-back modelling need.
///
/// # Examples
///
/// ```
/// use atc_cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { sets: 2, ways: 1, block_shift: 6 });
/// assert!(!c.access_addr(0));      // cold miss
/// assert!(c.access_addr(0));       // hit
/// assert!(!c.access_addr(128));    // same set, evicts block 0
/// assert!(!c.access_addr(0));      // miss again
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// `sets * ways` tag slots; `u64::MAX` = invalid.
    tags: Vec<u64>,
    /// Last-use timestamp per slot (monotonic counter).
    stamps: Vec<u64>,
    /// Dirty bit per slot (written since fill).
    dirty: Vec<bool>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

/// Tag value marking an empty way.
const INVALID: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.sets` is not a positive power of two or
    /// `cfg.ways == 0`.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.sets > 0 && cfg.sets.is_power_of_two());
        assert!(cfg.ways > 0);
        Self {
            cfg,
            tags: vec![INVALID; cfg.sets * cfg.ways],
            stamps: vec![0; cfg.sets * cfg.ways],
            dirty: vec![false; cfg.sets * cfg.ways],
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accesses a *byte* address as a read; returns `true` on hit. On a
    /// miss the block is inserted, evicting the LRU way.
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.access(addr >> self.cfg.block_shift, false).hit
    }

    /// Accesses a *block* address as a read; returns `true` on hit.
    pub fn access_block(&mut self, block: u64) -> bool {
        self.access(block, false).hit
    }

    /// Accesses a *block* address, marking the line dirty on writes, and
    /// reporting any dirty line the fill evicted.
    pub fn access(&mut self, block: u64, is_write: bool) -> AccessResult {
        debug_assert_ne!(block, INVALID, "block address collides with sentinel");
        let set = (block as usize) & (self.cfg.sets - 1);
        let base = set * self.cfg.ways;
        let ways = &mut self.tags[base..base + self.cfg.ways];
        self.clock += 1;
        if let Some(w) = ways.iter().position(|&t| t == block) {
            self.stamps[base + w] = self.clock;
            self.dirty[base + w] |= is_write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        // Pick an invalid way, else the LRU way.
        let victim = match ways.iter().position(|&t| t == INVALID) {
            Some(w) => w,
            None => {
                let stamps = &self.stamps[base..base + self.cfg.ways];
                let (w, _) = stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .expect("ways > 0");
                w
            }
        };
        let slot = base + victim;
        let writeback = if self.tags[slot] != INVALID && self.dirty[slot] {
            self.writebacks += 1;
            Some(self.tags[slot])
        } else {
            None
        };
        self.tags[slot] = block;
        self.stamps[slot] = self.clock;
        self.dirty[slot] = is_write;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions (write-backs) observed so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Miss ratio so far (0 if no accesses).
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Empties the cache and resets statistics.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID);
        self.stamps.fill(0);
        self.dirty.fill(false);
        self.clock = 0;
        self.hits = 0;
        self.misses = 0;
        self.writebacks = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(sets: usize, ways: usize) -> Cache {
        Cache::new(CacheConfig {
            sets,
            ways,
            block_shift: 6,
        })
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheConfig::paper_l1();
        assert_eq!(cfg.sets * cfg.ways * 64, 32 * 1024);
        let cfg2 = CacheConfig::with_capacity(32 * 1024, 4, 6);
        assert_eq!(cfg, cfg2);
    }

    #[test]
    fn lru_order() {
        let mut c = tiny(1, 2);
        assert!(!c.access_block(1));
        assert!(!c.access_block(2));
        assert!(c.access_block(1)); // 1 is now MRU, 2 is LRU
        assert!(!c.access_block(3)); // evicts 2
        assert!(c.access_block(1));
        assert!(!c.access_block(2));
    }

    #[test]
    fn set_isolation() {
        let mut c = tiny(2, 1);
        assert!(!c.access_block(0)); // set 0
        assert!(!c.access_block(1)); // set 1
        assert!(c.access_block(0));
        assert!(c.access_block(1));
    }

    #[test]
    fn working_set_fits() {
        // 4 sets x 2 ways = 8 blocks: any 8-block working set mapping evenly
        // hits after the first pass.
        let mut c = tiny(4, 2);
        for pass in 0..3 {
            for b in 0..8u64 {
                let hit = c.access_block(b);
                assert_eq!(hit, pass > 0, "pass {pass} block {b}");
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 16);
    }

    #[test]
    fn miss_ratio_statistics() {
        let mut c = tiny(1, 1);
        assert_eq!(c.miss_ratio(), 0.0);
        c.access_block(1);
        c.access_block(1);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
        c.reset();
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn byte_addresses_map_to_blocks() {
        let mut c = tiny(4, 4);
        assert!(!c.access_addr(100)); // block 1
        assert!(c.access_addr(64)); // same block
        assert!(c.access_addr(127));
        assert!(!c.access_addr(128)); // block 2
    }

    #[test]
    fn writeback_on_dirty_eviction_only() {
        let mut c = tiny(1, 1);
        // Clean fill, clean eviction: no writeback.
        let r = c.access(1, false);
        assert_eq!(
            r,
            AccessResult {
                hit: false,
                writeback: None
            }
        );
        let r = c.access(2, false);
        assert_eq!(r.writeback, None);
        // Dirty fill, then eviction: writeback of the dirty block.
        let r = c.access(3, true);
        assert_eq!(r.writeback, None);
        let r = c.access(4, false);
        assert_eq!(r.writeback, Some(3));
        assert_eq!(c.writebacks(), 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(1, 1);
        c.access(7, false); // clean fill
        c.access(7, true); // write hit dirties the line
        let r = c.access(8, false);
        assert_eq!(r.writeback, Some(7));
    }

    #[test]
    fn dirty_bit_cleared_on_refill() {
        let mut c = tiny(1, 1);
        c.access(1, true); // dirty
        assert_eq!(c.access(2, false).writeback, Some(1));
        // Line 2 was filled clean: evicting it is silent.
        assert_eq!(c.access(3, false).writeback, None);
    }
}
