//! Cache filtering: raw access streams → cache-filtered block-address traces.
//!
//! This reproduces the paper's trace collection (§4.2): all instruction and
//! data accesses are filtered by a 32 KB 4-way LRU L1I and L1D, and the
//! *missing* block addresses — instruction and data interleaved in program
//! order — form the trace ATC compresses.
//!
//! The paper notes (§2) that block addresses leave the 6 most-significant
//! bits null, usable "to store some extra information, e.g., whether the
//! address corresponds to a demand miss or a write-back". The filter
//! implements exactly that: with [`CacheFilter::paper_with_writebacks`],
//! dirty evictions are emitted as `block | WRITEBACK_BIT` right after the
//! miss that caused them.

use atc_trace::{Access, AccessKind};

use crate::cache::{Cache, CacheConfig};

/// Tag bit marking a write-back record in a filtered trace value.
///
/// Block addresses of 64-bit byte addresses occupy bits 0..58, so bit 58 is
/// always free.
pub const WRITEBACK_BIT: u64 = 1 << 58;

/// Strips the tag bits, returning the plain block address.
pub fn block_of(value: u64) -> u64 {
    value & (WRITEBACK_BIT - 1)
}

/// Whether a filtered-trace value is a write-back record.
pub fn is_writeback(value: u64) -> bool {
    value & WRITEBACK_BIT != 0
}

/// Filters an access stream through separate L1 instruction and data caches.
///
/// # Examples
///
/// ```
/// use atc_cache::CacheFilter;
/// use atc_trace::gen::Stream;
///
/// let mut filter = CacheFilter::paper();
/// // A 1 MB streaming sweep: roughly one miss per new 64-byte block.
/// let misses: Vec<u64> = filter
///     .filter(Stream::new(0, 1 << 20, 8))
///     .take(100)
///     .collect();
/// assert_eq!(misses[0], 0);
/// assert_eq!(misses[1], 1); // consecutive block addresses
/// ```
#[derive(Debug, Clone)]
pub struct CacheFilter {
    icache: Cache,
    dcache: Cache,
    emit_writebacks: bool,
}

impl CacheFilter {
    /// Creates the paper's configuration: 32 KB 4-way LRU L1I + L1D with
    /// 64-byte blocks, demand misses only.
    pub fn paper() -> Self {
        Self::new(CacheConfig::paper_l1(), CacheConfig::paper_l1())
    }

    /// Same geometry, but dirty evictions are emitted as tagged
    /// write-back records (`block | WRITEBACK_BIT`).
    pub fn paper_with_writebacks() -> Self {
        let mut f = Self::paper();
        f.emit_writebacks = true;
        f
    }

    /// Creates a filter with custom instruction/data cache configurations.
    pub fn new(icfg: CacheConfig, dcfg: CacheConfig) -> Self {
        Self {
            icache: Cache::new(icfg),
            dcache: Cache::new(dcfg),
            emit_writebacks: false,
        }
    }

    /// Enables or disables tagged write-back emission.
    pub fn set_emit_writebacks(&mut self, enable: bool) {
        self.emit_writebacks = enable;
    }

    /// Processes one access; returns the missing block address if it missed
    /// (ignoring write-backs — see [`CacheFilter::access_full`]).
    pub fn access(&mut self, a: Access) -> Option<u64> {
        self.access_full(a).0
    }

    /// Processes one access; returns `(demand miss, write-back)` trace
    /// records. The write-back is tagged with [`WRITEBACK_BIT`] and is
    /// `None` unless write-back emission is enabled.
    pub fn access_full(&mut self, a: Access) -> (Option<u64>, Option<u64>) {
        let (cache, is_write) = match a.kind {
            AccessKind::InstrFetch => (&mut self.icache, false),
            AccessKind::DataRead => (&mut self.dcache, false),
            AccessKind::DataWrite => (&mut self.dcache, true),
        };
        let shift = cache.config().block_shift;
        let r = cache.access(a.addr >> shift, is_write);
        let miss = (!r.hit).then_some(a.addr >> shift);
        let wb = if self.emit_writebacks {
            r.writeback.map(|b| b | WRITEBACK_BIT)
        } else {
            None
        };
        (miss, wb)
    }

    /// Filters a slice of accesses, appending the surviving trace
    /// records (demand misses, each followed by the write-back it
    /// triggered when emission is enabled) to `out` in access order.
    ///
    /// This is the batched fast path: one call amortizes the per-access
    /// `Option`/iterator machinery of [`CacheFilter::filter`] over the
    /// whole slice, and the output is byte-identical to draining the
    /// iterator adapter over the same accesses.
    ///
    /// # Examples
    ///
    /// ```
    /// use atc_cache::CacheFilter;
    /// use atc_trace::Access;
    ///
    /// let mut f = CacheFilter::paper();
    /// let mut out = Vec::new();
    /// f.filter_batch(&[Access::fetch(0), Access::fetch(0)], &mut out);
    /// assert_eq!(out, vec![0]); // miss then hit
    /// ```
    pub fn filter_batch(&mut self, accesses: &[Access], out: &mut Vec<u64>) {
        // Hoist the way-count dispatch out of the per-access loop: the
        // paper geometry (4-way I and D) gets a fully monomorphized body.
        match (self.icache.config().ways, self.dcache.config().ways) {
            (4, 4) => self.filter_batch_ways::<4, 4>(accesses, out),
            (8, 8) => self.filter_batch_ways::<8, 8>(accesses, out),
            (2, 2) => self.filter_batch_ways::<2, 2>(accesses, out),
            (1, 1) => self.filter_batch_ways::<1, 1>(accesses, out),
            _ => {
                let emit_writebacks = self.emit_writebacks;
                for &a in accesses {
                    let (cache, is_write) = match a.kind {
                        AccessKind::InstrFetch => (&mut self.icache, false),
                        AccessKind::DataRead => (&mut self.dcache, false),
                        AccessKind::DataWrite => (&mut self.dcache, true),
                    };
                    let block = a.addr >> cache.config().block_shift;
                    let r = cache.access(block, is_write);
                    if !r.hit {
                        out.push(block);
                        if emit_writebacks {
                            if let Some(wb) = r.writeback {
                                out.push(wb | WRITEBACK_BIT);
                            }
                        }
                    }
                }
            }
        }
    }

    /// [`CacheFilter::filter_batch`] with both way counts known at
    /// compile time, so the inner loop carries no dispatch at all.
    fn filter_batch_ways<const IW: usize, const DW: usize>(
        &mut self,
        accesses: &[Access],
        out: &mut Vec<u64>,
    ) {
        let emit_writebacks = self.emit_writebacks;
        let ishift = self.icache.config().block_shift;
        let dshift = self.dcache.config().block_shift;
        for &a in accesses {
            let (block, r) = match a.kind {
                AccessKind::InstrFetch => {
                    let block = a.addr >> ishift;
                    (block, self.icache.access_ways::<IW>(block, false))
                }
                AccessKind::DataRead => {
                    let block = a.addr >> dshift;
                    (block, self.dcache.access_ways::<DW>(block, false))
                }
                AccessKind::DataWrite => {
                    let block = a.addr >> dshift;
                    (block, self.dcache.access_ways::<DW>(block, true))
                }
            };
            if !r.hit {
                out.push(block);
                if emit_writebacks {
                    if let Some(wb) = r.writeback {
                        out.push(wb | WRITEBACK_BIT);
                    }
                }
            }
        }
    }

    /// Adapts an access iterator into a filtered block-address iterator.
    ///
    /// The output order is the access order (instruction and data misses
    /// interleaved, each miss followed by the write-back it triggered, if
    /// enabled), matching the paper's trace format.
    pub fn filter<I>(&mut self, accesses: I) -> Filtered<'_, I::IntoIter>
    where
        I: IntoIterator<Item = Access>,
    {
        Filtered {
            filter: self,
            inner: accesses.into_iter(),
            pending: None,
        }
    }

    /// Combined demand-miss count so far.
    pub fn misses(&self) -> u64 {
        self.icache.misses() + self.dcache.misses()
    }

    /// Combined access count so far.
    pub fn accesses(&self) -> u64 {
        self.icache.hits() + self.icache.misses() + self.dcache.hits() + self.dcache.misses()
    }

    /// Data-cache write-backs so far (counted even when not emitted).
    pub fn writebacks(&self) -> u64 {
        self.dcache.writebacks()
    }

    /// Overall miss (filter-pass) ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }
}

/// Iterator returned by [`CacheFilter::filter`].
#[derive(Debug)]
pub struct Filtered<'f, I> {
    filter: &'f mut CacheFilter,
    inner: I,
    /// Write-back queued behind the miss that caused it.
    pending: Option<u64>,
}

impl<I: Iterator<Item = Access>> Iterator for Filtered<'_, I> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if let Some(wb) = self.pending.take() {
            return Some(wb);
        }
        loop {
            let a = self.inner.next()?;
            let (miss, wb) = self.filter.access_full(a);
            match (miss, wb) {
                (Some(m), wb) => {
                    self.pending = wb;
                    return Some(m);
                }
                (None, Some(w)) => return Some(w),
                (None, None) => continue,
            }
        }
    }
}

/// Convenience: generates the first `n` cache-filtered block addresses of a
/// workload using the paper's L1 configuration.
///
/// Mirrors "the first 100 millions filtered addresses from each benchmark"
/// (§4.2) at configurable scale.
///
/// # Examples
///
/// ```
/// use atc_trace::spec;
///
/// let p = spec::profile("462.libquantum").unwrap();
/// let trace = atc_cache::filtered_trace(p.workload(1), 1000);
/// assert_eq!(trace.len(), 1000);
/// ```
pub fn filtered_trace<I>(accesses: I, n: usize) -> Vec<u64>
where
    I: IntoIterator<Item = Access>,
{
    let mut filter = CacheFilter::paper();
    filter.filter(accesses).take(n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use atc_trace::gen::{RandomAccess, Stream};
    use atc_trace::Access;

    #[test]
    fn tiny_loop_filters_to_nothing() {
        // A loop fitting in L1 only misses compulsorily.
        let mut f = CacheFilter::paper();
        let misses: Vec<u64> = f.filter(Stream::new(0, 4096, 8).take(100_000)).collect();
        assert_eq!(misses.len(), 4096 / 64, "one compulsory miss per block");
    }

    #[test]
    fn streaming_misses_once_per_block() {
        let mut f = CacheFilter::paper();
        let region = 1u64 << 20; // 1 MB >> 32 KB cache
        let n_accesses = (region / 8) as usize; // one full sweep
        let misses = f.filter(Stream::new(0, region, 8).take(n_accesses)).count();
        assert_eq!(misses as u64, region / 64);
    }

    #[test]
    fn i_and_d_streams_are_independent() {
        let mut f = CacheFilter::paper();
        // Same addresses, different kinds: both must miss separately.
        let a = f.access(Access::fetch(0));
        let b = f.access(Access::read(0));
        assert!(a.is_some() && b.is_some());
        assert_eq!(f.misses(), 2);
    }

    #[test]
    fn filtered_trace_interleaves_in_order() {
        let mut f = CacheFilter::paper();
        let accesses = vec![
            Access::fetch(0),      // miss -> block 0
            Access::read(1 << 20), // miss -> block 16384
            Access::fetch(0),      // hit
            Access::read(1 << 21), // miss
        ];
        let out: Vec<u64> = f.filter(accesses).collect();
        assert_eq!(out, vec![0, 1 << 14, 1 << 15]);
    }

    #[test]
    fn random_large_set_misses_often() {
        let mut f = CacheFilter::paper();
        let n = 100_000;
        let misses = f
            .filter(RandomAccess::new(0, 1 << 16, 3).take(n)) // 4 MB set
            .count();
        // Working set 128x the cache: miss ratio should be near 1.
        assert!(misses > n * 9 / 10, "misses {misses}");
    }

    #[test]
    fn writebacks_tagged_and_ordered() {
        // 1-set 1-way data cache: every write then conflicting read
        // produces a miss followed by a tagged write-back.
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            block_shift: 6,
        };
        let mut f = CacheFilter::new(CacheConfig::paper_l1(), cfg);
        f.set_emit_writebacks(true);
        let accesses = vec![
            Access::write(0),  // miss, fills dirty
            Access::read(64),  // miss, evicts dirty block 0 -> writeback
            Access::read(128), // miss, clean eviction
        ];
        let out: Vec<u64> = f.filter(accesses).collect();
        assert_eq!(out, vec![0, 1, WRITEBACK_BIT, 2]);
        assert!(is_writeback(out[2]));
        assert_eq!(block_of(out[2]), 0);
        assert_eq!(f.writebacks(), 1);
    }

    #[test]
    fn writebacks_not_emitted_by_default() {
        let cfg = CacheConfig {
            sets: 1,
            ways: 1,
            block_shift: 6,
        };
        let mut f = CacheFilter::new(CacheConfig::paper_l1(), cfg);
        let accesses = vec![Access::write(0), Access::read(64)];
        let out: Vec<u64> = f.filter(accesses).collect();
        assert_eq!(out, vec![0, 1]);
        // Counted internally even when not emitted.
        assert_eq!(f.writebacks(), 1);
    }

    #[test]
    fn filter_batch_matches_iterator_adapter() {
        // Same accesses through the batch path and the iterator path,
        // with write-back emission on (the richer record stream), must
        // produce identical traces and identical counters.
        let cfg = CacheConfig {
            sets: 2,
            ways: 2,
            block_shift: 6,
        };
        let mut x = 7u64;
        let accesses: Vec<Access> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let addr = (x >> 40) & 0x3FF;
                match x % 3 {
                    0 => Access::fetch(addr),
                    1 => Access::read(addr),
                    _ => Access::write(addr),
                }
            })
            .collect();
        let mut serial = CacheFilter::new(cfg, cfg);
        serial.set_emit_writebacks(true);
        let want: Vec<u64> = serial.filter(accesses.iter().copied()).collect();
        let mut batched = CacheFilter::new(cfg, cfg);
        batched.set_emit_writebacks(true);
        let mut got = Vec::new();
        // Split into uneven chunks: batching must not depend on chunk
        // boundaries.
        for chunk in accesses.chunks(733) {
            batched.filter_batch(chunk, &mut got);
        }
        assert_eq!(got, want);
        assert_eq!(batched.misses(), serial.misses());
        assert_eq!(batched.writebacks(), serial.writebacks());
        assert_eq!(batched.accesses(), serial.accesses());
    }

    #[test]
    fn tag_bit_above_block_space() {
        // Block addresses of 64-bit byte addresses fit in 58 bits.
        let max_block = u64::MAX >> 6;
        assert_eq!(max_block & WRITEBACK_BIT, 0);
        assert_eq!(block_of(max_block | WRITEBACK_BIT), max_block);
    }
}
