//! Cache substrate for the ATC reproduction.
//!
//! Three pieces, each standing in for a tool from the paper's workflow:
//!
//! * [`Cache`] / [`CacheConfig`] — a set-associative true-LRU cache (the
//!   paper's 32 KB 4-way L1 geometry is [`CacheConfig::paper_l1`]).
//! * [`CacheFilter`] — produces *cache-filtered* traces: the interleaved
//!   instruction/data block addresses that miss in L1, which are exactly
//!   the traces ATC compresses (§2, §4.2 of the paper).
//! * [`StackSim`] — a Mattson LRU stack-distance simulator giving the miss
//!   ratio of every associativity in one pass per set count; this replaces
//!   the Cheetah simulator used for Figure 3.
//! * [`SegmentCache`] — not a simulation subject but a *production*
//!   component: the process-wide, byte-budgeted LRU of decoded codec
//!   segments that the random-access read path shares across concurrent
//!   readers of a hot trace.
//!
//! The filter front end is the ingest bottleneck (every raw access goes
//! through it before the codec sees anything), so it has a batched fast
//! path ([`CacheFilter::filter_batch`]) and a set-partitioned parallel
//! form ([`ParallelCacheFilter`], [`ParallelStackSim`]) that shards the
//! independent cache sets across `atc-engine` workers while keeping the
//! output byte-identical to the serial filter. See
//! `docs/ARCHITECTURE.md`, "Filter front end".
//!
//! # Examples
//!
//! ```
//! use atc_cache::{filtered_trace, StackSim};
//! use atc_trace::spec;
//!
//! let p = spec::profile("462.libquantum").unwrap();
//! let trace = filtered_trace(p.workload(42), 10_000);
//!
//! let mut sim = StackSim::new(64, 8);
//! sim.run(trace.iter().copied());
//! let curve = sim.miss_curve();
//! assert_eq!(curve.len(), 8);
//! ```

#![warn(missing_docs)]

mod cache;
mod filter;
mod par;
mod segment;
mod stack;

pub use cache::{AccessResult, Cache, CacheConfig};
pub use filter::{block_of, filtered_trace, is_writeback, CacheFilter, Filtered, WRITEBACK_BIT};
pub use par::ParallelCacheFilter;
pub use segment::{
    trace_id, SegmentCache, SegmentCacheStats, SegmentKey, DEFAULT_SEGMENT_CACHE_BYTES,
};
pub use stack::{ParallelStackSim, StackSim};
