//! Set-partitioned parallel cache filtering.
//!
//! Cache sets are independent: an access to set `s` never reads or
//! writes the state of any other set. The parallel filter exploits this
//! by giving each engine worker a *partition* of the set index space —
//! worker `p` of `P` owns the contiguous set range
//! `{s : (s * P) >> log2(sets) == p}` of both the instruction and the
//! data cache. Every worker scans the whole access batch, simulates only
//! the accesses that land in its own sets (in stream order, which is the
//! serial per-set order), and records a per-access *verdict* — hit or
//! miss, plus the evicted dirty block if any — into a slot keyed by the
//! access's stream index. The coordinator then replays the verdicts in
//! stream index order to reassemble the filtered trace, so the output is
//! byte-identical to the serial [`CacheFilter`] at every partition
//! count (pinned by differential proptests).
//!
//! The verdict slots are relaxed atomics: disjointness (each index is
//! written by exactly one worker — the owner of its set) makes any
//! ordering sufficient, and the [`atc_engine::Engine::scope`] join
//! provides the happens-before edge for the coordinator's reads.
//!
//! [`CacheFilter`]: crate::CacheFilter

use std::sync::atomic::{AtomicU64, Ordering};

use atc_engine::Engine;
use atc_trace::{Access, AccessKind};

use crate::cache::{Cache, CacheConfig};
use crate::filter::WRITEBACK_BIT;

/// Verdict bit: the access missed (its block address joins the trace).
const MISS: u64 = 1 << 63;
/// Verdict bit: the miss evicted a dirty line whose block address is in
/// the low bits (only ever set together with [`MISS`]).
const HAS_WB: u64 = 1 << 62;
/// Low-bit mask holding the written-back block address. Block addresses
/// of 64-bit byte addresses occupy at most 58 bits, the same headroom
/// [`WRITEBACK_BIT`] tagging already relies on.
const WB_MASK: u64 = (1 << 59) - 1;

/// One worker's private simulation state: full-size instruction and data
/// caches of which only the partition's own sets are ever touched. The
/// untouched sets cost a few KiB of zeros each — the paper's L1 pair is
/// 6 KiB of state — and buy direct set indexing with no remapping.
#[derive(Debug, Clone)]
struct Partition {
    icache: Cache,
    dcache: Cache,
}

impl Partition {
    /// Simulates partition `p` of `parts` over the whole batch, writing
    /// one verdict per owned access into `slots`.
    fn run(&mut self, p: usize, parts: usize, accesses: &[Access], slots: &[AtomicU64]) {
        let ishift = self.icache.config().block_shift;
        let dshift = self.dcache.config().block_shift;
        let imask = self.icache.config().sets - 1;
        let dmask = self.dcache.config().sets - 1;
        let ilog = self.icache.config().sets.trailing_zeros();
        let dlog = self.dcache.config().sets.trailing_zeros();
        for (i, a) in accesses.iter().enumerate() {
            let (cache, is_write, shift, mask, log) = match a.kind {
                AccessKind::InstrFetch => (&mut self.icache, false, ishift, imask, ilog),
                AccessKind::DataRead => (&mut self.dcache, false, dshift, dmask, dlog),
                AccessKind::DataWrite => (&mut self.dcache, true, dshift, dmask, dlog),
            };
            let block = a.addr >> shift;
            let set = (block as usize) & mask;
            // Contiguous range partitioning without a division: set
            // counts are powers of two, so `(set * parts) >> log2(sets)`
            // maps sets onto 0..parts near-evenly.
            if (set * parts) >> log != p {
                continue;
            }
            let r = cache.access(block, is_write);
            let mut v = 0u64;
            if !r.hit {
                v = MISS;
                if let Some(wb) = r.writeback {
                    debug_assert_eq!(wb & !WB_MASK, 0, "block address exceeds 59 bits");
                    v |= HAS_WB | (wb & WB_MASK);
                }
            }
            // ordering: Relaxed — each slot is written by exactly one
            // partition worker; the engine's task-completion handshake
            // (Release on finish, Acquire in the wait) publishes every
            // store before the collector reads a single verdict.
            slots[i].store(v, Ordering::Relaxed);
        }
    }
}

/// Set-partitioned parallel version of [`CacheFilter`]: filters access
/// batches across engine workers with output byte-identical to the
/// serial filter.
///
/// With `partitions == 1` (or a single-worker engine) the filter runs
/// inline on the calling thread with no verdict pass at all, so the
/// degenerate configuration costs nothing over [`CacheFilter`].
///
/// # Examples
///
/// ```
/// use atc_cache::{CacheFilter, ParallelCacheFilter};
/// use atc_engine::Engine;
/// use atc_trace::Access;
///
/// let accesses: Vec<Access> = (0..10_000).map(|i| Access::read(i * 64)).collect();
///
/// let mut serial = CacheFilter::paper();
/// let mut want = Vec::new();
/// serial.filter_batch(&accesses, &mut want);
///
/// let mut par = ParallelCacheFilter::paper(Engine::new(4), 4);
/// let mut got = Vec::new();
/// par.filter_batch(&accesses, &mut got);
/// assert_eq!(got, want);
/// ```
///
/// [`CacheFilter`]: crate::CacheFilter
#[derive(Debug)]
pub struct ParallelCacheFilter {
    engine: Engine,
    parts: Vec<Partition>,
    emit_writebacks: bool,
    /// Reused verdict scratch, grown to the largest batch seen.
    slots: Vec<AtomicU64>,
}

impl ParallelCacheFilter {
    /// Creates a parallel filter over custom geometries, sharded into
    /// `partitions` set-partitions run on `engine`.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is 0 or exceeds the smaller cache's set
    /// count (a partition must own at least one set of each cache).
    pub fn new(icfg: CacheConfig, dcfg: CacheConfig, engine: Engine, partitions: usize) -> Self {
        assert!(partitions > 0, "partitions must be positive");
        assert!(
            partitions <= icfg.sets.min(dcfg.sets),
            "{partitions} partitions over {}/{} sets leaves empty partitions",
            icfg.sets,
            dcfg.sets
        );
        Self {
            engine,
            parts: (0..partitions)
                .map(|_| Partition {
                    icache: Cache::new(icfg),
                    dcache: Cache::new(dcfg),
                })
                .collect(),
            emit_writebacks: false,
            slots: Vec::new(),
        }
    }

    /// The paper's configuration (32 KB 4-way LRU L1I + L1D), demand
    /// misses only.
    pub fn paper(engine: Engine, partitions: usize) -> Self {
        Self::new(
            CacheConfig::paper_l1(),
            CacheConfig::paper_l1(),
            engine,
            partitions,
        )
    }

    /// Same geometry, with dirty evictions emitted as tagged write-back
    /// records.
    pub fn paper_with_writebacks(engine: Engine, partitions: usize) -> Self {
        let mut f = Self::paper(engine, partitions);
        f.emit_writebacks = true;
        f
    }

    /// Enables or disables tagged write-back emission.
    pub fn set_emit_writebacks(&mut self, enable: bool) {
        self.emit_writebacks = enable;
    }

    /// Number of set-partitions (parallel workers the batch fans out to).
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Filters a batch of accesses, appending the surviving trace
    /// records to `out` in exact access order — byte-identical to
    /// [`CacheFilter::filter_batch`] over the same stream, at every
    /// partition count.
    ///
    /// [`CacheFilter::filter_batch`]: crate::CacheFilter::filter_batch
    pub fn filter_batch(&mut self, accesses: &[Access], out: &mut Vec<u64>) {
        let parts = self.parts.len();
        if parts == 1 {
            // Degenerate: simulate directly into `out`, skipping the
            // verdict array entirely.
            let emit = self.emit_writebacks;
            let part = &mut self.parts[0];
            for a in accesses {
                let (cache, is_write) = match a.kind {
                    AccessKind::InstrFetch => (&mut part.icache, false),
                    AccessKind::DataRead => (&mut part.dcache, false),
                    AccessKind::DataWrite => (&mut part.dcache, true),
                };
                let block = a.addr >> cache.config().block_shift;
                let r = cache.access(block, is_write);
                if !r.hit {
                    out.push(block);
                    if emit {
                        if let Some(wb) = r.writeback {
                            out.push(wb | WRITEBACK_BIT);
                        }
                    }
                }
            }
            return;
        }
        if self.slots.len() < accesses.len() {
            self.slots.resize_with(accesses.len(), || AtomicU64::new(0));
        }
        let slots = &self.slots[..accesses.len()];
        let engine = self.engine.clone();
        engine.scope(|s| {
            for (p, part) in self.parts.iter_mut().enumerate() {
                s.spawn(move || part.run(p, parts, accesses, slots));
            }
        });
        // Reassembly: replay the verdicts in stream-index order. The
        // demand-miss block address is recomputed from the access (it
        // never fit the verdict word next to the write-back address).
        let emit = self.emit_writebacks;
        let ishift = self.parts[0].icache.config().block_shift;
        let dshift = self.parts[0].dcache.config().block_shift;
        for (a, slot) in accesses.iter().zip(slots) {
            // ordering: Relaxed — runs strictly after the engine-side
            // wait for all partition tasks, whose Acquire edge made every
            // worker's Relaxed store visible (see the store above).
            let v = slot.load(Ordering::Relaxed);
            if v & MISS != 0 {
                let shift = match a.kind {
                    AccessKind::InstrFetch => ishift,
                    _ => dshift,
                };
                out.push(a.addr >> shift);
                if emit && v & HAS_WB != 0 {
                    out.push((v & WB_MASK) | WRITEBACK_BIT);
                }
            }
        }
    }

    /// Combined demand-miss count so far (summed over partitions).
    pub fn misses(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.icache.misses() + p.dcache.misses())
            .sum()
    }

    /// Combined access count so far.
    pub fn accesses(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.icache.hits() + p.icache.misses() + p.dcache.hits() + p.dcache.misses())
            .sum()
    }

    /// Data-cache write-backs so far (counted even when not emitted).
    pub fn writebacks(&self) -> u64 {
        self.parts.iter().map(|p| p.dcache.writebacks()).sum()
    }

    /// Overall miss (filter-pass) ratio so far.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.misses() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::CacheFilter;

    fn pseudo_accesses(n: usize, span_blocks: u64, seed: u64) -> Vec<Access> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = (x >> 33) % (span_blocks * 64);
                match x % 4 {
                    0 => Access::fetch(addr),
                    1 | 2 => Access::read(addr),
                    _ => Access::write(addr),
                }
            })
            .collect()
    }

    #[test]
    fn matches_serial_filter_at_every_partition_count() {
        let accesses = pseudo_accesses(30_000, 4096, 42);
        for emit in [false, true] {
            let mut serial = CacheFilter::paper();
            serial.set_emit_writebacks(emit);
            let mut want = Vec::new();
            serial.filter_batch(&accesses, &mut want);
            for partitions in [1usize, 2, 3, 8] {
                let engine = Engine::new(2);
                let mut par = ParallelCacheFilter::paper(engine, partitions);
                par.set_emit_writebacks(emit);
                let mut got = Vec::new();
                // Uneven batches: partition state must carry across.
                for chunk in accesses.chunks(7001) {
                    par.filter_batch(chunk, &mut got);
                }
                assert_eq!(got, want, "partitions={partitions} emit={emit}");
                assert_eq!(par.misses(), serial.misses());
                assert_eq!(par.writebacks(), serial.writebacks());
                assert_eq!(par.accesses(), serial.accesses());
            }
        }
    }

    #[test]
    fn single_partition_never_touches_the_engine() {
        let engine = Engine::new(1);
        let accesses = pseudo_accesses(1000, 64, 7);
        let mut par = ParallelCacheFilter::paper(engine.clone(), 1);
        let mut out = Vec::new();
        par.filter_batch(&accesses, &mut out);
        assert!(!out.is_empty());
        assert_eq!(engine.stats().submitted, 0, "inline path must not spawn");
    }

    #[test]
    #[should_panic(expected = "empty partitions")]
    fn more_partitions_than_sets_is_rejected() {
        let tiny = CacheConfig {
            sets: 2,
            ways: 1,
            block_shift: 6,
        };
        let _ = ParallelCacheFilter::new(tiny, tiny, Engine::new(1), 4);
    }
}
