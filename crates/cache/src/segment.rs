//! Process-wide decoded-segment cache for the random-access read path.
//!
//! `AtcReader::seek` decodes exactly one compressed segment to reach its
//! target frame. When N concurrent readers hammer the same hot trace (the
//! access pattern of a trace-serving daemon or SimPoint-style sampling),
//! each would decode the same segments over and over; a shared
//! [`SegmentCache`] lets them reuse each other's decode work instead.
//!
//! Entries are keyed by `(trace_id, segment_idx)` — [`trace_id`] hashes
//! the canonicalized trace directory path, so two readers of the same
//! directory agree on the key while distinct traces never collide in
//! practice — and hold the segment's *decoded* bytes behind an `Arc`, so
//! a hit is a clone of a pointer, not a copy of a megabyte.
//!
//! Capacity is bytes, not entries, accounted through the same
//! [`ByteBudget`] the write pipeline uses for its buffering gate:
//! least-recently-used entries are evicted until an insert fits, and an
//! entry larger than the whole cap bypasses the cache entirely (caching
//! it would evict everything for one reader's benefit). Hit, miss, and
//! eviction counters are exposed for `atcstat`/`atcstore stat`.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use atc_codec::ByteBudget;

/// Cache key: `(trace_id, segment_idx)` (see [`trace_id`]).
pub type SegmentKey = (u64, u64);

/// Default byte capacity of the process-wide cache ([`SegmentCache::global`]).
pub const DEFAULT_SEGMENT_CACHE_BYTES: u64 = 256 << 20;

/// Counter snapshot of a [`SegmentCache`] (see [`SegmentCache::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Decoded bytes currently held.
    pub bytes: u64,
    /// Configured byte capacity.
    pub cap: u64,
}

impl SegmentCacheStats {
    /// Counter deltas accumulated since `base` was snapshotted (gauges —
    /// `bytes`, `cap` — are taken from `self` as-is).
    ///
    /// This is how long-lived services report *their* cache traffic off
    /// a shared cache: snapshot at start, subtract on report. Counters
    /// are monotonic, but `saturating_sub` keeps a mismatched baseline
    /// (e.g. from a different cache instance) from panicking in debug
    /// builds.
    #[must_use]
    pub fn since(&self, base: &SegmentCacheStats) -> SegmentCacheStats {
        SegmentCacheStats {
            hits: self.hits.saturating_sub(base.hits),
            misses: self.misses.saturating_sub(base.misses),
            evictions: self.evictions.saturating_sub(base.evictions),
            bytes: self.bytes,
            cap: self.cap,
        }
    }
}

/// A byte-budgeted, true-LRU cache of decoded codec segments shared by
/// every reader in the process.
///
/// Thread-safe; lookups and inserts take one short mutex-protected pass
/// over an MRU-ordered list. The entry payload is `Arc<Vec<u8>>`, so
/// readers keep using a segment after it is evicted — eviction only
/// releases the cache's byte accounting, the memory follows the last
/// reader.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use atc_cache::SegmentCache;
///
/// let cache = SegmentCache::new(1 << 20);
/// assert!(cache.get((7, 0)).is_none());
/// cache.insert((7, 0), Arc::new(vec![1, 2, 3]));
/// assert_eq!(cache.get((7, 0)).unwrap().as_slice(), &[1, 2, 3]);
/// let stats = cache.stats();
/// assert_eq!((stats.hits, stats.misses), (1, 1));
/// ```
#[derive(Debug)]
pub struct SegmentCache {
    budget: ByteBudget,
    /// `(key, decoded bytes)`, least recently used first.
    entries: Mutex<Vec<(SegmentKey, Arc<Vec<u8>>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl SegmentCache {
    /// Creates a cache holding up to `cap_bytes` of decoded segments
    /// (clamped to at least 1).
    pub fn new(cap_bytes: u64) -> Self {
        Self {
            budget: ByteBudget::new(cap_bytes),
            entries: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide cache every reader shares by default
    /// ([`DEFAULT_SEGMENT_CACHE_BYTES`] capacity), created on first use.
    pub fn global() -> Arc<SegmentCache> {
        static GLOBAL: OnceLock<Arc<SegmentCache>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(SegmentCache::new(DEFAULT_SEGMENT_CACHE_BYTES))))
    }

    /// A private cache with its own counters, shaped for sharing
    /// (`Arc`-wrapped like [`SegmentCache::global`]).
    ///
    /// [`global`](SegmentCache::global)'s counters are process-wide: two
    /// tests (or a server and an unrelated reader) observing `stats()`
    /// see each other's traffic. Code that asserts on hit/miss counts —
    /// or a server that reports *its* cache efficiency — should own an
    /// isolated instance instead.
    pub fn isolated(cap_bytes: u64) -> Arc<SegmentCache> {
        Arc::new(SegmentCache::new(cap_bytes))
    }

    /// Looks up a decoded segment, refreshing its recency on a hit.
    pub fn get(&self, key: SegmentKey) -> Option<Arc<Vec<u8>>> {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        match entries.iter().position(|(k, _)| *k == key) {
            Some(i) => {
                // Move to MRU (the end); the list is short enough that a
                // rotate beats a linked structure's pointer chasing.
                let entry = entries.remove(i);
                let bytes = Arc::clone(&entry.1);
                entries.push(entry);
                drop(entries);
                // ordering: Relaxed — observability counter only.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(bytes)
            }
            None => {
                drop(entries);
                // ordering: Relaxed — observability counter only.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) a decoded segment, evicting from the LRU
    /// end until it fits. A segment larger than the whole capacity is
    /// not cached at all — admitting it would flush every other entry
    /// for a single reader's benefit.
    pub fn insert(&self, key: SegmentKey, bytes: Arc<Vec<u8>>) {
        let len = bytes.len() as u64;
        if len > self.budget.cap() {
            return;
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(i) = entries.iter().position(|(k, _)| *k == key) {
            // Already cached (two readers raced on the same miss): keep
            // the incumbent bytes, just refresh recency.
            let entry = entries.remove(i);
            entries.push(entry);
            return;
        }
        // Evict before acquiring so the (blocking) budget acquire is
        // always immediate: after this loop `in_use + len <= cap` holds.
        while self.budget.in_use() + len > self.budget.cap() {
            let (_, evicted) = entries.remove(0);
            self.budget.release(evicted.len() as u64);
            // ordering: Relaxed — observability counter only.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.budget.acquire(len);
        entries.push((key, bytes));
    }

    /// Drops every entry (the counters survive; `bytes` returns to 0).
    pub fn clear(&self) {
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        for (_, bytes) in entries.drain(..) {
            self.budget.release(bytes.len() as u64);
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> SegmentCacheStats {
        SegmentCacheStats {
            // ordering: Relaxed — monotonic counters; a snapshot needs
            // no cross-counter consistency. (All three loads below.)
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes: self.budget.in_use(),
            cap: self.budget.cap(),
        }
    }
}

/// Stable identifier of a trace directory for [`SegmentKey`]s: an
/// FNV-1a hash of the canonicalized path (falling back to the path as
/// given when canonicalization fails, e.g. the directory vanished), so
/// every reader of one on-disk trace lands on the same id no matter how
/// its path was spelled.
pub fn trace_id(dir: &Path) -> u64 {
    let canonical = dir.canonicalize().unwrap_or_else(|_| dir.to_path_buf());
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in canonical.to_string_lossy().as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(n: usize, fill: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_miss_and_recency() {
        let c = SegmentCache::new(1000);
        assert!(c.get((1, 0)).is_none());
        c.insert((1, 0), seg(400, 0xA));
        c.insert((1, 1), seg(400, 0xB));
        assert_eq!(c.get((1, 0)).unwrap().len(), 400);
        // (1,1) is now LRU; a 400-byte insert must evict it, not (1,0).
        c.insert((1, 2), seg(400, 0xC));
        assert!(c.get((1, 1)).is_none(), "LRU entry evicted");
        assert!(c.get((1, 0)).is_some(), "recently used entry survives");
        assert!(c.get((1, 2)).is_some());
        let s = c.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.bytes, 800);
        assert_eq!(s.cap, 1000);
    }

    #[test]
    fn oversized_entries_bypass() {
        let c = SegmentCache::new(100);
        c.insert((0, 0), seg(50, 1));
        c.insert((0, 1), seg(101, 2)); // larger than the whole cap
        assert!(c.get((0, 1)).is_none());
        assert!(c.get((0, 0)).is_some(), "bypass must not evict anything");
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn duplicate_insert_keeps_incumbent_and_accounting() {
        let c = SegmentCache::new(1000);
        c.insert((3, 7), seg(100, 1));
        c.insert((3, 7), seg(100, 2)); // racing reader's copy
        assert_eq!(c.stats().bytes, 100, "one entry's bytes, not two");
        assert_eq!(c.get((3, 7)).unwrap()[0], 1, "first insert wins");
    }

    #[test]
    fn clear_releases_bytes() {
        let c = SegmentCache::new(1000);
        c.insert((0, 0), seg(600, 1));
        c.clear();
        assert_eq!(c.stats().bytes, 0);
        assert!(c.get((0, 0)).is_none());
        c.insert((0, 1), seg(900, 2)); // full capacity is available again
        assert_eq!(c.stats().bytes, 900);
    }

    #[test]
    fn evicted_entries_stay_alive_for_holders() {
        let c = SegmentCache::new(100);
        c.insert((0, 0), seg(80, 7));
        let held = c.get((0, 0)).unwrap();
        c.insert((0, 1), seg(80, 8)); // evicts (0,0)
        assert!(c.get((0, 0)).is_none());
        assert_eq!(held.len(), 80, "the Arc keeps evicted bytes alive");
        assert!(held.iter().all(|&b| b == 7));
    }

    #[test]
    fn isolated_instances_do_not_share_counters() {
        let a = SegmentCache::isolated(1 << 20);
        let b = SegmentCache::isolated(1 << 20);
        a.insert((1, 0), seg(64, 1));
        assert!(a.get((1, 0)).is_some());
        assert!(b.get((1, 0)).is_none(), "no entry sharing");
        assert_eq!(a.stats().hits, 1);
        assert_eq!(b.stats().hits, 0, "no counter bleed");
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn stats_since_subtracts_counters_keeps_gauges() {
        let c = SegmentCache::isolated(1 << 20);
        c.insert((1, 0), seg(64, 1));
        c.get((1, 9));
        let base = c.stats();
        c.get((1, 0));
        c.get((1, 0));
        c.get((1, 7));
        let delta = c.stats().since(&base);
        assert_eq!(delta.hits, 2);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.evictions, 0);
        assert_eq!(delta.bytes, 64, "bytes is a gauge, not a delta");
        assert_eq!(delta.cap, 1 << 20);
        // A baseline from elsewhere saturates instead of underflowing.
        let skewed = SegmentCacheStats {
            hits: u64::MAX,
            ..base
        };
        assert_eq!(c.stats().since(&skewed).hits, 0);
    }

    #[test]
    fn trace_id_stable_across_spellings() {
        let dir = std::env::temp_dir().join(format!("atc-seg-id-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let spelled = dir
            .parent()
            .unwrap()
            .join(format!("./{}", dir.file_name().unwrap().to_string_lossy()));
        assert_eq!(trace_id(&dir), trace_id(&spelled));
        assert_ne!(trace_id(&dir), trace_id(Path::new("/nonexistent/other")));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_across_threads() {
        let c = Arc::new(SegmentCache::new(1 << 20));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        let key = (1, i % 8);
                        match c.get(key) {
                            Some(bytes) => assert_eq!(bytes.len(), 64),
                            None => c.insert(key, Arc::new(vec![t as u8; 64])),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(c.stats().bytes <= 8 * 64);
    }
}
