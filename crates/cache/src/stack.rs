//! Mattson LRU stack-distance simulation (the Cheetah substitute).
//!
//! The paper simulates "a set of cache configurations, varying the number of
//! cache sets and the associativity" with the Cheetah simulator (§5.3,
//! Figure 3). For LRU, Cheetah's trick is the Mattson stack algorithm: for
//! a fixed set count, one pass over the trace records each access's LRU
//! stack depth within its set, and the miss ratio of *every* associativity
//! `a` follows as the fraction of accesses whose depth is `>= a`. One
//! simulator pass per set count thus yields a whole curve of Figure 3.
//!
//! # Examples
//!
//! ```
//! use atc_cache::StackSim;
//!
//! let mut sim = StackSim::new(1, 4); // fully-associative view, 4 ways max
//! for block in [1u64, 2, 3, 1, 2, 3] {
//!     sim.access(block);
//! }
//! // Second round of 1,2,3 hits at depth 2 with >= 3 ways.
//! assert_eq!(sim.miss_ratio(3), 0.5);
//! assert_eq!(sim.miss_ratio(2), 1.0);
//! ```

/// Single-pass LRU stack simulator for one set count and all
/// associativities `1..=max_assoc`.
#[derive(Debug, Clone)]
pub struct StackSim {
    sets: usize,
    max_assoc: usize,
    /// Per-set LRU stacks (most recent first), truncated to `max_assoc`.
    stacks: Vec<Vec<u64>>,
    /// `hits[d]`: accesses that hit at stack depth `d` (0-based).
    hits: Vec<u64>,
    accesses: u64,
}

impl StackSim {
    /// Creates a simulator with `sets` sets (power of two) measuring
    /// associativities up to `max_assoc`.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a positive power of two or `max_assoc == 0`.
    pub fn new(sets: usize, max_assoc: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(max_assoc > 0, "max_assoc must be positive");
        Self {
            sets,
            max_assoc,
            stacks: vec![Vec::new(); sets],
            hits: vec![0; max_assoc],
            accesses: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Largest associativity measured.
    pub fn max_assoc(&self) -> usize {
        self.max_assoc
    }

    /// Processes one block address.
    pub fn access(&mut self, block: u64) {
        self.accesses += 1;
        let set = (block as usize) & (self.sets - 1);
        let stack = &mut self.stacks[set];
        match stack.iter().position(|&b| b == block) {
            Some(depth) => {
                self.hits[depth] += 1;
                // Move to front.
                stack.remove(depth);
                stack.insert(0, block);
            }
            None => {
                stack.insert(0, block);
                if stack.len() > self.max_assoc {
                    stack.pop();
                }
            }
        }
    }

    /// Processes a whole trace.
    pub fn run<I: IntoIterator<Item = u64>>(&mut self, blocks: I) {
        for b in blocks {
            self.access(b);
        }
    }

    /// Total accesses processed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Miss ratio for a cache of `assoc` ways per set.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is 0 or exceeds `max_assoc`.
    pub fn miss_ratio(&self, assoc: usize) -> f64 {
        assert!(
            (1..=self.max_assoc).contains(&assoc),
            "assoc {assoc} outside 1..={}",
            self.max_assoc
        );
        if self.accesses == 0 {
            return 0.0;
        }
        let hits: u64 = self.hits[..assoc].iter().sum();
        1.0 - hits as f64 / self.accesses as f64
    }

    /// Miss-ratio curve for associativities `1..=max_assoc`.
    pub fn miss_curve(&self) -> Vec<f64> {
        (1..=self.max_assoc).map(|a| self.miss_ratio(a)).collect()
    }

    /// Raw hit counts per LRU stack depth (`[d]` = hits at 0-based
    /// depth `d`); the histogram [`StackSim::miss_ratio`] integrates.
    pub fn depth_histogram(&self) -> &[u64] {
        &self.hits
    }
}

/// Set-partitioned parallel [`StackSim`]: the same single-pass Mattson
/// measurement, fanned out over engine workers by set index.
///
/// Stack distances, like LRU state, are purely per-set: partition `p`
/// of `P` owns the contiguous set range `{s : (s * P) >> log2(sets) ==
/// p}`, simulates only its own sets' accesses (in stream order), and
/// accumulates a private depth histogram. The histograms are summed on
/// read-out, so every miss ratio equals the serial simulator's exactly
/// — a depth count is order-independent across sets, which is also why
/// no reassembly pass is needed here (unlike the parallel cache
/// filter, whose *trace output* is order-sensitive).
///
/// # Examples
///
/// ```
/// use atc_cache::{ParallelStackSim, StackSim};
/// use atc_engine::Engine;
///
/// let blocks: Vec<u64> = (0..50_000u64).map(|i| i * 31 % 4096).collect();
/// let mut serial = StackSim::new(64, 8);
/// serial.run(blocks.iter().copied());
/// let mut par = ParallelStackSim::new(64, 8, Engine::new(4), 4);
/// par.run_batch(&blocks);
/// assert_eq!(par.miss_curve(), serial.miss_curve());
/// ```
#[derive(Debug)]
pub struct ParallelStackSim {
    engine: atc_engine::Engine,
    parts: Vec<StackSim>,
}

impl ParallelStackSim {
    /// Creates a parallel simulator over `partitions` set-partitions
    /// run on `engine`, measuring associativities up to `max_assoc` at
    /// `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics under the [`StackSim::new`] conditions, or if
    /// `partitions` is 0 or exceeds `sets`.
    pub fn new(
        sets: usize,
        max_assoc: usize,
        engine: atc_engine::Engine,
        partitions: usize,
    ) -> Self {
        assert!(
            partitions > 0 && partitions <= sets,
            "partitions {partitions} must be in 1..={sets}"
        );
        Self {
            engine,
            parts: (0..partitions)
                .map(|_| StackSim::new(sets, max_assoc))
                .collect(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.parts[0].sets()
    }

    /// Largest associativity measured.
    pub fn max_assoc(&self) -> usize {
        self.parts[0].max_assoc()
    }

    /// Number of set-partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Processes a batch of block addresses; repeated calls continue the
    /// same measurement (per-set stacks persist across batches).
    pub fn run_batch(&mut self, blocks: &[u64]) {
        let parts = self.parts.len();
        if parts == 1 {
            self.parts[0].run(blocks.iter().copied());
            return;
        }
        let mask = self.sets() - 1;
        let log = self.sets().trailing_zeros();
        let engine = self.engine.clone();
        engine.scope(|s| {
            for (p, part) in self.parts.iter_mut().enumerate() {
                s.spawn(move || {
                    for &b in blocks {
                        let set = (b as usize) & mask;
                        if (set * parts) >> log == p {
                            part.access(b);
                        }
                    }
                });
            }
        });
    }

    /// Total accesses processed.
    pub fn accesses(&self) -> u64 {
        self.parts.iter().map(StackSim::accesses).sum()
    }

    /// Miss ratio for a cache of `assoc` ways per set, identical to the
    /// serial [`StackSim::miss_ratio`] over the same stream.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is 0 or exceeds `max_assoc`.
    pub fn miss_ratio(&self, assoc: usize) -> f64 {
        assert!(
            (1..=self.max_assoc()).contains(&assoc),
            "assoc {assoc} outside 1..={}",
            self.max_assoc()
        );
        let accesses = self.accesses();
        if accesses == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .parts
            .iter()
            .map(|p| p.depth_histogram()[..assoc].iter().sum::<u64>())
            .sum();
        1.0 - hits as f64 / accesses as f64
    }

    /// Miss-ratio curve for associativities `1..=max_assoc`.
    pub fn miss_curve(&self) -> Vec<f64> {
        (1..=self.max_assoc()).map(|a| self.miss_ratio(a)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    #[test]
    fn matches_explicit_cache_simulation() {
        // Cross-validate the stack simulator against the explicit LRU cache
        // for several (sets, ways) on a pseudo-random trace.
        let mut x: u64 = 1;
        let trace: Vec<u64> = (0..20_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 40) % 4096
            })
            .collect();
        for sets in [1usize, 4, 16, 64] {
            let mut sim = StackSim::new(sets, 8);
            sim.run(trace.iter().copied());
            for ways in [1usize, 2, 4, 8] {
                let mut cache = Cache::new(CacheConfig {
                    sets,
                    ways,
                    block_shift: 6,
                });
                for &b in &trace {
                    cache.access_block(b);
                }
                let expect = cache.miss_ratio();
                let got = sim.miss_ratio(ways);
                assert!(
                    (expect - got).abs() < 1e-12,
                    "sets={sets} ways={ways}: cache {expect} vs stack {got}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_associativity() {
        let mut sim = StackSim::new(16, 32);
        let mut x: u64 = 9;
        for _ in 0..50_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            sim.access((x >> 33) % 100_000);
        }
        let curve = sim.miss_curve();
        for w in curve.windows(2) {
            assert!(
                w[1] <= w[0] + 1e-12,
                "miss ratio must not increase with ways"
            );
        }
    }

    #[test]
    fn loop_exactly_fits() {
        // Cyclic access to N blocks, fully associative: with >= N ways all
        // but the first lap hit; with < N ways LRU thrashes to 100% misses.
        let n = 8u64;
        let mut sim = StackSim::new(1, 16);
        for lap in 0..100 {
            let _ = lap;
            for b in 0..n {
                sim.access(b);
            }
        }
        assert!(sim.miss_ratio(8) < 0.02);
        assert!((sim.miss_ratio(7) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sim() {
        let sim = StackSim::new(4, 4);
        assert_eq!(sim.miss_ratio(1), 0.0);
        assert_eq!(sim.accesses(), 0);
    }

    #[test]
    fn parallel_stack_sim_matches_serial_curves() {
        let mut x = 3u64;
        let blocks: Vec<u64> = (0..60_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                (x >> 30) % 50_000
            })
            .collect();
        for sets in [16usize, 64] {
            let mut serial = StackSim::new(sets, 16);
            serial.run(blocks.iter().copied());
            for partitions in [1usize, 2, 5, 8] {
                let engine = atc_engine::Engine::new(2);
                let mut par = ParallelStackSim::new(sets, 16, engine, partitions);
                // Two batches: partition stacks must persist between them.
                let (a, b) = blocks.split_at(blocks.len() / 3);
                par.run_batch(a);
                par.run_batch(b);
                assert_eq!(par.accesses(), serial.accesses());
                assert_eq!(
                    par.miss_curve(),
                    serial.miss_curve(),
                    "sets={sets} partitions={partitions}"
                );
            }
        }
    }

    #[test]
    fn random_working_set_hit_ratio() {
        // Paper §5: random accesses over N blocks, cache with C tags =>
        // hit ratio ~ C/N.
        let n_blocks = 1024u64;
        let mut x: u64 = 77;
        let mut sim = StackSim::new(1, 32);
        for _ in 0..200_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            sim.access((x >> 33) % n_blocks);
        }
        let c = 32.0;
        let expect = 1.0 - c / n_blocks as f64;
        let got = sim.miss_ratio(32);
        assert!((got - expect).abs() < 0.02, "got {got}, expect ~{expect}");
    }
}
