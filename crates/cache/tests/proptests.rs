//! Property-based pins for the filter front end.
//!
//! Two invariants carry the whole parallel-filter design:
//!
//! * **Set-partition identity** — the set-partitioned parallel filter
//!   must produce the byte-identical filtered trace to the serial
//!   filter, over every (worker count, associativity, write-back
//!   emission) combination, for arbitrary access streams and arbitrary
//!   batch boundaries.
//! * **Per-set clocks replay the global clock** — LRU victim choice
//!   only compares stamps within one set, so replacing the old global
//!   access counter with per-set counters must be observationally
//!   invisible. Proved against an independent global-clock LRU model on
//!   adversarial streams that concentrate all traffic in a single set
//!   (where stamp arithmetic is exercised hardest).

use proptest::collection::vec;
use proptest::prelude::*;

use atc_cache::{Cache, CacheConfig, CacheFilter, ParallelCacheFilter};
use atc_engine::Engine;
use atc_trace::Access;

/// Decodes a raw u64 into an access: low bits pick the address (within
/// a window small enough to produce real conflict misses on the tiny
/// test geometries), top bits pick the kind.
fn decode_access(raw: u64, span_blocks: u64) -> Access {
    let addr = (raw >> 8) % (span_blocks * 64);
    match raw % 4 {
        0 => Access::fetch(addr),
        1 | 2 => Access::read(addr),
        _ => Access::write(addr),
    }
}

/// An independent global-clock true-LRU model (one monotonic counter
/// across all sets, linear scans), deliberately written in the most
/// obvious way possible: the oracle the SoA cache's per-set clocks and
/// fused probe are judged against.
struct GlobalClockLru {
    sets: usize,
    ways: usize,
    /// `(tag, last_use, dirty)` per slot; `None` = invalid.
    slots: Vec<Option<(u64, u64, bool)>>,
    clock: u64,
}

impl GlobalClockLru {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets,
            ways,
            slots: vec![None; sets * ways],
            clock: 0,
        }
    }

    /// Returns `(hit, evicted dirty block)`.
    fn access(&mut self, block: u64, is_write: bool) -> (bool, Option<u64>) {
        self.clock += 1;
        let base = (block as usize & (self.sets - 1)) * self.ways;
        let set = &mut self.slots[base..base + self.ways];
        for (tag, stamp, dirty) in set.iter_mut().flatten() {
            if *tag == block {
                *stamp = self.clock;
                *dirty |= is_write;
                return (true, None);
            }
        }
        // First invalid way, else the way with the globally smallest
        // last-use stamp (first on ties, though stamps are unique).
        let victim = match set.iter().position(Option::is_none) {
            Some(w) => w,
            None => {
                let mut best = 0;
                for (w, slot) in set.iter().enumerate() {
                    let stamp = slot.expect("no invalid ways").1;
                    if stamp < set[best].expect("no invalid ways").1 {
                        let _ = w;
                        best = w;
                    }
                }
                best
            }
        };
        let writeback = match set[victim] {
            Some((tag, _, true)) => Some(tag),
            _ => None,
        };
        set[victim] = Some((block, self.clock, is_write));
        (false, writeback)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 8 }))]

    /// Parallel filter == serial filter, byte for byte, over workers
    /// {1, 2, 8} × ways {1, 2, 8} × write-back emission on/off, with the
    /// stream re-chunked into arbitrary batch sizes.
    #[test]
    fn parallel_filter_is_byte_identical_to_serial(
        raw in vec(any::<u64>(), 0..6000),
        batch in 1usize..3000,
    ) {
        let accesses: Vec<Access> =
            raw.iter().map(|&r| decode_access(r, 1024)).collect();
        for ways in [1usize, 2, 8] {
            // Small caches so the stream actually thrashes them.
            let cfg = CacheConfig { sets: 16, ways, block_shift: 6 };
            for emit in [false, true] {
                let mut serial = CacheFilter::new(cfg, cfg);
                serial.set_emit_writebacks(emit);
                let mut want = Vec::new();
                serial.filter_batch(&accesses, &mut want);
                for workers in [1usize, 2, 8] {
                    let engine = Engine::new(workers);
                    let mut par = ParallelCacheFilter::new(cfg, cfg, engine, workers);
                    par.set_emit_writebacks(emit);
                    let mut got = Vec::new();
                    for chunk in accesses.chunks(batch) {
                        par.filter_batch(chunk, &mut got);
                    }
                    prop_assert_eq!(
                        &got, &want,
                        "ways={} workers={} emit={} batch={}",
                        ways, workers, emit, batch
                    );
                    prop_assert_eq!(par.misses(), serial.misses());
                    prop_assert_eq!(par.writebacks(), serial.writebacks());
                }
            }
        }
    }

    /// The batched filter entry point and the iterator adapter are the
    /// same function: identical output for identical streams.
    #[test]
    fn filter_batch_matches_iterator(
        raw in vec(any::<u64>(), 0..4000),
    ) {
        let accesses: Vec<Access> =
            raw.iter().map(|&r| decode_access(r, 512)).collect();
        let cfg = CacheConfig { sets: 8, ways: 2, block_shift: 6 };
        for emit in [false, true] {
            let mut a = CacheFilter::new(cfg, cfg);
            a.set_emit_writebacks(emit);
            let want: Vec<u64> = a.filter(accesses.iter().copied()).collect();
            let mut b = CacheFilter::new(cfg, cfg);
            b.set_emit_writebacks(emit);
            let mut got = Vec::new();
            b.filter_batch(&accesses, &mut got);
            prop_assert_eq!(&got, &want, "emit={}", emit);
        }
    }

    /// Per-set stamps replay the global clock exactly on adversarial
    /// streams that force every access into one set (plus a trickle into
    /// a second set so cross-set clock skew exists at all): hits,
    /// victims, and write-backs must match the global-clock model
    /// access by access.
    #[test]
    fn per_set_clock_is_observationally_global(
        raw in vec(any::<u64>(), 1..5000),
        ways in 1usize..9,
    ) {
        let sets = 4usize;
        let cfg = CacheConfig { sets, ways, block_shift: 6 };
        let mut cache = Cache::new(cfg);
        let mut model = GlobalClockLru::new(sets, ways);
        for (i, &r) in raw.iter().enumerate() {
            // All blocks land in set 1, except every 13th which goes to
            // set 3 — the same-set stream LRU depends on, with enough
            // cross-set traffic to desynchronize a global counter from
            // any per-set one.
            let set = if r % 13 == 0 { 3u64 } else { 1 };
            let block = ((r >> 8) % (ways as u64 * 3)) * sets as u64 + set;
            let is_write = r & 1 == 1;
            let got = cache.access(block, is_write);
            let (hit, writeback) = model.access(block, is_write);
            prop_assert_eq!(got.hit, hit, "op {}: hit divergence", i);
            prop_assert_eq!(got.writeback, writeback, "op {}: victim divergence", i);
        }
    }
}
