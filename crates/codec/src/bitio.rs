//! Bit-granular readers and writers over byte buffers.
//!
//! The entropy coders in this crate ([`crate::huffman`]) produce and consume
//! streams of individual bits. `BitWriter` packs bits most-significant-bit
//! first into a `Vec<u8>`; `BitReader` reads them back in the same order.
//!
//! # Examples
//!
//! ```
//! use atc_codec::bitio::{BitReader, BitWriter};
//!
//! let mut w = BitWriter::new();
//! w.write_bits(0b101, 3);
//! w.write_bits(0xFFFF, 16);
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! assert_eq!(r.read_bits(3), Some(0b101));
//! assert_eq!(r.read_bits(16), Some(0xFFFF));
//! ```

/// Accumulates bits (MSB-first) into a growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits buffered in `acc`, always < 8.
    nbits: u32,
    acc: u8,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with capacity for roughly `bytes` output bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bytes),
            nbits: 0,
            acc: 0,
        }
    }

    /// Appends the `n` low-order bits of `value`, most significant first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "cannot write more than 64 bits at once");
        let mut remaining = n;
        while remaining > 0 {
            let take = (8 - self.nbits).min(remaining);
            let shift = remaining - take;
            let chunk = ((value >> shift) & ((1u64 << take) - 1)) as u8;
            // `take == 8` only when the accumulator is empty.
            self.acc = if take == 8 {
                chunk
            } else {
                (self.acc << take) | chunk
            };
            self.nbits += take;
            remaining -= take;
            if self.nbits == 8 {
                self.bytes.push(self.acc);
                self.acc = 0;
                self.nbits = 0;
            }
        }
    }

    /// Appends a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Number of complete bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.nbits as usize
    }

    /// Pads the final partial byte with zero bits and returns the buffer.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.nbits > 0 {
            self.bytes.push(self.acc << (8 - self.nbits));
        }
        self.bytes
    }
}

/// Reads bits (MSB-first) from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Next bit position from the start of `bytes`.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Reads `n` bits; returns `None` if fewer than `n` bits remain.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64`.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        assert!(n <= 64, "cannot read more than 64 bits at once");
        if self.remaining_bits() < n as usize {
            return None;
        }
        let mut out: u64 = 0;
        let mut remaining = n;
        while remaining > 0 {
            let byte = self.bytes[self.pos / 8];
            let bit_off = (self.pos % 8) as u32;
            let avail = 8 - bit_off;
            let take = avail.min(remaining);
            let chunk = (byte >> (avail - take)) & ((1u16 << take) - 1) as u8;
            out = (out << take) | chunk as u64;
            self.pos += take as usize;
            remaining -= take;
        }
        Some(out)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        self.read_bits(1).map(|b| b != 0)
    }

    /// Number of unread bits.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_roundtrip() {
        let w = BitWriter::new();
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn single_bits() {
        let mut w = BitWriter::new();
        for i in 0..17 {
            w.write_bit(i % 3 == 0);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..17 {
            assert_eq!(r.read_bit(), Some(i % 3 == 0), "bit {i}");
        }
    }

    #[test]
    fn wide_values() {
        let mut w = BitWriter::new();
        w.write_bits(u64::MAX, 64);
        w.write_bits(0, 64);
        w.write_bits(0xDEAD_BEEF, 32);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(64), Some(u64::MAX));
        assert_eq!(r.read_bits(64), Some(0));
        assert_eq!(r.read_bits(32), Some(0xDEAD_BEEF));
    }

    #[test]
    fn unaligned_mix() {
        let widths = [1u32, 3, 7, 8, 9, 13, 17, 31, 33, 5];
        let mut w = BitWriter::new();
        for (i, &n) in widths.iter().enumerate() {
            let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << n) - 1);
            w.write_bits(v, n);
        }
        let total: usize = widths.iter().map(|&n| n as usize).sum();
        assert_eq!(w.bit_len(), total);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (i, &n) in widths.iter().enumerate() {
            let v = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) & ((1u64 << n) - 1);
            assert_eq!(r.read_bits(n), Some(v));
        }
    }

    #[test]
    fn read_past_end() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        // One padded byte: 8 bits available.
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1010_0000));
        assert_eq!(r.read_bits(1), None);
    }
}
