//! Burrows–Wheeler transform with an implicit sentinel.
//!
//! The forward transform conceptually appends a sentinel `$` smaller than
//! every byte, sorts all rotations of `data·$`, and emits the last column.
//! Because the sentinel is unique, rotation order equals suffix order, so the
//! whole transform reduces to one [`crate::sais`] suffix-array construction.
//! The sentinel itself is not emitted; its row index (`primary`) is returned
//! and stored in the block header instead.
//!
//! # Examples
//!
//! ```
//! use atc_codec::bwt::{bwt_forward, bwt_inverse};
//!
//! let data = b"banana".to_vec();
//! let (last_col, primary) = bwt_forward(&data);
//! assert_eq!(bwt_inverse(&last_col, primary).unwrap(), data);
//! ```

/// Errors from [`bwt_inverse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BwtError {
    /// `primary` is outside `1..=data.len()` (or nonzero for empty data).
    InvalidPrimary {
        /// The rejected primary row index.
        primary: u32,
        /// Length of the last-column input.
        len: usize,
    },
    /// The LF cycle did not close where expected; the input is corrupt.
    BrokenCycle,
}

impl std::fmt::Display for BwtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BwtError::InvalidPrimary { primary, len } => {
                write!(f, "BWT primary index {primary} invalid for length {len}")
            }
            BwtError::BrokenCycle => write!(f, "BWT permutation cycle is inconsistent"),
        }
    }
}

impl std::error::Error for BwtError {}

/// Computes the BWT of `data`.
///
/// Returns the last column (without the sentinel) and the `primary` index:
/// the row, among the `data.len() + 1` sorted rotations, whose last column
/// entry is the sentinel.
pub fn bwt_forward(data: &[u8]) -> (Vec<u8>, u32) {
    let mut scratch = crate::sais::SaisScratch::new();
    let mut out = Vec::new();
    let primary = bwt_forward_in(data, &mut scratch, &mut out);
    (out, primary)
}

/// [`bwt_forward`] writing the last column into a reused buffer, with the
/// suffix-array construction running in reused `scratch`.
///
/// `out` is cleared first; the returned value is the `primary` index. Block
/// loops (the bzip codec) call this once per block without re-allocating
/// the O(n) transform buffers.
pub fn bwt_forward_in(
    data: &[u8],
    scratch: &mut crate::sais::SaisScratch,
    out: &mut Vec<u8>,
) -> u32 {
    let n = data.len();
    out.clear();
    if n == 0 {
        return 0;
    }
    let sa = crate::sais::suffix_array_in(data, scratch);
    out.reserve(n);
    // Row 0 is the rotation starting at the sentinel; its last column entry
    // is the final byte of `data`.
    out.push(data[n - 1]);
    let mut primary = 0u32;
    for (row, &p) in sa.iter().enumerate() {
        if p == 0 {
            // This rotation starts at data[0]; its predecessor is the
            // sentinel, which we omit and record as `primary`.
            primary = row as u32 + 1;
        } else {
            out.push(data[p as usize - 1]);
        }
    }
    debug_assert_eq!(out.len(), n);
    debug_assert!(primary >= 1);
    primary
}

/// Inverts the BWT.
///
/// `last_col` is the output of [`bwt_forward`] and `primary` the returned
/// sentinel row.
///
/// # Errors
///
/// Returns [`BwtError`] if `primary` is out of range or the implied
/// permutation is inconsistent (corrupt input).
pub fn bwt_inverse(last_col: &[u8], primary: u32) -> Result<Vec<u8>, BwtError> {
    let n = last_col.len();
    if n == 0 {
        return if primary == 0 {
            Ok(Vec::new())
        } else {
            Err(BwtError::InvalidPrimary { primary, len: 0 })
        };
    }
    let p = primary as usize;
    if p == 0 || p > n {
        return Err(BwtError::InvalidPrimary { primary, len: n });
    }

    // Conceptual full last column has n+1 entries: the sentinel at row `p`
    // and last_col packed around it. Alphabet: 0 = sentinel, byte b -> b+1.
    // C[c] = number of symbols strictly smaller than c in the full column.
    let mut cnt = [0u32; 257];
    for &b in last_col {
        cnt[b as usize + 1] += 1;
    }
    cnt[0] = 1; // the sentinel
    let mut c_lt = [0u32; 258];
    for c in 0..257 {
        c_lt[c + 1] = c_lt[c] + cnt[c];
    }

    // LF mapping for every full-column row.
    let mut lf = vec![0u32; n + 1];
    let mut occ = [0u32; 257];
    for (row, lf_row) in lf.iter_mut().enumerate() {
        let sym: usize = if row == p {
            0
        } else {
            let i = if row < p { row } else { row - 1 };
            last_col[i] as usize + 1
        };
        *lf_row = c_lt[sym] + occ[sym];
        occ[sym] += 1;
    }

    // Walk the cycle backwards from row 0 (the "$ data" rotation).
    let mut out = vec![0u8; n];
    let mut row = 0usize;
    for k in (0..n).rev() {
        if row == p {
            // Hit the sentinel before reconstructing all bytes.
            return Err(BwtError::BrokenCycle);
        }
        let i = if row < p { row } else { row - 1 };
        out[k] = last_col[i];
        row = lf[row] as usize;
    }
    if row != p {
        return Err(BwtError::BrokenCycle);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let (l, p) = bwt_forward(data);
        assert_eq!(l.len(), data.len());
        assert_eq!(bwt_inverse(&l, p).unwrap(), data, "data={data:?}");
    }

    #[test]
    fn empty() {
        roundtrip(b"");
    }

    #[test]
    fn singletons_and_pairs() {
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"ba");
        roundtrip(b"aa");
        roundtrip(&[0]);
        roundtrip(&[255, 0]);
    }

    #[test]
    fn banana_known_output() {
        // Sorted rotations of "banana$": $banana, a$banan, ana$ban, anana$b,
        // banana$, na$bana, nana$ba -> last column annb$aa.
        let (l, p) = bwt_forward(b"banana");
        assert_eq!(p, 4); // '$' is in row 4
        assert_eq!(l, b"annbaa");
    }

    #[test]
    fn repetitive_inputs() {
        roundtrip(&b"a".repeat(1000));
        roundtrip(&b"ab".repeat(500));
        roundtrip(&b"aab".repeat(333));
        roundtrip(&[0u8; 500]);
    }

    #[test]
    fn clusters_equal_bytes() {
        // BWT of text with repeated contexts should have long runs.
        let text = b"the quick brown fox the quick brown fox the quick brown fox";
        let (l, _) = bwt_forward(text);
        let runs = l.windows(2).filter(|w| w[0] == w[1]).count();
        // At least a third of adjacent pairs equal (strong clustering).
        assert!(runs * 3 >= l.len(), "runs={runs} len={}", l.len());
    }

    #[test]
    fn pseudorandom_roundtrip() {
        let mut x: u64 = 99;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 56) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn invalid_primary_rejected() {
        let (l, _) = bwt_forward(b"hello");
        assert!(bwt_inverse(&l, 0).is_err());
        assert!(bwt_inverse(&l, 6).is_err());
        assert!(bwt_inverse(b"", 3).is_err());
    }
}
