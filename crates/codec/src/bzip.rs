//! Bzip2-class block compressor: BWT → MTF → zero-RLE → canonical Huffman.
//!
//! This is the workspace's stand-in for the `bzip2` utility the paper pipes
//! bytesorted traces through. It follows the same pipeline bzip2 uses
//! (block-sorting transform, move-to-front, RUNA/RUNB zero run coding,
//! Huffman entropy stage) with a simplified single-table framing, CRC-32
//! integrity per block, and a linear-time suffix-array BWT so worst-case
//! inputs stay fast.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Bzip, Codec};
//!
//! let codec = Bzip::default();
//! let data = b"compressible compressible compressible".repeat(10);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::bwt::{bwt_forward, bwt_inverse};
use crate::crc::crc32;
use crate::error::CodecError;
use crate::huffman::{Decoder, Encoder};
use crate::mtf::{mtf_decode, mtf_encode};
use crate::rle::{rle_decode, rle_encode, ALPHABET, EOB};
use crate::varint;
use crate::Codec;

/// Default block size (matches `bzip2 -9`'s 900 kB blocks).
pub const DEFAULT_BLOCK_SIZE: usize = 900_000;

/// Smallest accepted block size.
pub const MIN_BLOCK_SIZE: usize = 1024;

/// The bzip2-class block codec.
///
/// Cheap to clone and construct; holds only the configured block size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bzip {
    block_size: usize,
}

impl Bzip {
    /// Creates a codec with the default 900 kB block size.
    pub fn new() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// Creates a codec with a custom block size.
    ///
    /// Bigger blocks expose longer-range regularity (higher ratio, more
    /// memory); the paper's bytesort evaluation feeds 8 MB+ of transformed
    /// bytes per buffer, so benchmark configurations may want larger blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size < MIN_BLOCK_SIZE` or `block_size > u32::MAX as
    /// usize / 2`.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(
            (MIN_BLOCK_SIZE..=u32::MAX as usize / 2).contains(&block_size),
            "block size {block_size} out of range"
        );
        Self { block_size }
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn compress_block(&self, data: &[u8], out: &mut Vec<u8>) {
        debug_assert!(!data.is_empty() && data.len() <= self.block_size);
        let crc = crc32(data);
        let (last_col, primary) = bwt_forward(data);
        let mtf = mtf_encode(&last_col);
        let syms = rle_encode(&mtf);

        let mut freqs = vec![0u64; ALPHABET];
        for &s in &syms {
            freqs[s] += 1;
        }
        let enc = Encoder::from_frequencies(&freqs);
        let mut bits = BitWriter::with_capacity(syms.len() / 2);
        enc.write_table(&mut bits);
        for &s in &syms {
            enc.encode(&mut bits, s);
        }
        let payload = bits.into_bytes();

        varint::write_u64(out, data.len() as u64).expect("vec write");
        out.extend_from_slice(&crc.to_le_bytes());
        varint::write_u64(out, primary as u64).expect("vec write");
        varint::write_u64(out, payload.len() as u64).expect("vec write");
        out.extend_from_slice(&payload);
    }

    fn decompress_block(cursor: &mut &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        let raw_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)? as usize;
        if cursor.len() < 4 {
            return Err(CodecError::Truncated);
        }
        let crc = u32::from_le_bytes(cursor[..4].try_into().expect("4 bytes"));
        *cursor = &cursor[4..];
        let primary = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)?;
        let payload_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)? as usize;
        if cursor.len() < payload_len {
            return Err(CodecError::Truncated);
        }
        let payload = &cursor[..payload_len];
        *cursor = &cursor[payload_len..];
        if primary > raw_len as u64 {
            return Err(CodecError::Corrupt(format!(
                "primary {primary} exceeds block length {raw_len}"
            )));
        }

        let mut bits = BitReader::new(payload);
        let dec = Decoder::read_table(&mut bits, ALPHABET)
            .ok_or_else(|| CodecError::Corrupt("invalid Huffman table".into()))?;
        let mut syms = Vec::with_capacity(raw_len / 2 + 16);
        loop {
            let s = dec
                .decode(&mut bits)
                .ok_or_else(|| CodecError::Corrupt("truncated Huffman stream".into()))?;
            syms.push(s);
            if s == EOB {
                break;
            }
            if syms.len() > raw_len.saturating_mul(2) + 1024 {
                return Err(CodecError::Corrupt("RLE stream longer than block".into()));
            }
        }
        let mtf = rle_decode(&syms).map_err(|e| CodecError::Corrupt(e.to_string()))?;
        if mtf.len() != raw_len {
            return Err(CodecError::Corrupt(format!(
                "block length mismatch: header {raw_len}, payload {}",
                mtf.len()
            )));
        }
        let last_col = mtf_decode(&mtf);
        let data = bwt_inverse(&last_col, primary as u32)
            .map_err(|e| CodecError::Corrupt(e.to_string()))?;
        let actual = crc32(&data);
        if actual != crc {
            return Err(CodecError::ChecksumMismatch {
                expected: crc,
                actual,
            });
        }
        out.extend_from_slice(&data);
        Ok(())
    }
}

impl Default for Bzip {
    fn default() -> Self {
        Self::new()
    }
}

impl Codec for Bzip {
    fn name(&self) -> &'static str {
        "bzip"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len() / 3 + 64);
        for block in data.chunks(self.block_size) {
            self.compress_block(block, &mut out);
        }
        out
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        let mut cursor = data;
        while !cursor.is_empty() {
            Self::decompress_block(&mut cursor, &mut out)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &Bzip, data: &[u8]) {
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty() {
        let codec = Bzip::default();
        assert!(codec.compress(b"").is_empty());
        assert_eq!(codec.decompress(b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn small_inputs() {
        let codec = Bzip::default();
        roundtrip(&codec, b"a");
        roundtrip(&codec, b"ab");
        roundtrip(&codec, &[0]);
        roundtrip(&codec, &[0, 0, 0]);
        roundtrip(&codec, &[255; 17]);
    }

    #[test]
    fn multi_block() {
        let codec = Bzip::with_block_size(MIN_BLOCK_SIZE);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        roundtrip(&codec, &data);
    }

    #[test]
    fn compresses_structure() {
        let codec = Bzip::default();
        let data = b"the quick brown fox jumps over the lazy dog\n".repeat(200);
        let packed = codec.compress(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "expected >10x on repetitive text, got {} -> {}",
            data.len(),
            packed.len()
        );
        roundtrip(&codec, &data);
    }

    #[test]
    fn random_data_expands_little() {
        let mut x: u64 = 7;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        let codec = Bzip::default();
        let packed = codec.compress(&data);
        // Random bytes: expect < 10% expansion.
        assert!(packed.len() < data.len() + data.len() / 10);
        roundtrip(&codec, &data);
    }

    #[test]
    fn corruption_detected() {
        let codec = Bzip::default();
        let data = b"some sample data to corrupt".repeat(50);
        let mut packed = codec.compress(&data);
        // Flip a bit deep in the payload (past the headers).
        let pos = packed.len() - 8;
        packed[pos] ^= 0x40;
        assert!(codec.decompress(&packed).is_err());
    }

    #[test]
    fn truncation_detected() {
        let codec = Bzip::default();
        let packed = codec.compress(&b"hello world ".repeat(40));
        for cut in [1, packed.len() / 2, packed.len() - 1] {
            assert!(codec.decompress(&packed[..cut]).is_err(), "cut={cut}");
        }
    }
}
