//! Bzip2-class block compressor: BWT → MTF → zero-RLE → canonical Huffman.
//!
//! This is the workspace's stand-in for the `bzip2` utility the paper pipes
//! bytesorted traces through. It follows the same pipeline bzip2 uses
//! (block-sorting transform, move-to-front, RUNA/RUNB zero run coding,
//! Huffman entropy stage) with a simplified single-table framing, CRC-32
//! integrity per block, and a linear-time suffix-array BWT so worst-case
//! inputs stay fast.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Bzip, Codec};
//!
//! let codec = Bzip::default();
//! let data = b"compressible compressible compressible".repeat(10);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

use atc_engine::Engine;

use crate::bitio::{BitReader, BitWriter};
use crate::bwt::{bwt_forward_in, bwt_inverse};
use crate::crc::crc32;
use crate::error::CodecError;
use crate::huffman::{Decoder, Encoder};
use crate::mtf::{mtf_decode, mtf_encode_into};
use crate::rle::{rle_decode, rle_encode_into, ALPHABET, EOB};
use crate::sais::SaisScratch;
use crate::varint;
use crate::Codec;

/// Default block size (matches `bzip2 -9`'s 900 kB blocks).
pub const DEFAULT_BLOCK_SIZE: usize = 900_000;

/// Smallest accepted block size.
pub const MIN_BLOCK_SIZE: usize = 1024;

/// The bzip2-class block codec.
///
/// Cheap to clone and construct; holds the configured block size, thread
/// count, and (optionally) an injected execution engine. Blocks are
/// compressed independently, so multi-block inputs parallelize as scoped
/// tasks on the shared [`Engine`] (see [`Bzip::with_threads`]) while the
/// output stays byte-identical to the single-threaded encoding.
#[derive(Debug, Clone)]
pub struct Bzip {
    block_size: usize,
    threads: usize,
    /// Explicit engine; `None` uses the process-wide default when a
    /// multi-block input actually parallelizes.
    engine: Option<Engine>,
}

/// Two codecs are equal when they produce the same bytes: the engine a
/// codec happens to run on never affects its output.
impl PartialEq for Bzip {
    fn eq(&self, other: &Self) -> bool {
        self.block_size == other.block_size && self.threads == other.threads
    }
}

impl Eq for Bzip {}

/// Per-thread reusable buffers for the block pipeline.
///
/// Each ~900 kB block otherwise pays fresh allocations for the SA-IS
/// suffix-array buffers, the BWT last column, the MTF output, the RLE
/// symbol vector, and the frequency table; one scratch reused across a
/// block loop removes all of them from the hot path.
#[derive(Debug, Default)]
struct BlockScratch {
    sais: SaisScratch,
    last_col: Vec<u8>,
    mtf: Vec<u8>,
    syms: Vec<usize>,
    freqs: Vec<u64>,
}

thread_local! {
    /// Per-thread scratch for the serial compress path.
    ///
    /// The streaming writers call [`Codec::compress_into`] once per
    /// segment from long-lived worker threads; keeping the block scratch
    /// in a thread-local (instead of a fresh `BlockScratch` per call)
    /// makes the steady-state segment-compress path free of per-segment
    /// scratch allocations.
    static SERIAL_SCRATCH: std::cell::RefCell<BlockScratch> =
        std::cell::RefCell::new(BlockScratch::default());
}

/// One parsed-but-undecoded block: the header fields plus a borrowed
/// payload. Produced by a cheap sequential header scan so independent
/// blocks can decode on separate threads.
struct RawBlock<'a> {
    raw_len: usize,
    crc: u32,
    primary: u64,
    payload: &'a [u8],
}

impl Bzip {
    /// Creates a codec with the default 900 kB block size.
    pub fn new() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
            threads: 1,
            engine: None,
        }
    }

    /// Creates a codec with a custom block size.
    ///
    /// Bigger blocks expose longer-range regularity (higher ratio, more
    /// memory); the paper's bytesort evaluation feeds 8 MB+ of transformed
    /// bytes per buffer, so benchmark configurations may want larger blocks.
    ///
    /// # Panics
    ///
    /// Panics if `block_size < MIN_BLOCK_SIZE` or `block_size > u32::MAX as
    /// usize / 2`.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(
            (MIN_BLOCK_SIZE..=u32::MAX as usize / 2).contains(&block_size),
            "block size {block_size} out of range"
        );
        Self {
            block_size,
            threads: 1,
            engine: None,
        }
    }

    /// Creates a codec compressing/decompressing up to `threads` blocks
    /// concurrently (default block size) as scoped tasks on the
    /// process-wide [`Engine`].
    ///
    /// `0` and `1` both mean single-threaded. Because blocks share no
    /// state, the compressed output is byte-identical at every thread
    /// count, and streams from any thread count decompress with any other.
    pub fn with_threads(threads: usize) -> Self {
        Self::new().threads(threads)
    }

    /// Sets the thread count (builder style); see [`Bzip::with_threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Submits multi-block work to an explicit `engine` instead of the
    /// process-wide default (builder style; the injection point for
    /// tests). Output bytes never depend on the engine.
    pub fn on_engine(mut self, engine: Engine) -> Self {
        self.engine = Some(engine);
        self
    }

    /// The engine multi-block work runs on.
    fn engine(&self) -> Engine {
        self.engine
            .clone()
            .unwrap_or_else(|| Engine::global_with(self.threads))
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The configured thread count (1 = serial).
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    fn compress_block(&self, data: &[u8], out: &mut Vec<u8>, scratch: &mut BlockScratch) {
        debug_assert!(!data.is_empty() && data.len() <= self.block_size);
        let crc = crc32(data);
        let primary = bwt_forward_in(data, &mut scratch.sais, &mut scratch.last_col);
        mtf_encode_into(&scratch.last_col, &mut scratch.mtf);
        rle_encode_into(&scratch.mtf, &mut scratch.syms);
        let syms = &scratch.syms;

        scratch.freqs.clear();
        scratch.freqs.resize(ALPHABET, 0);
        for &s in syms {
            scratch.freqs[s] += 1;
        }
        let enc = Encoder::from_frequencies(&scratch.freqs);
        let mut bits = BitWriter::with_capacity(syms.len() / 2);
        enc.write_table(&mut bits);
        for &s in syms {
            enc.encode(&mut bits, s);
        }
        let payload = bits.into_bytes();

        // atclint: allow(library-unwrap) -- infallible: io::Write on a
        // Vec<u8> never errors (all three varint writes below).
        varint::write_u64(out, data.len() as u64).expect("vec write");
        out.extend_from_slice(&crc.to_le_bytes());
        // atclint: allow(library-unwrap) -- infallible: vec write.
        varint::write_u64(out, primary as u64).expect("vec write");
        // atclint: allow(library-unwrap) -- infallible: vec write.
        varint::write_u64(out, payload.len() as u64).expect("vec write");
        out.extend_from_slice(&payload);
    }

    /// Parses one block header and borrows its payload, advancing `cursor`
    /// past the block without decoding it.
    fn split_block<'a>(cursor: &mut &'a [u8]) -> Result<RawBlock<'a>, CodecError> {
        let raw_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)?;
        // No writer can produce a block beyond the constructor's cap; a
        // bigger claim is corruption, and rejecting it here keeps
        // header-driven allocations bounded on hostile input.
        if raw_len > u32::MAX as u64 / 2 {
            return Err(CodecError::Corrupt(format!(
                "block length {raw_len} exceeds maximum block size"
            )));
        }
        let raw_len = raw_len as usize;
        if cursor.len() < 4 {
            return Err(CodecError::Truncated);
        }
        // atclint: allow(library-unwrap) -- infallible: the length check
        // above guarantees at least 4 bytes remain.
        let crc = u32::from_le_bytes(cursor[..4].try_into().expect("4 bytes"));
        *cursor = &cursor[4..];
        let primary = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)?;
        let payload_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)? as usize;
        if cursor.len() < payload_len {
            return Err(CodecError::Truncated);
        }
        let payload = &cursor[..payload_len];
        *cursor = &cursor[payload_len..];
        if primary > raw_len as u64 {
            return Err(CodecError::Corrupt(format!(
                "primary {primary} exceeds block length {raw_len}"
            )));
        }
        Ok(RawBlock {
            raw_len,
            crc,
            primary,
            payload,
        })
    }

    /// Decodes one parsed block, returning its raw bytes (always exactly
    /// `block.raw_len` long on success).
    fn decode_block(block: &RawBlock<'_>) -> Result<Vec<u8>, CodecError> {
        let RawBlock {
            raw_len,
            crc,
            primary,
            payload,
        } = *block;
        let mut bits = BitReader::new(payload);
        let dec = Decoder::read_table(&mut bits, ALPHABET)
            .ok_or_else(|| CodecError::Corrupt("invalid Huffman table".into()))?;
        // Cap the symbol-buffer reservation by what the payload could
        // possibly hold (>= 1 bit per symbol), so a corrupt raw_len
        // cannot force a huge allocation before decoding fails.
        let mut syms = Vec::with_capacity((raw_len / 2 + 16).min(payload.len() * 8 + 16));
        loop {
            let s = dec
                .decode(&mut bits)
                .ok_or_else(|| CodecError::Corrupt("truncated Huffman stream".into()))?;
            syms.push(s);
            if s == EOB {
                break;
            }
            if syms.len() > raw_len.saturating_mul(2) + 1024 {
                return Err(CodecError::Corrupt("RLE stream longer than block".into()));
            }
        }
        let mtf = rle_decode(&syms).map_err(|e| CodecError::Corrupt(e.to_string()))?;
        if mtf.len() != raw_len {
            return Err(CodecError::Corrupt(format!(
                "block length mismatch: header {raw_len}, payload {}",
                mtf.len()
            )));
        }
        let last_col = mtf_decode(&mtf);
        let data = bwt_inverse(&last_col, primary as u32)
            .map_err(|e| CodecError::Corrupt(e.to_string()))?;
        let actual = crc32(&data);
        if actual != crc {
            return Err(CodecError::ChecksumMismatch {
                expected: crc,
                actual,
            });
        }
        debug_assert_eq!(data.len(), raw_len);
        Ok(data)
    }
}

impl Default for Bzip {
    fn default() -> Self {
        Self::new()
    }
}

impl Codec for Bzip {
    fn name(&self) -> &'static str {
        "bzip"
    }

    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) -> usize {
        out.clear();
        if data.is_empty() {
            return 0;
        }
        let n_blocks = data.len().div_ceil(self.block_size);
        let workers = self.threads.min(n_blocks);
        if workers <= 1 {
            out.reserve(data.len() / 3 + 64);
            SERIAL_SCRATCH.with(|scratch| {
                let mut scratch = scratch.borrow_mut();
                for block in data.chunks(self.block_size) {
                    self.compress_block(block, out, &mut scratch);
                }
            });
            return out.len();
        }

        // Partition the independent blocks into contiguous runs, one per
        // worker; concatenating the runs in order reproduces the serial
        // byte stream exactly (the framing is self-delimiting). The run
        // partition depends only on `threads`, never on the engine's
        // worker count, so the bytes are identical on any engine.
        let blocks: Vec<&[u8]> = data.chunks(self.block_size).collect();
        let per_worker = blocks.len().div_ceil(workers);
        let runs: Vec<&[&[u8]]> = blocks.chunks(per_worker).collect();
        let mut run_outs: Vec<Vec<u8>> = runs.iter().map(|_| Vec::new()).collect();
        self.engine().scope(|s| {
            for (&run, run_out) in runs.iter().zip(run_outs.iter_mut()) {
                s.spawn(move || {
                    let mut scratch = BlockScratch::default();
                    run_out.reserve(run.iter().map(|b| b.len()).sum::<usize>() / 3 + 64);
                    for block in run {
                        self.compress_block(block, run_out, &mut scratch);
                    }
                });
            }
        });
        out.reserve(data.len() / 3 + 64);
        for run_out in &run_outs {
            out.extend_from_slice(run_out);
        }
        out.len()
    }

    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<usize, CodecError> {
        out.clear();
        // Sequential header scan finds the block boundaries cheaply; the
        // expensive inverse transforms then run per block.
        let mut blocks = Vec::new();
        let mut cursor = data;
        while !cursor.is_empty() {
            blocks.push(Self::split_block(&mut cursor)?);
        }
        // Headers are untrusted until each block's pipeline validates its
        // own length, so preallocation from them is capped: oversized (or
        // overflowing) claims fall back to the incremental serial path,
        // which grows only as blocks actually decode. 64 MiB covers every
        // segment/chunk this system feeds through one decompress call
        // while keeping the header-driven allocation amplification small.
        const MAX_PREALLOC: usize = 64 << 20;
        let total = blocks
            .iter()
            .try_fold(0usize, |acc, b| acc.checked_add(b.raw_len));
        let workers = self.threads.min(blocks.len());
        let total = match total {
            Some(t) if t <= MAX_PREALLOC => t,
            _ => {
                for block in &blocks {
                    out.extend_from_slice(&Self::decode_block(block)?);
                }
                return Ok(out.len());
            }
        };
        if workers <= 1 {
            out.reserve(total);
            for block in &blocks {
                out.extend_from_slice(&Self::decode_block(block)?);
            }
            return Ok(out.len());
        }

        // Every block's decoded length is in its header, so the output
        // can be sized once and split into disjoint per-run slices:
        // tasks write in place, no second buffer and no serial copy.
        out.resize(total, 0);
        let per_worker = blocks.len().div_ceil(workers);
        let runs: Vec<&[RawBlock<'_>]> = blocks.chunks(per_worker).collect();
        let mut results: Vec<Result<(), CodecError>> = runs.iter().map(|_| Ok(())).collect();
        self.engine().scope(|s| {
            let mut rest: &mut [u8] = out;
            for (&run, result) in runs.iter().zip(results.iter_mut()) {
                let run_len: usize = run.iter().map(|b| b.raw_len).sum();
                let (dest, tail) = rest.split_at_mut(run_len);
                rest = tail;
                s.spawn(move || {
                    let mut dest = dest;
                    for block in run {
                        let (block_dest, tail) = dest.split_at_mut(block.raw_len);
                        dest = tail;
                        match Self::decode_block(block) {
                            Ok(bytes) => block_dest.copy_from_slice(&bytes),
                            Err(e) => {
                                *result = Err(e);
                                break;
                            }
                        }
                    }
                });
            }
        });
        // Surface failures in run order, matching the serial scan.
        results.into_iter().collect::<Result<(), CodecError>>()?;
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(codec: &Bzip, data: &[u8]) {
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty() {
        let codec = Bzip::default();
        assert!(codec.compress(b"").is_empty());
        assert_eq!(codec.decompress(b"").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn small_inputs() {
        let codec = Bzip::default();
        roundtrip(&codec, b"a");
        roundtrip(&codec, b"ab");
        roundtrip(&codec, &[0]);
        roundtrip(&codec, &[0, 0, 0]);
        roundtrip(&codec, &[255; 17]);
    }

    #[test]
    fn multi_block() {
        let codec = Bzip::with_block_size(MIN_BLOCK_SIZE);
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        roundtrip(&codec, &data);
    }

    #[test]
    fn compresses_structure() {
        let codec = Bzip::default();
        let data = b"the quick brown fox jumps over the lazy dog\n".repeat(200);
        let packed = codec.compress(&data);
        assert!(
            packed.len() * 10 < data.len(),
            "expected >10x on repetitive text, got {} -> {}",
            data.len(),
            packed.len()
        );
        roundtrip(&codec, &data);
    }

    #[test]
    fn random_data_expands_little() {
        let mut x: u64 = 7;
        let data: Vec<u8> = (0..20_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 56) as u8
            })
            .collect();
        let codec = Bzip::default();
        let packed = codec.compress(&data);
        // Random bytes: expect < 10% expansion.
        assert!(packed.len() < data.len() + data.len() / 10);
        roundtrip(&codec, &data);
    }

    #[test]
    fn corruption_detected() {
        let codec = Bzip::default();
        let data = b"some sample data to corrupt".repeat(50);
        let mut packed = codec.compress(&data);
        // Flip a bit deep in the payload (past the headers).
        let pos = packed.len() - 8;
        packed[pos] ^= 0x40;
        assert!(codec.decompress(&packed).is_err());
    }

    #[test]
    fn truncation_detected() {
        let codec = Bzip::default();
        let packed = codec.compress(&b"hello world ".repeat(40));
        for cut in [1, packed.len() / 2, packed.len() - 1] {
            assert!(codec.decompress(&packed[..cut]).is_err(), "cut={cut}");
        }
    }
}
