//! CRC-32 (IEEE 802.3 polynomial) used to checksum compressed blocks.
//!
//! Every block emitted by [`crate::Bzip`] and [`crate::Lz`] carries the
//! CRC-32 of its *raw* contents; decompression recomputes and verifies it so
//! that corruption is reported as an error rather than silently producing a
//! wrong trace.
//!
//! # Examples
//!
//! ```
//! assert_eq!(atc_codec::crc::crc32(b"123456789"), 0xCBF4_3926);
//! ```

const POLY: u32 = 0xEDB8_8320;

/// Lazily built lookup table (256 entries, one per byte value).
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// Computes the CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use atc_codec::crc::{crc32, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 13, 500, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 64];
        let good = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), good);
    }
}
