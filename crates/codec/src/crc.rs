//! CRC-32 (IEEE 802.3 polynomial) used to checksum compressed blocks.
//!
//! Every block emitted by [`crate::Bzip`] and [`crate::Lz`] carries the
//! CRC-32 of its *raw* contents; decompression recomputes and verifies it so
//! that corruption is reported as an error rather than silently producing a
//! wrong trace.
//!
//! The hot loop is **slice-by-8**: eight bytes are folded per step through
//! eight precomputed 256-entry tables, so consecutive table lookups are
//! independent (the classic byte-at-a-time loop is a serial chain through
//! one table — one lookup per byte, each depending on the last). The tables
//! are built at compile time; table `k` maps a byte to its CRC contribution
//! after being shifted `k` further bytes through the register.
//!
//! # Examples
//!
//! ```
//! assert_eq!(atc_codec::crc::crc32(b"123456789"), 0xCBF4_3926);
//! ```

const POLY: u32 = 0xEDB8_8320;

/// `TABLES[0]` is the classic byte-at-a-time table; `TABLES[k][b]` is the
/// CRC contribution of byte `b` once `k` more bytes have passed through
/// the shift register, which is what lets eight lookups fold a whole
/// 64-bit word in parallel.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            bit += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        k += 1;
    }
    t
}

/// Computes the CRC-32 of `data` in one call.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finalize()
}

/// Incremental CRC-32 hasher.
///
/// # Examples
///
/// ```
/// use atc_codec::crc::{crc32, Hasher};
///
/// let mut h = Hasher::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = &TABLES;
        let mut c = self.state;
        let (chunks, tail) = data.as_chunks::<8>();
        for chunk in chunks {
            // Fold the CRC register into the first word-half, then look up
            // all eight byte contributions independently: no lookup feeds
            // the next, so the loads pipeline.
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            c = t[7][(lo & 0xFF) as usize]
                ^ t[6][((lo >> 8) & 0xFF) as usize]
                ^ t[5][((lo >> 16) & 0xFF) as usize]
                ^ t[4][(lo >> 24) as usize]
                ^ t[3][(hi & 0xFF) as usize]
                ^ t[2][((hi >> 8) & 0xFF) as usize]
                ^ t[1][((hi >> 16) & 0xFF) as usize]
                ^ t[0][(hi >> 24) as usize];
        }
        for &b in tail {
            c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the final checksum value.
    pub fn finalize(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Byte-at-a-time reference implementation the slice-by-8 loop must
    /// match bit for bit.
    fn crc32_scalar(data: &[u8]) -> u32 {
        let t = &TABLES[0];
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 13, 500, 999, 1000] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crc32(&data));
        }
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 64];
        let good = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), good);
    }

    #[test]
    fn matches_scalar_at_awkward_lengths() {
        // 0, 1, 7, 8, 9: the boundaries of the 8-byte fold.
        for n in [0usize, 1, 2, 7, 8, 9, 15, 16, 17, 63, 64, 65] {
            let data: Vec<u8> = (0..n).map(|i| (i as u8).wrapping_mul(37)).collect();
            assert_eq!(crc32(&data), crc32_scalar(&data), "length {n}");
        }
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 64 }))]
        /// Differential: slice-by-8 is byte-identical to the scalar
        /// reference on arbitrary inputs (incl. unaligned splits).
        #[test]
        fn slice_by_8_matches_scalar(data in proptest::collection::vec(any::<u8>(), 0..4096),
                                     split in 0usize..4096) {
            prop_assert_eq!(crc32(&data), crc32_scalar(&data));
            let split = split.min(data.len());
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), crc32_scalar(&data));
        }
    }
}
