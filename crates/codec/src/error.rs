//! Error type shared by all codecs in this crate.

use std::fmt;

/// Errors produced while decompressing a codec stream.
#[derive(Debug)]
#[non_exhaustive]
pub enum CodecError {
    /// The input ended before a complete block was read.
    Truncated,
    /// A header field or bitstream is structurally invalid.
    Corrupt(String),
    /// The block checksum did not match the decompressed data.
    ChecksumMismatch {
        /// CRC-32 recorded in the block header.
        expected: u32,
        /// CRC-32 of the decompressed bytes.
        actual: u32,
    },
    /// An underlying I/O error (streaming wrappers only).
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "compressed stream is truncated"),
            CodecError::Corrupt(what) => write!(f, "compressed stream is corrupt: {what}"),
            CodecError::ChecksumMismatch { expected, actual } => write!(
                f,
                "block checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
            ),
            CodecError::Io(e) => write!(f, "i/o error in codec stream: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<CodecError> for std::io::Error {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Io(io) => io,
            other => std::io::Error::new(std::io::ErrorKind::InvalidData, other),
        }
    }
}
