//! Canonical, length-limited Huffman coding.
//!
//! This is the entropy stage of the [`crate::Bzip`] and [`crate::Lz`] block
//! codecs. Code lengths are limited to [`MAX_CODE_LEN`] bits by iteratively
//! halving frequencies and rebuilding (the same strategy bzip2 uses), and
//! the canonical form means a table serializes as just one length per
//! symbol.
//!
//! # Examples
//!
//! ```
//! use atc_codec::bitio::{BitReader, BitWriter};
//! use atc_codec::huffman::{Decoder, Encoder};
//!
//! let data = [0usize, 1, 1, 2, 2, 2, 2, 7];
//! let mut freqs = [0u64; 8];
//! for &s in &data {
//!     freqs[s] += 1;
//! }
//! let enc = Encoder::from_frequencies(&freqs);
//! let mut w = BitWriter::new();
//! enc.write_table(&mut w);
//! for &s in &data {
//!     enc.encode(&mut w, s);
//! }
//! let bytes = w.into_bytes();
//!
//! let mut r = BitReader::new(&bytes);
//! let dec = Decoder::read_table(&mut r, 8).unwrap();
//! for &s in &data {
//!     assert_eq!(dec.decode(&mut r), Some(s));
//! }
//! ```

use crate::bitio::{BitReader, BitWriter};

/// Maximum code length in bits.
pub const MAX_CODE_LEN: u32 = 20;

/// Number of bits used by the primary decode lookup table.
const LUT_BITS: u32 = 10;

/// Computes optimal code lengths for `freqs` with a length limit.
///
/// Symbols with zero frequency get length 0 (no code). If only one symbol is
/// used it still gets a 1-bit code so the bitstream is self-delimiting.
pub fn code_lengths(freqs: &[u64]) -> Vec<u32> {
    assert!(!freqs.is_empty(), "alphabet must not be empty");
    let mut scaled: Vec<u64> = freqs.to_vec();
    loop {
        let lens = unbounded_code_lengths(&scaled);
        let max = lens.iter().copied().max().unwrap_or(0);
        if max <= MAX_CODE_LEN {
            return lens;
        }
        // Flatten the distribution and retry, as bzip2 does: halving
        // frequencies (keeping them nonzero) shrinks the depth of the tree.
        for f in scaled.iter_mut() {
            if *f > 0 {
                *f = (*f / 2).max(1);
            }
        }
    }
}

/// Package-free Huffman construction via the classic two-queue/heap method.
fn unbounded_code_lengths(freqs: &[u64]) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = freqs.len();
    let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    let mut lens = vec![0u32; n];
    match used.len() {
        0 => return lens,
        1 => {
            lens[used[0]] = 1;
            return lens;
        }
        _ => {}
    }

    // Internal tree nodes; leaves are 0..n, internals appended after.
    let mut parent = vec![usize::MAX; n + used.len()];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        used.iter().map(|&i| Reverse((freqs[i], i))).collect();
    let mut next = n;
    while heap.len() > 1 {
        // atclint: allow(library-unwrap) -- infallible: the loop guard
        // holds the heap at >= 2 items for both pops.
        let Reverse((fa, a)) = heap.pop().expect("heap has >= 2 items");
        // atclint: allow(library-unwrap) -- infallible: ditto.
        let Reverse((fb, b)) = heap.pop().expect("heap has >= 2 items");
        parent[a] = next;
        parent[b] = next;
        heap.push(Reverse((fa + fb, next)));
        next += 1;
    }

    for &leaf in &used {
        let mut depth = 0;
        let mut node = leaf;
        while parent[node] != usize::MAX {
            node = parent[node];
            depth += 1;
        }
        lens[leaf] = depth;
    }
    lens
}

/// Assigns canonical codes (numerically increasing within each length,
/// shorter codes first) from code lengths.
fn canonical_codes(lens: &[u32]) -> Vec<u32> {
    let max = lens.iter().copied().max().unwrap_or(0);
    let mut count = vec![0u32; max as usize + 1];
    for &l in lens {
        if l > 0 {
            count[l as usize] += 1;
        }
    }
    let mut next = vec![0u32; max as usize + 2];
    let mut code = 0u32;
    for l in 1..=max as usize {
        code = (code + count[l - 1]) << 1;
        next[l] = code;
    }
    lens.iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next[l as usize];
                next[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Canonical Huffman encoder over an alphabet of `usize` symbols.
#[derive(Debug, Clone)]
pub struct Encoder {
    lens: Vec<u32>,
    codes: Vec<u32>,
}

impl Encoder {
    /// Builds an encoder from symbol frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `freqs` is empty.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let lens = code_lengths(freqs);
        let codes = canonical_codes(&lens);
        Self { lens, codes }
    }

    /// Rebuilds an encoder from explicit code lengths (as read from a table).
    pub fn from_lengths(lens: &[u32]) -> Self {
        let codes = canonical_codes(lens);
        Self {
            lens: lens.to_vec(),
            codes,
        }
    }

    /// Code length per symbol (0 = symbol unused).
    pub fn lengths(&self) -> &[u32] {
        &self.lens
    }

    /// Total encoded size in bits of a message with the given frequencies.
    pub fn cost_bits(&self, freqs: &[u64]) -> u64 {
        freqs
            .iter()
            .zip(&self.lens)
            .map(|(&f, &l)| f * l as u64)
            .sum()
    }

    /// Appends the code for `symbol` to `w`.
    ///
    /// # Panics
    ///
    /// Panics if `symbol` has no code (zero frequency at build time).
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, symbol: usize) {
        let len = self.lens[symbol];
        assert!(len > 0, "symbol {symbol} has no Huffman code");
        w.write_bits(self.codes[symbol] as u64, len);
    }

    /// Serializes the table as 5-bit code lengths, one per symbol.
    pub fn write_table(&self, w: &mut BitWriter) {
        for &l in &self.lens {
            debug_assert!(l <= MAX_CODE_LEN);
            w.write_bits(l as u64, 5);
        }
    }
}

/// Entry of the primary decode LUT: `(symbol, code_len)`; `code_len == 0`
/// marks codes longer than [`LUT_BITS`] (resolved by the slow path).
#[derive(Debug, Clone, Copy, Default)]
struct LutEntry {
    symbol: u32,
    len: u8,
}

/// Canonical Huffman decoder with a fast primary lookup table.
#[derive(Debug, Clone)]
pub struct Decoder {
    /// `first_code[l]`: canonical code value of the first length-`l` code.
    first_code: Vec<u32>,
    /// `first_index[l]`: index into `sorted_symbols` of that first code.
    first_index: Vec<u32>,
    /// Symbols sorted by (length, code).
    sorted_symbols: Vec<u32>,
    max_len: u32,
    lut: Vec<LutEntry>,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// Returns `None` if the lengths do not describe a valid prefix code
    /// (over-subscribed Kraft sum) and the alphabet has more than one symbol.
    pub fn from_lengths(lens: &[u32]) -> Option<Self> {
        let max_len = lens.iter().copied().max().unwrap_or(0);
        if max_len == 0 || max_len > MAX_CODE_LEN {
            return None;
        }
        let mut count = vec![0u32; max_len as usize + 1];
        for &l in lens {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Kraft inequality check: the code must be decodable.
        let mut kraft: u64 = 0;
        for l in 1..=max_len {
            kraft += (count[l as usize] as u64) << (MAX_CODE_LEN - l);
        }
        if kraft > 1u64 << MAX_CODE_LEN {
            return None;
        }

        let mut first_code = vec![0u32; max_len as usize + 2];
        let mut first_index = vec![0u32; max_len as usize + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for l in 1..=max_len as usize {
            code = (code + count[l - 1]) << 1;
            first_code[l] = code;
            first_index[l] = index;
            index += count[l];
        }

        let mut order: Vec<u32> = (0..lens.len() as u32)
            .filter(|&s| lens[s as usize] > 0)
            .collect();
        order.sort_by_key(|&s| (lens[s as usize], s));

        let mut dec = Self {
            first_code,
            first_index,
            sorted_symbols: order,
            max_len,
            lut: vec![LutEntry::default(); 1 << LUT_BITS],
        };
        dec.build_lut(lens);
        Some(dec)
    }

    /// Reads a 5-bit-per-symbol table (as written by [`Encoder::write_table`])
    /// and builds the decoder.
    pub fn read_table(r: &mut BitReader<'_>, alphabet: usize) -> Option<Self> {
        let mut lens = Vec::with_capacity(alphabet);
        for _ in 0..alphabet {
            lens.push(r.read_bits(5)? as u32);
        }
        Self::from_lengths(&lens)
    }

    fn build_lut(&mut self, lens: &[u32]) {
        let mut codes = canonical_codes(lens);
        for (sym, (&len, code)) in lens.iter().zip(codes.iter_mut()).enumerate() {
            if len == 0 || len > LUT_BITS {
                continue;
            }
            let shift = LUT_BITS - len;
            let base = (*code as usize) << shift;
            for fill in 0..(1usize << shift) {
                self.lut[base + fill] = LutEntry {
                    symbol: sym as u32,
                    len: len as u8,
                };
            }
        }
    }

    /// Decodes one symbol; returns `None` on truncated input or an invalid
    /// code.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Option<usize> {
        // Fast path: peek LUT_BITS bits if available.
        if r.remaining_bits() >= LUT_BITS as usize {
            let mut peek = r.clone();
            let bits = peek.read_bits(LUT_BITS)? as usize;
            let e = self.lut[bits];
            if e.len > 0 {
                r.read_bits(e.len as u32)?;
                return Some(e.symbol as usize);
            }
            // Long code: fall through to canonical walk (re-reads from r).
        }
        let mut code: u32 = 0;
        for len in 1..=self.max_len {
            code = (code << 1) | r.read_bits(1)? as u32;
            let fc = self.first_code[len as usize];
            if code >= fc && code - fc < self.count_at(len) {
                let idx = self.first_index[len as usize] + (code - fc);
                return Some(self.sorted_symbols[idx as usize] as usize);
            }
        }
        None
    }

    /// Number of codes of exactly length `len`.
    fn count_at(&self, len: u32) -> u32 {
        let l = len as usize;
        let next = if len < self.max_len {
            self.first_index[l + 1]
        } else {
            self.sorted_symbols.len() as u32
        };
        next - self.first_index[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(symbols: &[usize], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s] += 1;
        }
        let enc = Encoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        enc.write_table(&mut w);
        for &s in symbols {
            enc.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        let dec = Decoder::read_table(&mut r, alphabet).expect("valid table");
        for (i, &s) in symbols.iter().enumerate() {
            assert_eq!(dec.decode(&mut r), Some(s), "symbol {i}");
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        roundtrip(&[3, 3, 3, 3], 8);
    }

    #[test]
    fn two_symbols() {
        roundtrip(&[0, 1, 0, 1, 1, 1, 1], 2);
    }

    #[test]
    fn skewed_distribution() {
        let mut data = vec![0usize; 10_000];
        for i in 0..100 {
            data[i * 100] = 1 + (i % 7);
        }
        roundtrip(&data, 8);
    }

    #[test]
    fn uniform_256() {
        let data: Vec<usize> = (0..4096).map(|i| i % 256).collect();
        roundtrip(&data, 256);
    }

    #[test]
    fn geometric_258() {
        // Exercises the length-limiting path with a heavily skewed alphabet.
        let mut freqs = vec![0u64; 258];
        let mut f = 1u64 << 40;
        for entry in freqs.iter_mut() {
            *entry = f.max(1);
            f /= 2;
        }
        let lens = code_lengths(&freqs);
        assert!(lens.iter().all(|&l| l <= MAX_CODE_LEN));
        let enc = Encoder::from_frequencies(&freqs);
        let dec = Decoder::from_lengths(enc.lengths()).expect("valid");
        let mut w = BitWriter::new();
        for s in 0..258 {
            enc.encode(&mut w, s);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for s in 0..258 {
            assert_eq!(dec.decode(&mut r), Some(s));
        }
    }

    #[test]
    fn invalid_table_rejected() {
        // Three symbols of length 1 over-subscribe the code space.
        assert!(Decoder::from_lengths(&[1, 1, 1]).is_none());
    }

    #[test]
    fn truncated_stream() {
        let freqs = vec![1u64; 4];
        let enc = Encoder::from_frequencies(&freqs);
        let mut w = BitWriter::new();
        enc.encode(&mut w, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes[..0]);
        let dec = Decoder::from_lengths(enc.lengths()).expect("valid");
        assert_eq!(dec.decode(&mut r), None);
    }

    #[test]
    fn kraft_exact_codes() {
        // Lengths 1,2,3,3 exactly fill the code space.
        let dec = Decoder::from_lengths(&[1, 2, 3, 3]);
        assert!(dec.is_some());
    }
}
