//! Byte-level block compressors used as back ends by the ATC trace
//! compressor ([`atc-core`](../atc_core/index.html)).
//!
//! The paper pipes bytesort-transformed traces through `bzip2 -9`; this
//! crate provides the equivalent substrate, built from scratch:
//!
//! * [`Bzip`] — bzip2-class block-sorting codec (BWT via linear-time SA-IS,
//!   move-to-front, RUNA/RUNB zero run-length coding, canonical Huffman),
//!   the default back end.
//! * [`Lz`] — gzip-class LZSS + Huffman codec, the faster/lower-ratio
//!   alternative the paper mentions.
//! * [`Store`] — identity codec for measuring framing overhead and
//!   debugging containers.
//!
//! All codecs implement the object-safe [`Codec`] trait, add CRC-32
//! integrity checking per block, and have streaming [`CodecWriter`] /
//! [`CodecReader`] adapters.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Bzip, Codec};
//!
//! let codec = Bzip::default();
//! let data = b"an address trace is highly structured ".repeat(100);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len() / 5);
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

pub mod bitio;
pub mod bwt;
mod bzip;
pub mod crc;
mod error;
pub mod huffman;
mod lz;
pub mod mtf;
mod parallel;
pub mod rle;
pub mod sais;
mod store;
mod stream;
pub mod varint;

pub use bzip::{Bzip, DEFAULT_BLOCK_SIZE};
pub use error::CodecError;
pub use lz::Lz;
pub use parallel::{ParallelCodecWriter, ReadaheadReader, WorkerPool};
pub use store::Store;
pub use stream::{CodecReader, CodecWriter, DEFAULT_SEGMENT_SIZE};

/// A one-shot, thread-safe byte compressor.
///
/// Implementations are *block* codecs: `compress` may internally split the
/// input, and `decompress` reverses exactly one `compress` output. The trait
/// is object-safe so containers (the ATC directory format, the TCgen
/// baseline) can hold `&dyn Codec` and let callers choose the back end, as
/// the original tool does with its external-compressor command string.
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (used in file metadata).
    fn name(&self) -> &'static str;

    /// Compresses `data`; never fails.
    fn compress(&self, data: &[u8]) -> Vec<u8>;

    /// Decompresses a buffer produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated, corrupt, or checksum-failing
    /// input.
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError>;
}

/// Looks up a codec by its [`Codec::name`].
///
/// Returns `None` for unknown names. Used when reopening on-disk containers
/// that record which back end wrote them.
///
/// # Examples
///
/// ```
/// let codec = atc_codec::codec_by_name("bzip").unwrap();
/// assert_eq!(codec.name(), "bzip");
/// ```
pub fn codec_by_name(name: &str) -> Option<Box<dyn Codec>> {
    match name {
        "bzip" => Some(Box::new(Bzip::default())),
        "lz" => Some(Box::new(Lz::default())),
        "store" => Some(Box::new(Store)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        for name in ["bzip", "lz", "store"] {
            let codec = codec_by_name(name).expect("known codec");
            assert_eq!(codec.name(), name);
        }
        assert!(codec_by_name("nope").is_none());
    }

    #[test]
    fn trait_object_usable() {
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(Bzip::default()),
            Box::new(Lz::default()),
            Box::new(Store),
        ];
        let data = b"object safety check".repeat(10);
        for c in &codecs {
            assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
        }
    }
}
