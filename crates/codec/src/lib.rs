//! Byte-level block compressors used as back ends by the ATC trace
//! compressor ([`atc-core`](../atc_core/index.html)).
//!
//! The paper pipes bytesort-transformed traces through `bzip2 -9`; this
//! crate provides the equivalent substrate, built from scratch:
//!
//! * [`Bzip`] — bzip2-class block-sorting codec (BWT via linear-time SA-IS,
//!   move-to-front, RUNA/RUNB zero run-length coding, canonical Huffman),
//!   the default back end.
//! * [`Lz`] — gzip-class LZSS + Huffman codec, the faster/lower-ratio
//!   alternative the paper mentions.
//! * [`Store`] — identity codec for measuring framing overhead and
//!   debugging containers.
//!
//! All codecs implement the object-safe [`Codec`] trait, add CRC-32
//! integrity checking per block, and have streaming [`CodecWriter`] /
//! [`CodecReader`] adapters.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Bzip, Codec};
//!
//! let codec = Bzip::default();
//! let data = b"an address trace is highly structured ".repeat(100);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len() / 5);
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

#![warn(missing_docs)]

pub mod bitio;
pub mod bwt;
mod bzip;
pub mod crc;
mod error;
pub mod huffman;
mod lz;
pub mod mtf;
mod parallel;
pub mod rle;
pub mod sais;
mod store;
mod stream;
pub mod varint;

pub use atc_engine::{Engine, EngineStats};
pub use bzip::{Bzip, DEFAULT_BLOCK_SIZE};
pub use error::CodecError;
pub use lz::Lz;
pub use parallel::{
    ByteBudget, ParallelCodecWriter, ReadaheadReader, ScratchStats, IN_FLIGHT_PER_WORKER,
};
pub use store::Store;
pub use stream::{CodecReader, CodecWriter, SegmentRecord, StreamScratch, DEFAULT_SEGMENT_SIZE};

/// A one-shot, thread-safe byte compressor.
///
/// Implementations are *block* codecs: `compress` may internally split the
/// input, and `decompress` reverses exactly one `compress` output. The trait
/// is object-safe so containers (the ATC directory format, the TCgen
/// baseline) can hold `&dyn Codec` and let callers choose the back end, as
/// the original tool does with its external-compressor command string.
///
/// The streaming entry points [`Codec::compress_into`] /
/// [`Codec::decompress_into`] write into a caller-provided scratch buffer
/// so per-segment pipelines ([`CodecWriter`], [`ParallelCodecWriter`],
/// [`ReadaheadReader`]) can recycle allocations instead of materializing a
/// fresh `Vec` per segment. They have default adapters over the one-shot
/// methods, so external implementations keep working unchanged; the
/// built-in codecs implement them natively (and implement the one-shot
/// methods *in terms of* the streaming ones). Each pair defaults to the
/// other, so an implementation must provide at least one of
/// `compress`/`compress_into` and one of `decompress`/`decompress_into`.
pub trait Codec: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (used in file metadata).
    fn name(&self) -> &'static str;

    /// Compresses `data`; never fails.
    fn compress(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.compress_into(data, &mut out);
        out
    }

    /// Decompresses a buffer produced by [`Codec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated, corrupt, or checksum-failing
    /// input.
    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        let mut out = Vec::new();
        self.decompress_into(data, &mut out)?;
        Ok(out)
    }

    /// Compresses `data` into `out`, returning the number of bytes written.
    ///
    /// `out` is cleared first; its existing capacity is reused, so calling
    /// this in a loop with one long-lived buffer makes the steady-state
    /// compress path allocation-free at the segment level. The bytes
    /// produced are exactly those of [`Codec::compress`] on the same input.
    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) -> usize {
        let packed = self.compress(data);
        out.clear();
        out.extend_from_slice(&packed);
        packed.len()
    }

    /// Decompresses `data` into `out`, returning the number of bytes
    /// written.
    ///
    /// `out` is cleared first and its capacity reused, mirroring
    /// [`Codec::compress_into`]. On error, the contents of `out` are
    /// unspecified (callers must not interpret them).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Codec::decompress`].
    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<usize, CodecError> {
        let raw = self.decompress(data)?;
        out.clear();
        out.extend_from_slice(&raw);
        Ok(raw.len())
    }
}

/// Looks up a codec by its [`Codec::name`].
///
/// Returns `None` for unknown names. Used when reopening on-disk containers
/// that record which back end wrote them.
///
/// # Examples
///
/// ```
/// let codec = atc_codec::codec_by_name("bzip").unwrap();
/// assert_eq!(codec.name(), "bzip");
/// ```
pub fn codec_by_name(name: &str) -> Option<Box<dyn Codec>> {
    match name {
        "bzip" => Some(Box::new(Bzip::default())),
        "lz" => Some(Box::new(Lz::default())),
        "store" => Some(Box::new(Store)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        for name in ["bzip", "lz", "store"] {
            let codec = codec_by_name(name).expect("known codec");
            assert_eq!(codec.name(), name);
        }
        assert!(codec_by_name("nope").is_none());
    }

    #[test]
    fn trait_object_usable() {
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(Bzip::default()),
            Box::new(Lz::default()),
            Box::new(Store),
        ];
        let data = b"object safety check".repeat(10);
        for c in &codecs {
            assert_eq!(c.decompress(&c.compress(&data)).unwrap(), data);
        }
    }

    /// External implementor providing only the one-shot methods: the
    /// default streaming adapters must keep it working (and clear the
    /// caller's scratch).
    #[derive(Debug)]
    struct OneShotOnly;

    impl Codec for OneShotOnly {
        fn name(&self) -> &'static str {
            "oneshot"
        }

        fn compress(&self, data: &[u8]) -> Vec<u8> {
            let mut v = vec![0xAB];
            v.extend_from_slice(data);
            v
        }

        fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
            match data.split_first() {
                Some((0xAB, rest)) => Ok(rest.to_vec()),
                _ => Err(CodecError::Corrupt("bad magic".into())),
            }
        }
    }

    #[test]
    fn default_into_adapters_wrap_oneshot_impls() {
        let c = OneShotOnly;
        let mut out = vec![9u8; 100]; // stale contents must be cleared
        let n = c.compress_into(b"xyz", &mut out);
        assert_eq!(n, 4);
        assert_eq!(out, [0xAB, b'x', b'y', b'z']);
        let mut back = vec![7u8; 50];
        let m = c.decompress_into(&out, &mut back).unwrap();
        assert_eq!(m, 3);
        assert_eq!(back, b"xyz");
    }

    #[test]
    fn into_methods_reuse_capacity() {
        let data = b"capacity reuse check ".repeat(50);
        for c in [
            Box::new(Bzip::default()) as Box<dyn Codec>,
            Box::new(Lz::default()),
            Box::new(Store),
        ] {
            let mut packed = Vec::new();
            let n = c.compress_into(&data, &mut packed);
            assert_eq!(n, packed.len());
            assert_eq!(packed, c.compress(&data));
            let cap = packed.capacity();
            let n2 = c.compress_into(&data, &mut packed);
            assert_eq!(n2, n);
            assert!(packed.capacity() >= cap, "capacity must not be dropped");

            let mut raw = Vec::new();
            let m = c.decompress_into(&packed, &mut raw).unwrap();
            assert_eq!(m, raw.len());
            assert_eq!(raw, data);
        }
    }
}
