//! Gzip-class codec: LZSS matching + canonical Huffman entropy stage.
//!
//! The paper notes that ATC chunks can be piped through "another compressor,
//! like gzip" instead of bzip2; this codec is that alternative back end. It
//! uses deflate's length/distance bucketing (32 KiB window, matches of
//! 3..=258 bytes) with a hash-chain matcher, but a simplified single-block
//! framing with CRC-32 integrity.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Codec, Lz};
//!
//! let codec = Lz::default();
//! let data = b"abcabcabcabcabc".repeat(20);
//! let packed = codec.compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(codec.decompress(&packed).unwrap(), data);
//! ```

use crate::bitio::{BitReader, BitWriter};
use crate::crc::crc32;
use crate::error::CodecError;
use crate::huffman::{Decoder, Encoder};
use crate::varint;
use crate::Codec;

/// Deflate length-code base values (codes 257..=285 in deflate; here the
/// lit/len alphabet uses 257 + idx).
const LEN_BASE: [u32; 29] = [
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31, 35, 43, 51, 59, 67, 83, 99, 115, 131,
    163, 195, 227, 258,
];
const LEN_EXTRA: [u32; 29] = [
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0,
];
const DIST_BASE: [u32; 30] = [
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193, 257, 385, 513, 769, 1025, 1537,
    2049, 3073, 4097, 6145, 8193, 12289, 16385, 24577,
];
const DIST_EXTRA: [u32; 30] = [
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13,
    13,
];

const EOB_SYM: usize = 256;
const LITLEN_ALPHABET: usize = 257 + LEN_BASE.len(); // 286
const DIST_ALPHABET: usize = DIST_BASE.len(); // 30

const WINDOW: usize = 32 * 1024;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 258;
const HASH_BITS: u32 = 15;
const MAX_CHAIN: usize = 64;

/// Default block size for [`Lz`].
pub const DEFAULT_BLOCK_SIZE: usize = 256 * 1024;

/// The LZSS + Huffman codec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lz {
    block_size: usize,
}

impl Lz {
    /// Creates a codec with the default block size.
    pub fn new() -> Self {
        Self {
            block_size: DEFAULT_BLOCK_SIZE,
        }
    }

    /// Creates a codec with a custom block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or exceeds `u32::MAX as usize / 2`.
    pub fn with_block_size(block_size: usize) -> Self {
        assert!(
            block_size > 0 && block_size <= u32::MAX as usize / 2,
            "block size {block_size} out of range"
        );
        Self { block_size }
    }

    /// The configured block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }
}

impl Default for Lz {
    fn default() -> Self {
        Self::new()
    }
}

/// One LZSS token.
#[derive(Debug, Clone, Copy)]
enum Token {
    Literal(u8),
    Match { len: u32, dist: u32 },
}

/// Per-thread reusable buffers for the block compress path.
///
/// Each block otherwise pays fresh allocations for the hash-chain `head`
/// table (32 K entries), the `prev` chain (one entry per input byte), the
/// token vector, and the two frequency tables; one scratch reused across a
/// block loop removes all of them from the hot path (the same treatment
/// `Bzip` gives its `BlockScratch`).
#[derive(Debug, Default)]
struct LzScratch {
    head: Vec<usize>,
    prev: Vec<usize>,
    tokens: Vec<Token>,
    lit_freq: Vec<u64>,
    dist_freq: Vec<u64>,
}

thread_local! {
    /// Per-thread scratch for the compress path.
    ///
    /// The streaming writers call [`Codec::compress_into`] once per
    /// segment from long-lived worker threads; keeping the tokenizer
    /// state in a thread-local (instead of fresh vectors per block) makes
    /// the steady-state segment-compress path free of per-block scratch
    /// allocations.
    static LZ_SCRATCH: std::cell::RefCell<LzScratch> =
        std::cell::RefCell::new(LzScratch::default());
}

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Greedy hash-chain tokenizer, reusing `scratch`'s `head`/`prev`/token
/// buffers; the tokens land in `scratch.tokens`.
fn tokenize(data: &[u8], scratch: &mut LzScratch) {
    let n = data.len();
    let tokens = &mut scratch.tokens;
    tokens.clear();
    tokens.reserve(n / 3 + 8);
    let head = &mut scratch.head;
    head.clear();
    head.resize(1 << HASH_BITS, usize::MAX);
    let prev = &mut scratch.prev;
    prev.clear();
    prev.resize(n, usize::MAX);
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut chain = 0;
            while cand != usize::MAX && i - cand <= WINDOW && chain < MAX_CHAIN {
                let limit = (n - i).min(MAX_MATCH);
                let mut l = 0usize;
                while l < limit && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= MAX_MATCH {
                        break;
                    }
                }
                chain += 1;
                cand = prev[cand];
            }
            prev[i] = head[h];
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            tokens.push(Token::Match {
                len: best_len as u32,
                dist: best_dist as u32,
            });
            // Insert hash entries for skipped positions so future matches
            // can reference them.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= n {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            tokens.push(Token::Literal(data[i]));
            i += 1;
        }
    }
}

/// Bucket index for a match length (largest base <= len).
fn len_code(len: u32) -> usize {
    debug_assert!((MIN_MATCH as u32..=MAX_MATCH as u32).contains(&len));
    match LEN_BASE.binary_search(&len) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

/// Bucket index for a distance.
fn dist_code(dist: u32) -> usize {
    debug_assert!(dist >= 1);
    match DIST_BASE.binary_search(&dist) {
        Ok(i) => i,
        Err(i) => i - 1,
    }
}

impl Lz {
    fn compress_block(&self, data: &[u8], out: &mut Vec<u8>, scratch: &mut LzScratch) {
        debug_assert!(!data.is_empty());
        let crc = crc32(data);
        tokenize(data, scratch);
        let tokens = &scratch.tokens;

        let lit_freq = &mut scratch.lit_freq;
        lit_freq.clear();
        lit_freq.resize(LITLEN_ALPHABET, 0);
        let dist_freq = &mut scratch.dist_freq;
        dist_freq.clear();
        dist_freq.resize(DIST_ALPHABET, 0);
        for t in tokens {
            match *t {
                Token::Literal(b) => lit_freq[b as usize] += 1,
                Token::Match { len, dist } => {
                    lit_freq[257 + len_code(len)] += 1;
                    dist_freq[dist_code(dist)] += 1;
                }
            }
        }
        lit_freq[EOB_SYM] += 1;
        let has_dist = dist_freq.iter().any(|&f| f > 0);

        let lit_enc = Encoder::from_frequencies(lit_freq);
        let dist_enc = has_dist.then(|| Encoder::from_frequencies(dist_freq));

        let mut bits = BitWriter::with_capacity(data.len() / 2);
        bits.write_bit(has_dist);
        lit_enc.write_table(&mut bits);
        if let Some(de) = &dist_enc {
            de.write_table(&mut bits);
        }
        for t in tokens {
            match *t {
                Token::Literal(b) => lit_enc.encode(&mut bits, b as usize),
                Token::Match { len, dist } => {
                    let lc = len_code(len);
                    lit_enc.encode(&mut bits, 257 + lc);
                    if LEN_EXTRA[lc] > 0 {
                        bits.write_bits((len - LEN_BASE[lc]) as u64, LEN_EXTRA[lc]);
                    }
                    let dc = dist_code(dist);
                    // atclint: allow(library-unwrap) -- infallible: the
                    // table is built whenever the token stream holds at
                    // least one match, and this arm only runs on matches.
                    let de = dist_enc.as_ref().expect("matches imply dist table");
                    de.encode(&mut bits, dc);
                    if DIST_EXTRA[dc] > 0 {
                        bits.write_bits((dist - DIST_BASE[dc]) as u64, DIST_EXTRA[dc]);
                    }
                }
            }
        }
        lit_enc.encode(&mut bits, EOB_SYM);
        let payload = bits.into_bytes();

        // atclint: allow(library-unwrap) -- infallible: io::Write on a
        // Vec<u8> never errors (both varint writes below).
        varint::write_u64(out, data.len() as u64).expect("vec write");
        out.extend_from_slice(&crc.to_le_bytes());
        // atclint: allow(library-unwrap) -- infallible: vec write.
        varint::write_u64(out, payload.len() as u64).expect("vec write");
        out.extend_from_slice(&payload);
    }

    fn decompress_block(cursor: &mut &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
        let raw_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)? as usize;
        if cursor.len() < 4 {
            return Err(CodecError::Truncated);
        }
        // atclint: allow(library-unwrap) -- infallible: the length check
        // above guarantees at least 4 bytes remain.
        let crc = u32::from_le_bytes(cursor[..4].try_into().expect("4 bytes"));
        *cursor = &cursor[4..];
        let payload_len = varint::read_u64(cursor).map_err(|_| CodecError::Truncated)? as usize;
        if cursor.len() < payload_len {
            return Err(CodecError::Truncated);
        }
        let payload = &cursor[..payload_len];
        *cursor = &cursor[payload_len..];

        let mut bits = BitReader::new(payload);
        let has_dist = bits
            .read_bit()
            .ok_or_else(|| CodecError::Corrupt("missing dist flag".into()))?;
        let lit_dec = Decoder::read_table(&mut bits, LITLEN_ALPHABET)
            .ok_or_else(|| CodecError::Corrupt("invalid lit/len table".into()))?;
        let dist_dec = if has_dist {
            Some(
                Decoder::read_table(&mut bits, DIST_ALPHABET)
                    .ok_or_else(|| CodecError::Corrupt("invalid distance table".into()))?,
            )
        } else {
            None
        };

        let start = out.len();
        loop {
            let sym = lit_dec
                .decode(&mut bits)
                .ok_or_else(|| CodecError::Corrupt("truncated token stream".into()))?;
            if sym == EOB_SYM {
                break;
            }
            if sym < 256 {
                out.push(sym as u8);
            } else {
                let lc = sym - 257;
                if lc >= LEN_BASE.len() {
                    return Err(CodecError::Corrupt(format!("invalid length code {lc}")));
                }
                let extra = if LEN_EXTRA[lc] > 0 {
                    bits.read_bits(LEN_EXTRA[lc])
                        .ok_or_else(|| CodecError::Corrupt("truncated length bits".into()))?
                } else {
                    0
                };
                let len = (LEN_BASE[lc] as u64 + extra) as usize;
                let dd = dist_dec
                    .as_ref()
                    .ok_or_else(|| CodecError::Corrupt("match without dist table".into()))?;
                let dc = dd
                    .decode(&mut bits)
                    .ok_or_else(|| CodecError::Corrupt("truncated distance".into()))?;
                let dextra = if DIST_EXTRA[dc] > 0 {
                    bits.read_bits(DIST_EXTRA[dc])
                        .ok_or_else(|| CodecError::Corrupt("truncated distance bits".into()))?
                } else {
                    0
                };
                let dist = (DIST_BASE[dc] as u64 + dextra) as usize;
                let produced = out.len() - start;
                if dist == 0 || dist > produced {
                    return Err(CodecError::Corrupt(format!(
                        "distance {dist} exceeds produced {produced}"
                    )));
                }
                // Byte-by-byte copy: overlapping matches are the normal case.
                for _ in 0..len {
                    let b = out[out.len() - dist];
                    out.push(b);
                }
            }
            if out.len() - start > raw_len {
                return Err(CodecError::Corrupt("block overruns declared length".into()));
            }
        }
        if out.len() - start != raw_len {
            return Err(CodecError::Corrupt(format!(
                "block length mismatch: header {raw_len}, payload {}",
                out.len() - start
            )));
        }
        let actual = crc32(&out[start..]);
        if actual != crc {
            return Err(CodecError::ChecksumMismatch {
                expected: crc,
                actual,
            });
        }
        Ok(())
    }
}

impl Codec for Lz {
    fn name(&self) -> &'static str {
        "lz"
    }

    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) -> usize {
        out.clear();
        out.reserve(data.len() / 3 + 64);
        LZ_SCRATCH.with(|scratch| {
            let scratch = &mut scratch.borrow_mut();
            for block in data.chunks(self.block_size) {
                self.compress_block(block, out, scratch);
            }
        });
        out.len()
    }

    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<usize, CodecError> {
        out.clear();
        let mut cursor = data;
        while !cursor.is_empty() {
            Self::decompress_block(&mut cursor, out)?;
        }
        Ok(out.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let codec = Lz::default();
        let packed = codec.compress(data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn no_matches_all_literals() {
        let data: Vec<u8> = (0..=255u8).collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_match() {
        // "aaaa..." forces dist=1 overlapping copies.
        roundtrip(&b"a".repeat(1000));
    }

    #[test]
    fn repetitive_compresses() {
        let data = b"hello world, hello world, hello world! ".repeat(100);
        let codec = Lz::default();
        let packed = codec.compress(&data);
        assert!(packed.len() * 5 < data.len());
        roundtrip(&data);
    }

    #[test]
    fn long_range_within_window() {
        let mut data = Vec::new();
        let phrase: Vec<u8> = (0..200u32).map(|i| (i * 37 % 251) as u8).collect();
        data.extend_from_slice(&phrase);
        data.extend(std::iter::repeat_n(7u8, 20_000));
        data.extend_from_slice(&phrase);
        roundtrip(&data);
    }

    #[test]
    fn multi_block() {
        let codec = Lz::with_block_size(1024);
        let data = b"block boundary test ".repeat(500);
        let packed = codec.compress(&data);
        assert_eq!(codec.decompress(&packed).unwrap(), data);
    }

    #[test]
    fn pseudorandom_roundtrip() {
        let mut x: u64 = 42;
        let data: Vec<u8> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 55) as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn thread_local_scratch_does_not_change_bytes() {
        // Same input compressed repeatedly on one thread (warm scratch)
        // and on a fresh thread (cold scratch) must produce identical
        // bytes — scratch reuse is invisible in the output.
        let codec = Lz::with_block_size(2048);
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 13) as u8).collect();
        let cold = std::thread::scope(|s| {
            let codec = codec.clone();
            let data = &data;
            s.spawn(move || codec.compress(data)).join().unwrap()
        });
        for _ in 0..3 {
            assert_eq!(codec.compress(&data), cold);
        }
    }

    #[test]
    fn corruption_detected() {
        let codec = Lz::default();
        let data = b"corrupt me please corrupt me".repeat(30);
        let mut packed = codec.compress(&data);
        let pos = packed.len() - 5;
        packed[pos] ^= 0x08;
        assert!(codec.decompress(&packed).is_err());
    }
}
