//! Move-to-front transform.
//!
//! After a BWT, equal bytes cluster; MTF turns those clusters into runs of
//! small values (mostly zeros), which the zero run-length stage
//! ([`crate::rle`]) then collapses.
//!
//! # Examples
//!
//! ```
//! use atc_codec::mtf::{mtf_decode, mtf_encode};
//!
//! let data = b"aaabbbaaa".to_vec();
//! let enc = mtf_encode(&data);
//! assert_eq!(mtf_decode(&enc), data);
//! ```

/// Applies the move-to-front transform.
///
/// The alphabet starts as the identity permutation of byte values; each input
/// byte is replaced by its current list index and moved to the front.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    mtf_encode_into(data, &mut out);
    out
}

/// [`mtf_encode`] appending into a reused, cleared output buffer.
pub fn mtf_encode_into(data: &[u8], out: &mut Vec<u8>) {
    let mut alphabet: [u8; 256] = std::array::from_fn(|i| i as u8);
    out.clear();
    out.reserve(data.len());
    for &b in data {
        let idx = alphabet
            .iter()
            .position(|&x| x == b)
            .expect("byte always present in alphabet") as u8;
        out.push(idx);
        // Rotate [0..=idx] right by one so `b` lands at the front.
        alphabet.copy_within(0..idx as usize, 1);
        alphabet[0] = b;
    }
}

/// Inverts [`mtf_encode`].
pub fn mtf_decode(indices: &[u8]) -> Vec<u8> {
    let mut alphabet: [u8; 256] = std::array::from_fn(|i| i as u8);
    let mut out = Vec::with_capacity(indices.len());
    for &idx in indices {
        let b = alphabet[idx as usize];
        out.push(b);
        alphabet.copy_within(0..idx as usize, 1);
        alphabet[0] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert!(mtf_encode(&[]).is_empty());
        assert!(mtf_decode(&[]).is_empty());
    }

    #[test]
    fn runs_become_zeros() {
        let enc = mtf_encode(b"aaaa");
        assert_eq!(&enc[1..], &[0, 0, 0]);
    }

    #[test]
    fn known_sequence() {
        // 'b'=98 is initially at index 98; after that it is at front.
        let enc = mtf_encode(b"bb");
        assert_eq!(enc, vec![98, 0]);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).chain((0..=255u8).rev()).collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn roundtrip_pseudorandom() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }
}
