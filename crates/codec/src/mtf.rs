//! Move-to-front transform.
//!
//! After a BWT, equal bytes cluster; MTF turns those clusters into runs of
//! small values (mostly zeros), which the zero run-length stage
//! ([`crate::rle`]) then collapses.
//!
//! The encoder's inner loop is SWAR: the alphabet search XORs the target
//! byte across eight list entries at a time and finds the zero byte with
//! the carry-propagation trick, so the common near-the-front hit costs a
//! couple of word ops instead of a byte-at-a-time scan, and a worst-case
//! miss walks 32 words instead of 256 bytes. A zero-index fast path skips
//! the rotate entirely for the post-BWT common case (runs of the
//! front symbol).
//!
//! # Examples
//!
//! ```
//! use atc_codec::mtf::{mtf_decode, mtf_encode};
//!
//! let data = b"aaabbbaaa".to_vec();
//! let enc = mtf_encode(&data);
//! assert_eq!(mtf_decode(&enc), data);
//! ```

/// Applies the move-to-front transform.
///
/// The alphabet starts as the identity permutation of byte values; each input
/// byte is replaced by its current list index and moved to the front.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    mtf_encode_into(data, &mut out);
    out
}

/// Position of the first byte equal to `b` in `alphabet`, eight entries
/// per step: XOR with a byte-broadcast of `b` zeroes the matching lane,
/// and `(w - 0x01..) & !w & 0x80..` sets bit 7 of exactly the lanes that
/// are zero *up to and including the first one* (the subtraction's borrow
/// can only run through zero lanes), so `trailing_zeros` of the mask
/// locates the first match exactly.
#[inline]
fn alphabet_position(alphabet: &[u8; 256], b: u8) -> u8 {
    let spread = u64::from_le_bytes([b; 8]);
    for (w, chunk) in alphabet.as_chunks::<8>().0.iter().enumerate() {
        let x = u64::from_le_bytes(*chunk) ^ spread;
        let zero = x.wrapping_sub(0x0101_0101_0101_0101) & !x & 0x8080_8080_8080_8080;
        if zero != 0 {
            return (w * 8) as u8 + (zero.trailing_zeros() / 8) as u8;
        }
    }
    unreachable!("byte always present in alphabet")
}

/// [`mtf_encode`] appending into a reused, cleared output buffer.
pub fn mtf_encode_into(data: &[u8], out: &mut Vec<u8>) {
    let mut alphabet: [u8; 256] = std::array::from_fn(|i| i as u8);
    out.clear();
    out.reserve(data.len());
    for &b in data {
        if alphabet[0] == b {
            // Run of the current front symbol — the dominant case after a
            // BWT — needs no search and no rotate.
            out.push(0);
            continue;
        }
        let idx = alphabet_position(&alphabet, b);
        out.push(idx);
        // Rotate [0..=idx] right by one so `b` lands at the front.
        alphabet.copy_within(0..idx as usize, 1);
        alphabet[0] = b;
    }
}

/// Inverts [`mtf_encode`].
pub fn mtf_decode(indices: &[u8]) -> Vec<u8> {
    let mut alphabet: [u8; 256] = std::array::from_fn(|i| i as u8);
    let mut out = Vec::with_capacity(indices.len());
    for &idx in indices {
        let b = alphabet[idx as usize];
        out.push(b);
        alphabet.copy_within(0..idx as usize, 1);
        alphabet[0] = b;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Byte-at-a-time reference encoder the SWAR loop must match.
    fn mtf_encode_scalar(data: &[u8]) -> Vec<u8> {
        let mut alphabet: [u8; 256] = std::array::from_fn(|i| i as u8);
        let mut out = Vec::with_capacity(data.len());
        for &b in data {
            let idx = alphabet
                .iter()
                .position(|&x| x == b)
                .expect("byte always present in alphabet") as u8;
            out.push(idx);
            alphabet.copy_within(0..idx as usize, 1);
            alphabet[0] = b;
        }
        out
    }

    #[test]
    fn empty() {
        assert!(mtf_encode(&[]).is_empty());
        assert!(mtf_decode(&[]).is_empty());
    }

    #[test]
    fn runs_become_zeros() {
        let enc = mtf_encode(b"aaaa");
        assert_eq!(&enc[1..], &[0, 0, 0]);
    }

    #[test]
    fn known_sequence() {
        // 'b'=98 is initially at index 98; after that it is at front.
        let enc = mtf_encode(b"bb");
        assert_eq!(enc, vec![98, 0]);
    }

    #[test]
    fn roundtrip_all_bytes() {
        let data: Vec<u8> = (0..=255u8).chain((0..=255u8).rev()).collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn roundtrip_pseudorandom() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
            .collect();
        assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn swar_search_finds_every_position() {
        // Every byte value at every alphabet position, incl. the word
        // boundaries the SWAR trick must not misreport.
        let alphabet: [u8; 256] = std::array::from_fn(|i| (i as u8).wrapping_mul(167));
        for (i, &b) in alphabet.iter().enumerate() {
            assert_eq!(alphabet_position(&alphabet, b) as usize, i);
        }
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 64 }))]
        /// Differential: the SWAR encoder is byte-identical to the scalar
        /// reference (incl. lengths 0/1/odd, repeated symbols).
        #[test]
        fn swar_encode_matches_scalar(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let enc = mtf_encode(&data);
            prop_assert_eq!(&enc, &mtf_encode_scalar(&data));
            prop_assert_eq!(mtf_decode(&enc), data);
        }

        /// Post-BWT-shaped input: long runs from a small symbol set hammer
        /// the zero-index fast path.
        #[test]
        fn runny_encode_matches_scalar(seed in proptest::collection::vec(any::<u8>(), 0..128)) {
            // Pairs of (symbol, run length) from the raw bytes: long runs
            // over a small symbol set, the post-BWT shape.
            let data: Vec<u8> = seed
                .chunks_exact(2)
                .flat_map(|p| std::iter::repeat_n(p[0] & 0x0F, 1 + (p[1] as usize & 0x3F)))
                .collect();
            prop_assert_eq!(mtf_encode(&data), mtf_encode_scalar(&data));
        }
    }
}
