//! Parallel streaming adapters: a worker-pool [`ParallelCodecWriter`] and a
//! free-running [`ReadaheadReader`], both producing/consuming exactly the
//! [`CodecWriter`](crate::CodecWriter) stream format.
//!
//! The serial [`CodecWriter`](crate::CodecWriter) compresses every segment
//! on the producer thread, so compression throughput caps trace-generation
//! throughput. [`ParallelCodecWriter`] instead hands full segments to a
//! bounded pool of worker threads and writes the `varint(len) ++ block`
//! frames back **in submission order**, so the on-disk format is
//! byte-identical to the serial writer at every thread count — existing
//! readers work unchanged. This is the shape proven by rr's
//! `CompressedWriter`: independent blocks, ordered reassembly, bounded
//! in-flight buffering for backpressure.
//!
//! Both adapters are streaming-first: segments are compressed with
//! [`Codec::compress_into`] / decompressed with [`Codec::decompress_into`]
//! into *owned scratch buffers that cycle through the pool* (producer →
//! worker → reassembly → back to the producer), so the steady state
//! performs no per-segment allocation on either side.
//!
//! [`ReadaheadReader`] mirrors the writer on the consume side with a
//! free-running reorder pool: a feeder thread frames packed segments off
//! the input and submits each one to a bounded worker pool the moment it
//! is read; workers pull the next frame as soon as they finish the last
//! (no batch barrier), and an ordered reassembly map on the consumer side
//! delivers decompressed segments strictly in stream order.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use atc_codec::{Bzip, Codec, CodecReader, ParallelCodecWriter};
//!
//! let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
//! let mut w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
//! w.write_all(b"stream me from four workers")?;
//! let file = w.finish()?;
//!
//! // The serial reader decodes the parallel writer's output.
//! let mut r = CodecReader::new(&file[..], codec);
//! let mut back = String::new();
//! r.read_to_string(&mut back)?;
//! assert_eq!(back, "stream me from four workers");
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::error::CodecError;
use crate::stream::DEFAULT_SEGMENT_SIZE;
use crate::varint;
use crate::Codec;

/// Upper bound on segments queued or in flight per worker.
///
/// Bounds memory to roughly `2 * threads * segment_size` raw bytes while
/// keeping every worker busy (one segment compressing, one queued).
const IN_FLIGHT_PER_WORKER: usize = 2;

/// Scratch-buffer accounting for a [`ParallelCodecWriter`] (see
/// [`ParallelCodecWriter::scratch_stats`]).
///
/// Steady state, `fresh` stays bounded by the in-flight window
/// (`threads * 2 + 1` per buffer kind) no matter how many segments the
/// stream carries — the assertion the scratch-reuse tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Segment buffers newly allocated because no recycled one was free.
    pub fresh: u64,
    /// Segment buffers reused from the cycling pool.
    pub recycled: u64,
}

/// A `Write` adapter that compresses segments on a bounded worker pool.
///
/// Produces the exact byte stream of the serial
/// [`CodecWriter`](crate::CodecWriter): segments framed as
/// `varint(compressed_len) ++ compressed bytes`, terminated by a
/// zero-length varint, emitted in submission order. `threads <= 1` runs
/// inline on the caller thread with no pool at all (today's serial path).
///
/// Raw-segment and compressed-segment buffers are owned `Vec<u8>`s that
/// cycle producer → worker → reassembly → producer, so the steady-state
/// write path allocates nothing per segment (see
/// [`ParallelCodecWriter::scratch_stats`]).
///
/// Call [`ParallelCodecWriter::finish`] to drain the pool, write the
/// end-of-stream marker, and recover the inner writer; dropping without
/// `finish` leaves the stream unterminated (readers will report
/// truncation), exactly like the serial writer.
#[derive(Debug)]
pub struct ParallelCodecWriter<W: Write> {
    inner: W,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    segment_size: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
    pool: Option<Pool>,
    /// Sequence number of the next segment to submit.
    next_seq: u64,
    /// Sequence number of the next segment to write to `inner`.
    next_write: u64,
    /// Compressed segments that arrived ahead of their turn.
    done: BTreeMap<u64, Vec<u8>>,
    /// Segments submitted but not yet written out.
    in_flight: usize,
    /// Recycled raw-segment buffers (returned by workers with results).
    raw_pool: Vec<Vec<u8>>,
    /// Recycled compressed-segment buffers (drained after frame writes).
    packed_pool: Vec<Vec<u8>>,
    stats: ScratchStats,
    /// First inner-writer error; once set, every later call fails with
    /// it. A failed frame write may have landed partially, so retrying
    /// would silently corrupt the stream — fail fast instead.
    poisoned: Option<(io::ErrorKind, String)>,
}

/// A bounded pool of named worker threads consuming jobs from one queue.
///
/// This is the worker-pool substrate shared by the compression adapters
/// here and the container layer's chunk pool (and available to future
/// sharding/async backends): N threads pull jobs from a shared bounded
/// queue, holding the queue lock only to pull — never while working.
/// Dropping (or [`WorkerPool::join`]ing) the pool closes the queue; each
/// worker finishes its queued jobs and exits.
pub struct WorkerPool<J> {
    jobs: Option<SyncSender<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `threads` workers (named `{name}-{i}`) running `handler` on
    /// every job; at most `queue_cap` jobs wait in the queue
    /// (backpressure: `submit` blocks past that).
    pub fn spawn<F>(threads: usize, queue_cap: usize, name: &str, handler: F) -> Self
    where
        F: Fn(J) + Clone + Send + 'static,
    {
        Self::spawn_with(threads, queue_cap, name, move || handler.clone())
    }

    /// Like [`WorkerPool::spawn`], but each worker builds its own stateful
    /// handler by calling `init` once on the worker thread.
    ///
    /// This is how per-worker scratch (reused across jobs, never shared or
    /// locked) is threaded into a pool: the closure returned by `init` owns
    /// the scratch and is called `FnMut`-style for every job the worker
    /// pulls.
    pub fn spawn_with<F, H>(threads: usize, queue_cap: usize, name: &str, init: F) -> Self
    where
        F: Fn() -> H + Clone + Send + 'static,
        H: FnMut(J),
    {
        let (jobs, job_rx) = mpsc::sync_channel::<J>(queue_cap.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                let init = init.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        let mut handler = init();
                        loop {
                            // Hold the lock only to pull the next job,
                            // never while working on it.
                            let job = job_rx.lock().expect("job queue poisoned").recv();
                            let Ok(job) = job else { break };
                            handler(job);
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            jobs: Some(jobs),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job, blocking if `queue_cap` jobs are already waiting.
    ///
    /// # Errors
    ///
    /// Fails only if every worker has died (panicked).
    pub fn submit(&self, job: J) -> Result<(), mpsc::SendError<J>> {
        self.jobs
            .as_ref()
            .expect("jobs sender lives until drop")
            .send(job)
    }

    /// Closes the queue without joining: workers finish the queued jobs
    /// and exit. Use when results must still be collected from a side
    /// channel before the pool is dropped.
    pub fn close(&mut self) {
        self.jobs.take();
    }

    /// Closes the queue and waits for the workers to drain it.
    ///
    /// # Errors
    ///
    /// Reports the panic payload of the first worker that panicked.
    pub fn join(mut self) -> std::thread::Result<()> {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            worker.join()?;
        }
        Ok(())
    }
}

impl<J> Drop for WorkerPool<J> {
    /// Closes the job queue and reaps the workers; queued jobs still run.
    fn drop(&mut self) {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One segment handed to a compression worker: the raw bytes plus the
/// scratch buffer the compressed output lands in. Both buffers come back
/// with the result and return to the writer's cycling pools.
struct CompressJob {
    seq: u64,
    raw: Vec<u8>,
    out: Vec<u8>,
}

#[derive(Debug)]
struct Pool {
    workers: WorkerPool<CompressJob>,
    /// `(seq, raw buffer back for recycling, compressed segment)`.
    results: Receiver<(u64, Vec<u8>, Vec<u8>)>,
}

impl Pool {
    fn spawn(codec: &Arc<dyn Codec>, threads: usize) -> Self {
        let (result_tx, results) = mpsc::channel();
        let codec = Arc::clone(codec);
        let workers = WorkerPool::spawn(
            threads,
            threads * IN_FLIGHT_PER_WORKER,
            "atc-codec-compress",
            move |mut job: CompressJob| {
                codec.compress_into(&job.raw, &mut job.out);
                // The writer may already be dropped; an unfinished stream
                // is unterminated either way, so a dead receiver is fine.
                let _ = result_tx.send((job.seq, job.raw, job.out));
            },
        );
        Self { workers, results }
    }
}

impl<W: Write> ParallelCodecWriter<W> {
    /// Creates a writer with the default segment size and `threads`
    /// compression workers (`0`/`1` = inline serial).
    pub fn new(inner: W, codec: Arc<dyn Codec>, threads: usize) -> Self {
        Self::with_segment_size(inner, codec, DEFAULT_SEGMENT_SIZE, threads)
    }

    /// Creates a writer compressing every `segment_size` raw bytes on a
    /// pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_segment_size(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
    ) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        let pool = (threads > 1).then(|| Pool::spawn(&codec, threads));
        Self {
            inner,
            codec,
            buf: Vec::with_capacity(segment_size.min(1 << 22)),
            segment_size,
            raw_bytes: 0,
            compressed_bytes: 0,
            pool,
            next_seq: 0,
            next_write: 0,
            done: BTreeMap::new(),
            in_flight: 0,
            raw_pool: Vec::new(),
            packed_pool: Vec::new(),
            stats: ScratchStats::default(),
            poisoned: None,
        }
    }

    /// Fails if a previous frame write errored (the stream may hold a
    /// partial frame, so no further writes can be trusted).
    fn check_poisoned(&self) -> io::Result<()> {
        match &self.poisoned {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }

    /// Raw bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed bytes emitted so far (excluding data still buffered or
    /// in flight on the pool).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Number of worker threads (0 = inline serial).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.workers.threads())
    }

    /// Segment-buffer allocation accounting: how many buffers were newly
    /// allocated vs reused from the cycling pool. After warm-up, `fresh`
    /// stops growing — every later segment rides recycled buffers.
    pub fn scratch_stats(&self) -> ScratchStats {
        self.stats
    }

    /// Pops a recycled buffer (or allocates one of `capacity`), keeping
    /// the fresh/recycled accounting.
    fn take_buffer(pool: &mut Vec<Vec<u8>>, stats: &mut ScratchStats, capacity: usize) -> Vec<u8> {
        match pool.pop() {
            Some(buf) => {
                stats.recycled += 1;
                buf
            }
            None => {
                stats.fresh += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    fn write_frame(&mut self, packed: &[u8]) -> io::Result<()> {
        // Header and payload as two writes (like the serial CodecWriter):
        // no copy of the compressed bytes on the one thread serializing
        // all output. Partial landings are handled by the poison latch.
        let mut header = [0u8; 10];
        let mut cursor = &mut header[..];
        varint::write_u64(&mut cursor, packed.len() as u64)?;
        let header_len = 10 - cursor.len();
        let result = self
            .inner
            .write_all(&header[..header_len])
            .and_then(|()| self.inner.write_all(packed));
        if let Err(e) = result {
            self.poisoned = Some((e.kind(), e.to_string()));
            return Err(e);
        }
        self.compressed_bytes += (header_len + packed.len()) as u64;
        Ok(())
    }

    /// Writes every completed segment that is next in line, recycling its
    /// buffer afterwards.
    fn drain_ready(&mut self) -> io::Result<()> {
        while let Some(packed) = self.done.remove(&self.next_write) {
            if let Err(e) = self.write_frame(&packed) {
                // Keep the accounting consistent (no deadlock waiting for
                // a result that was already consumed); the poison latch
                // set by write_frame stops any further writes.
                self.done.insert(self.next_write, packed);
                return Err(e);
            }
            self.next_write += 1;
            self.in_flight -= 1;
            self.recycle_packed(packed);
        }
        Ok(())
    }

    fn recycle_packed(&mut self, mut packed: Vec<u8>) {
        packed.clear();
        self.packed_pool.push(packed);
    }

    fn recycle_raw(&mut self, mut raw: Vec<u8>) {
        raw.clear();
        self.raw_pool.push(raw);
    }

    /// Files one worker result: the raw buffer re-enters the cycle, the
    /// compressed segment waits for its turn.
    fn file_result(&mut self, seq: u64, raw: Vec<u8>, packed: Vec<u8>) {
        self.recycle_raw(raw);
        self.done.insert(seq, packed);
    }

    /// Receives one completed segment from the pool, blocking.
    fn recv_one(&mut self) -> io::Result<()> {
        let pool = self.pool.as_ref().expect("recv_one requires a pool");
        match pool.results.recv() {
            Ok((seq, raw, packed)) => {
                self.file_result(seq, raw, packed);
                Ok(())
            }
            Err(_) => Err(io::Error::other("compression worker pool died")),
        }
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.pool.is_none() {
            // Inline serial path: identical bytes to CodecWriter, with the
            // packed scratch cycling through a one-deep pool.
            let mut out = Self::take_buffer(&mut self.packed_pool, &mut self.stats, 0);
            self.codec.compress_into(&self.buf, &mut out);
            self.buf.clear();
            let result = self.write_frame(&out);
            self.recycle_packed(out);
            return result;
        }

        // Backpressure: cap segments in flight so memory stays bounded
        // even when compression is slower than production. Drain before
        // blocking on the pool: after a transient write error the
        // next-in-line frame sits in `done` with no pool result left to
        // wait for, and recv_one would block forever.
        let max_in_flight = self.threads() * IN_FLIGHT_PER_WORKER;
        while self.in_flight >= max_in_flight {
            self.drain_ready()?;
            if self.in_flight < max_in_flight {
                break;
            }
            self.recv_one()?;
        }

        let raw_capacity = self.segment_size.min(1 << 22);
        let replacement = Self::take_buffer(&mut self.raw_pool, &mut self.stats, raw_capacity);
        let raw = std::mem::replace(&mut self.buf, replacement);
        let out = Self::take_buffer(&mut self.packed_pool, &mut self.stats, 0);
        let seq = self.next_seq;
        self.next_seq += 1;
        let pool = self.pool.as_ref().expect("pool checked above");
        pool.workers
            .submit(CompressJob { seq, raw, out })
            .map_err(|_| io::Error::other("compression worker pool died"))?;
        self.in_flight += 1;

        // Opportunistically collect finished segments without blocking.
        while let Ok((seq, raw, packed)) = self
            .pool
            .as_ref()
            .expect("pool checked above")
            .results
            .try_recv()
        {
            self.file_result(seq, raw, packed);
        }
        self.drain_ready()
    }

    /// Flushes the final segment, drains the pool, writes the
    /// end-of-stream marker, and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer and pool failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.check_poisoned()?;
        self.flush_segment()?;
        if let Some(pool) = &mut self.pool {
            // Closing the job queue lets workers exit as they go idle.
            pool.workers.close();
        }
        while self.in_flight > 0 {
            // Same ordering as the backpressure loop: retry anything
            // already buffered in `done` before blocking on the pool.
            self.drain_ready()?;
            if self.in_flight == 0 {
                break;
            }
            self.recv_one()?;
        }
        debug_assert!(self.done.is_empty());
        self.pool.take(); // joins the (now idle) workers
        let mut eos = [0u8; 10];
        let mut cursor = &mut eos[..];
        varint::write_u64(&mut cursor, 0)?;
        let eos_len = 10 - cursor.len();
        self.inner.write_all(&eos[..eos_len])?;
        self.compressed_bytes += eos_len as u64;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ParallelCodecWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.check_poisoned()?;
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.segment_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.segment_size {
                self.flush_segment()?;
            }
        }
        self.raw_bytes += data.len() as u64;
        Ok(data.len())
    }

    /// Flushes the inner writer only. Buffered raw bytes are *not* forced
    /// into a short segment, and in-flight segments keep compressing; both
    /// are emitted by [`ParallelCodecWriter::finish`].
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A shared free list of segment buffers.
///
/// Readahead buffers cycle consumer → pool → worker → consumer (and
/// packed buffers feeder → worker → pool → feeder). `cap` bounds how many
/// idle buffers are retained; beyond it, returned buffers are simply
/// dropped so a burst never pins memory forever.
#[derive(Debug)]
struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    cap: usize,
}

impl BufPool {
    fn new(cap: usize) -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn get(&self) -> Vec<u8> {
        self.bufs
            .lock()
            .expect("buffer pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock().expect("buffer pool poisoned");
        if bufs.len() < self.cap {
            bufs.push(buf);
        }
    }
}

/// A `Read` adapter that decompresses a codec stream on a free-running
/// background pool.
///
/// Consumes the exact stream format of
/// [`CodecWriter`](crate::CodecWriter) / [`ParallelCodecWriter`]. A feeder
/// thread frames packed segments off the input and submits each to a
/// bounded [`WorkerPool`] the moment it is read; every worker pulls the
/// next frame as soon as it finishes its last one — there is no
/// batch-of-`threads` barrier, so one slow segment never idles the other
/// workers. Results flow to the consumer through a bounded channel and an
/// ordered reassembly map keyed by sequence number, so `read` always sees
/// segments in exact stream order. Segment buffers cycle back to the
/// workers once consumed.
///
/// Also implements [`BufRead`]: [`BufRead::fill_buf`] hands out the
/// unconsumed tail of the current decoded segment straight from the
/// reassembly buffer, so frame-granular consumers (the container layer's
/// `next_frame`) can parse decoded bytes in place without the `Read::read`
/// copy into their own buffer.
#[derive(Debug)]
pub struct ReadaheadReader {
    rx: Option<Receiver<(u64, io::Result<Vec<u8>>)>>,
    feeder: Option<JoinHandle<()>>,
    /// Decompressed segments that arrived ahead of their turn.
    pending: BTreeMap<u64, io::Result<Vec<u8>>>,
    /// Sequence number of the next segment to hand to the consumer.
    next_seq: u64,
    current: Vec<u8>,
    pos: usize,
    /// First error seen, replayed on every subsequent read (matching the
    /// serial `CodecReader`, which keeps erroring rather than turning a
    /// poisoned stream into a clean EOF). A mid-stream CRC failure
    /// therefore fails *all* reads after the error point, forever.
    error: Option<(io::ErrorKind, String)>,
    /// Consumed segment buffers, recycled back to the decompress workers.
    out_pool: Arc<BufPool>,
}

impl ReadaheadReader {
    /// Spawns the readahead pipeline over a terminated codec stream.
    ///
    /// `threads` is the decompression parallelism (`0`/`1` = one segment
    /// at a time on the feeder thread, still overlapped with the
    /// consumer).
    pub fn new<R: Read + Send + 'static>(inner: R, codec: Arc<dyn Codec>, threads: usize) -> Self {
        let threads = threads.max(1);
        let window = threads * IN_FLIGHT_PER_WORKER;
        let (tx, rx) = mpsc::sync_channel(window);
        let out_pool = Arc::new(BufPool::new(window + 2));
        // Flipped by a worker when the consumer is gone; the feeder polls
        // it and stops reading ahead.
        let dead = Arc::new(AtomicBool::new(false));
        let feeder = {
            let out_pool = Arc::clone(&out_pool);
            std::thread::Builder::new()
                .name("atc-codec-readahead".into())
                .spawn(move || feed(inner, codec, threads, tx, out_pool, dead))
                .expect("spawn readahead thread")
        };
        Self {
            rx: Some(rx),
            feeder: Some(feeder),
            pending: BTreeMap::new(),
            next_seq: 0,
            current: Vec::new(),
            pos: 0,
            error: None,
            out_pool,
        }
    }

    fn latch(&mut self, e: &io::Error) {
        self.error = Some((e.kind(), e.to_string()));
        self.shutdown();
    }

    fn refill(&mut self) -> io::Result<bool> {
        if let Some((kind, msg)) = &self.error {
            return Err(io::Error::new(*kind, msg.clone()));
        }
        loop {
            // Deliver strictly in order: only the segment numbered
            // `next_seq` may leave the reassembly map.
            if let Some(result) = self.pending.remove(&self.next_seq) {
                self.next_seq += 1;
                match result {
                    Ok(segment) => {
                        debug_assert!(!segment.is_empty());
                        let consumed = std::mem::replace(&mut self.current, segment);
                        self.out_pool.put(consumed);
                        self.pos = 0;
                        return Ok(true);
                    }
                    Err(e) => {
                        self.latch(&e);
                        return Err(e);
                    }
                }
            }
            let Some(rx) = &self.rx else {
                return Ok(false);
            };
            match rx.recv() {
                Ok((seq, result)) => {
                    self.pending.insert(seq, result);
                }
                Err(_) => {
                    // All senders gone: every produced result has been
                    // drained into `pending`. An empty map means the
                    // feeder finished cleanly after the end-of-stream
                    // marker; a gap means a worker died mid-segment.
                    if self.pending.is_empty() {
                        self.shutdown();
                        return Ok(false);
                    }
                    let e = io::Error::other("readahead worker died mid-stream");
                    self.latch(&e);
                    return Err(e);
                }
            }
        }
    }

    fn shutdown(&mut self) {
        self.rx.take();
        if let Some(feeder) = self.feeder.take() {
            let _ = feeder.join();
        }
        self.pending.clear();
    }
}

/// Decompresses one packed segment into a pooled buffer.
fn decode_segment(codec: &dyn Codec, packed: &[u8], out_pool: &BufPool) -> io::Result<Vec<u8>> {
    let mut out = out_pool.get();
    match codec.decompress_into(packed, &mut out) {
        Ok(_) if out.is_empty() => {
            // A zero-raw-byte segment is never written; treat as corrupt
            // (mirrors the serial CodecReader).
            out_pool.put(out);
            Err(io::Error::from(CodecError::Corrupt("empty segment".into())))
        }
        Ok(_) => Ok(out),
        Err(e) => {
            out_pool.put(out);
            Err(io::Error::from(e))
        }
    }
}

/// Feeder-thread body: frame segments off the input and keep the worker
/// pool saturated; ordering is restored on the consumer side.
fn feed<R: Read>(
    mut inner: R,
    codec: Arc<dyn Codec>,
    threads: usize,
    tx: SyncSender<(u64, io::Result<Vec<u8>>)>,
    out_pool: Arc<BufPool>,
    dead: Arc<AtomicBool>,
) {
    let packed_pool = Arc::new(BufPool::new(threads * IN_FLIGHT_PER_WORKER + 2));
    let mut seq = 0u64;

    if threads <= 1 {
        // Single-threaded readahead: decode inline on this thread (still
        // fully overlapped with the consumer through the channel).
        loop {
            let seg_len = match varint::read_u64(&mut inner) {
                Ok(n) => n as usize,
                Err(e) => {
                    let _ = tx.send((seq, Err(e)));
                    return;
                }
            };
            if seg_len == 0 {
                return;
            }
            let mut packed = packed_pool.get();
            packed.resize(seg_len, 0);
            if let Err(e) = inner.read_exact(&mut packed) {
                let _ = tx.send((seq, Err(e)));
                return;
            }
            let result = decode_segment(&*codec, &packed, &out_pool);
            packed_pool.put(packed);
            let failed = result.is_err();
            if tx.send((seq, result)).is_err() || failed {
                return; // consumer dropped, or stream is poisoned
            }
            seq += 1;
        }
    }

    // Free-running pool: every frame is submitted the moment it is read;
    // workers pull the next job as soon as they finish the last. The job
    // queue and the result channel are both bounded, so readahead depth
    // (and therefore memory) stays capped without any per-batch barrier.
    let pool = {
        let codec = Arc::clone(&codec);
        let tx = tx.clone();
        let out_pool = Arc::clone(&out_pool);
        let packed_pool = Arc::clone(&packed_pool);
        let dead = Arc::clone(&dead);
        WorkerPool::spawn(
            threads,
            threads * IN_FLIGHT_PER_WORKER,
            "atc-codec-readahead",
            move |(seq, packed): (u64, Vec<u8>)| {
                let result = decode_segment(&*codec, &packed, &out_pool);
                packed_pool.put(packed);
                if tx.send((seq, result)).is_err() {
                    // Consumer is gone; tell the feeder to stop reading.
                    dead.store(true, Ordering::Relaxed);
                }
            },
        )
    };

    loop {
        if dead.load(Ordering::Relaxed) {
            break;
        }
        let seg_len = match varint::read_u64(&mut inner) {
            Ok(n) => n as usize,
            Err(e) => {
                // Tagged with the next unused sequence number, the error
                // sorts after every submitted segment: the consumer sees
                // all good data, then the failure — exactly the serial
                // reader's ordering.
                let _ = tx.send((seq, Err(e)));
                break;
            }
        };
        if seg_len == 0 {
            break;
        }
        let mut packed = packed_pool.get();
        packed.resize(seg_len, 0);
        if let Err(e) = inner.read_exact(&mut packed) {
            let _ = tx.send((seq, Err(e)));
            break;
        }
        if pool.submit((seq, packed)).is_err() {
            break; // every worker died
        }
        seq += 1;
    }
    // Dropping the pool closes the job queue and joins the workers after
    // they drain what is already queued; their results (and channel
    // senders) are delivered/dropped before the consumer can observe a
    // disconnect, so no segment is ever silently lost.
    drop(pool);
}

impl Read for ReadaheadReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = (self.current.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for ReadaheadReader {
    /// Returns the unconsumed tail of the current decoded segment,
    /// refilling from the reorder pool if it is exhausted. An empty slice
    /// means clean end of stream. Errors latch exactly like `read`.
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(&[]);
            }
        }
        Ok(&self.current[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.current.len());
    }
}

impl Drop for ReadaheadReader {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bzip, CodecReader, CodecWriter, Lz, Store};

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    /// Thread counts exercised by the identity tests; override with
    /// `ATC_TEST_THREADS` (single value or comma list) to pin the counts
    /// on a CI matrix runner.
    fn test_threads() -> Vec<usize> {
        match std::env::var("ATC_TEST_THREADS") {
            Ok(s) => {
                let parsed: Vec<usize> = s
                    .split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| (1..=64).contains(&t))
                    .collect();
                if parsed.is_empty() {
                    vec![1, 2, 4, 8]
                } else {
                    parsed
                }
            }
            Err(_) => vec![1, 2, 4, 8],
        }
    }

    #[test]
    fn output_byte_identical_to_serial() {
        let data = sample(300_000);
        let mut threads_axis = vec![0usize];
        threads_axis.extend(test_threads());
        for threads in threads_axis {
            let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(4096));
            let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 10_000);
            serial.write_all(&data).unwrap();
            let expect = serial.finish().unwrap();

            let mut parallel = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                10_000,
                threads,
            );
            parallel.write_all(&data).unwrap();
            let got = parallel.finish().unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn roundtrip_through_serial_reader() {
        let data = sample(120_000);
        for codec in [
            Arc::new(Store) as Arc<dyn Codec>,
            Arc::new(Lz::default()),
            Arc::new(Bzip::with_block_size(2048)),
        ] {
            let mut w =
                ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 7000, 4);
            w.write_all(&data).unwrap();
            let file = w.finish().unwrap();
            let mut r = CodecReader::new(&file[..], codec);
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn readahead_reads_serial_stream() {
        let data = sample(200_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 9000);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in test_threads() {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "threads={threads}");
        }
    }

    #[test]
    fn readahead_many_small_segments_stay_ordered() {
        // Far more segments than any in-flight window: exercises the
        // reorder map under sustained free-running load.
        let data = sample(64_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 64);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in [2usize, 4, 8] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "threads={threads}");
        }
    }

    #[test]
    fn empty_stream() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
        let file = w.finish().unwrap();
        let mut r = ReadaheadReader::new(std::io::Cursor::new(file), codec, 4);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn readahead_reports_truncation() {
        let mut file = Vec::new();
        varint::write_u64(&mut file, 4).unwrap();
        file.extend_from_slice(b"da"); // segment promises 4, delivers 2
        let mut r = ReadaheadReader::new(
            std::io::Cursor::new(file),
            Arc::new(Store) as Arc<dyn Codec>,
            2,
        );
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
        // The error persists: further reads must not look like clean EOF.
        let mut byte = [0u8; 1];
        assert!(r.read(&mut byte).is_err());
        assert!(r.read(&mut byte).is_err());
    }

    /// Regression test: a CRC failure in a *middle* segment must deliver
    /// the earlier segments intact, then fail — and keep failing on every
    /// subsequent `read` call, at every thread count, instead of decaying
    /// into a clean EOF once the erroring batch has drained.
    #[test]
    fn mid_stream_crc_error_latches_forever() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let segment = 5000usize;
        let data = sample(segment * 6);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();

        // Walk the varint framing to find the 4th segment's payload and
        // flip a bit deep inside it (past the block header), so framing
        // still parses but the CRC check fails.
        let mut corrupted = file.clone();
        let mut cursor = &file[..];
        let mut offset = 0usize;
        for _ in 0..3 {
            let before = cursor.len();
            let len = varint::read_u64(&mut cursor).unwrap() as usize;
            offset += before - cursor.len() + len;
            cursor = &cursor[len..];
        }
        let before = cursor.len();
        let len = varint::read_u64(&mut cursor).unwrap() as usize;
        offset += before - cursor.len();
        corrupted[offset + len - 8] ^= 0x40;

        for threads in [1usize, 2, 4, 8] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(corrupted.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            let err = r.read_to_end(&mut back).unwrap_err();
            // Everything before the corrupt segment is delivered, in
            // order, before the error surfaces.
            assert_eq!(back.len(), segment * 3, "threads={threads}");
            assert_eq!(back, data[..segment * 3], "threads={threads}");
            let kind = err.kind();
            // The latch replays the same error on every later call.
            let mut byte = [0u8; 1];
            for _ in 0..3 {
                let again = r.read(&mut byte).unwrap_err();
                assert_eq!(again.kind(), kind, "threads={threads}");
            }
        }
    }

    #[test]
    fn bufread_matches_read_and_latches_errors() {
        // fill_buf/consume must walk the same bytes as read(), and a
        // truncated stream must keep erroring through the BufRead face.
        let data = sample(50_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 3000);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in [1usize, 4] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            loop {
                let buf = r.fill_buf().unwrap();
                if buf.is_empty() {
                    break;
                }
                let n = buf.len().min(777);
                back.extend_from_slice(&buf[..n]);
                r.consume(n);
            }
            assert_eq!(back, data, "threads={threads}");
            assert!(r.fill_buf().unwrap().is_empty());
        }

        let mut truncated = Vec::new();
        varint::write_u64(&mut truncated, 4).unwrap();
        truncated.extend_from_slice(b"da");
        let mut r = ReadaheadReader::new(
            std::io::Cursor::new(truncated),
            Arc::new(Store) as Arc<dyn Codec>,
            2,
        );
        assert!(r.fill_buf().is_err());
        assert!(r.fill_buf().is_err(), "error must latch for BufRead too");
    }

    #[test]
    fn worker_pool_runs_all_jobs_and_joins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let pool = WorkerPool::spawn(3, 2, "test-pool", move |n: usize| {
            h.fetch_add(n, Ordering::SeqCst);
        });
        assert_eq!(pool.threads(), 3);
        for n in 0..100usize {
            pool.submit(n).unwrap();
        }
        pool.join().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn worker_pool_spawn_with_keeps_per_worker_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::mpsc::channel;
        // Each worker accumulates into private state created by `init`;
        // totals must add up with zero sharing between workers.
        let inits = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel::<usize>();
        let tx = Arc::new(Mutex::new(tx));
        let pool = {
            let inits = Arc::clone(&inits);
            WorkerPool::spawn_with(4, 2, "stateful-pool", move || {
                inits.fetch_add(1, Ordering::SeqCst);
                let tx = tx.lock().unwrap().clone();
                let mut local_sum = 0usize;
                move |n: usize| {
                    local_sum += n;
                    tx.send(n).unwrap();
                    let _ = local_sum; // state persists across jobs
                }
            })
        };
        for n in 0..50usize {
            pool.submit(n).unwrap();
        }
        pool.join().unwrap();
        assert_eq!(inits.load(Ordering::SeqCst), 4, "init once per worker");
        assert_eq!(rx.try_iter().sum::<usize>(), (0..50).sum::<usize>());
    }

    #[test]
    fn drop_without_finish_reaps_workers() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), codec, 4096, 4);
        w.write_all(&sample(100_000)).unwrap();
        drop(w); // must not hang or leak threads
    }

    #[test]
    fn drop_readahead_mid_stream_reaps_threads() {
        // Consumer walks away after one segment; feeder + workers must
        // exit promptly instead of decoding the rest of the stream.
        let data = sample(400_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 4096);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        let mut r = ReadaheadReader::new(std::io::Cursor::new(file), codec, 4);
        let mut first = vec![0u8; 1000];
        r.read_exact(&mut first).unwrap();
        assert_eq!(first, data[..1000]);
        drop(r); // must not hang
    }

    #[test]
    fn byte_counters_match_serial() {
        let data = sample(50_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192);
        serial.write_all(&data).unwrap();

        let mut parallel =
            ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192, 3);
        parallel.write_all(&data).unwrap();
        assert_eq!(parallel.raw_bytes(), 50_000);
        let serial_len = serial.finish().unwrap().len();
        let parallel_out = parallel.finish().unwrap();
        assert_eq!(parallel_out.len(), serial_len);
    }

    #[test]
    fn steady_state_allocates_no_fresh_buffers() {
        // 100 segments on 3 workers: fresh buffers stop at the in-flight
        // window; the rest of the stream rides recycled buffers.
        let data = sample(100 * 1024);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024, 3);
        w.write_all(&data).unwrap();
        let stats = w.scratch_stats();
        let window = 3 * IN_FLIGHT_PER_WORKER;
        // Two buffer kinds (raw + packed) per in-flight slot, plus the
        // writer's own accumulator slack.
        let fresh_cap = (2 * (window + 1)) as u64;
        assert!(
            stats.fresh <= fresh_cap,
            "fresh {} exceeds warm-up bound {fresh_cap}",
            stats.fresh
        );
        assert!(
            stats.recycled >= 2 * 100 - fresh_cap,
            "recycled only {} of ~200 buffer uses",
            stats.recycled
        );
        w.finish().unwrap();

        // Inline serial path: one fresh packed buffer total.
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024, 1);
        w.write_all(&data).unwrap();
        let stats = w.scratch_stats();
        assert_eq!(stats.fresh, 1, "serial path allocates one packed scratch");
        assert_eq!(stats.recycled, 99);
        w.finish().unwrap();
    }
}
