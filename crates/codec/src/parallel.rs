//! Parallel streaming adapters: a worker-pool [`ParallelCodecWriter`] and a
//! readahead [`ReadaheadReader`], both producing/consuming exactly the
//! [`CodecWriter`](crate::CodecWriter) stream format.
//!
//! The serial [`CodecWriter`](crate::CodecWriter) compresses every segment
//! on the producer thread, so compression throughput caps trace-generation
//! throughput. [`ParallelCodecWriter`] instead hands full segments to a
//! bounded pool of worker threads and writes the `varint(len) ++ block`
//! frames back **in submission order**, so the on-disk format is
//! byte-identical to the serial writer at every thread count — existing
//! readers work unchanged. This is the shape proven by rr's
//! `CompressedWriter`: independent blocks, ordered reassembly, bounded
//! in-flight buffering for backpressure.
//!
//! [`ReadaheadReader`] mirrors it on the consume side: a background thread
//! reads framed segments and decompresses batches of them in parallel,
//! handing decompressed segments to the consumer through a bounded
//! channel, in order.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use atc_codec::{Bzip, Codec, CodecReader, ParallelCodecWriter};
//!
//! let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
//! let mut w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
//! w.write_all(b"stream me from four workers")?;
//! let file = w.finish()?;
//!
//! // The serial reader decodes the parallel writer's output.
//! let mut r = CodecReader::new(&file[..], codec);
//! let mut back = String::new();
//! r.read_to_string(&mut back)?;
//! assert_eq!(back, "stream me from four workers");
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::error::CodecError;
use crate::stream::DEFAULT_SEGMENT_SIZE;
use crate::varint;
use crate::Codec;

/// Upper bound on segments queued or in flight per worker.
///
/// Bounds memory to roughly `2 * threads * segment_size` raw bytes while
/// keeping every worker busy (one segment compressing, one queued).
const IN_FLIGHT_PER_WORKER: usize = 2;

/// A `Write` adapter that compresses segments on a bounded worker pool.
///
/// Produces the exact byte stream of the serial
/// [`CodecWriter`](crate::CodecWriter): segments framed as
/// `varint(compressed_len) ++ compressed bytes`, terminated by a
/// zero-length varint, emitted in submission order. `threads <= 1` runs
/// inline on the caller thread with no pool at all (today's serial path).
///
/// Call [`ParallelCodecWriter::finish`] to drain the pool, write the
/// end-of-stream marker, and recover the inner writer; dropping without
/// `finish` leaves the stream unterminated (readers will report
/// truncation), exactly like the serial writer.
#[derive(Debug)]
pub struct ParallelCodecWriter<W: Write> {
    inner: W,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    segment_size: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
    pool: Option<Pool>,
    /// Sequence number of the next segment to submit.
    next_seq: u64,
    /// Sequence number of the next segment to write to `inner`.
    next_write: u64,
    /// Compressed segments that arrived ahead of their turn.
    done: BTreeMap<u64, Vec<u8>>,
    /// Segments submitted but not yet written out.
    in_flight: usize,
    /// First inner-writer error; once set, every later call fails with
    /// it. A failed frame write may have landed partially, so retrying
    /// would silently corrupt the stream — fail fast instead.
    poisoned: Option<(io::ErrorKind, String)>,
}

/// A bounded pool of named worker threads consuming jobs from one queue.
///
/// This is the worker-pool substrate shared by the compression adapters
/// here and the container layer's chunk pool (and available to future
/// sharding/async backends): N threads pull jobs from a shared bounded
/// queue, holding the queue lock only to pull — never while working.
/// Dropping (or [`WorkerPool::join`]ing) the pool closes the queue; each
/// worker finishes its queued jobs and exits.
pub struct WorkerPool<J> {
    jobs: Option<SyncSender<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J> std::fmt::Debug for WorkerPool<J> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `threads` workers (named `{name}-{i}`) running `handler` on
    /// every job; at most `queue_cap` jobs wait in the queue
    /// (backpressure: `submit` blocks past that).
    pub fn spawn<F>(threads: usize, queue_cap: usize, name: &str, handler: F) -> Self
    where
        F: Fn(J) + Clone + Send + 'static,
    {
        let (jobs, job_rx) = mpsc::sync_channel::<J>(queue_cap.max(1));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let workers = (0..threads.max(1))
            .map(|i| {
                let job_rx = Arc::clone(&job_rx);
                let handler = handler.clone();
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only to pull the next job, never
                        // while working on it.
                        let job = job_rx.lock().expect("job queue poisoned").recv();
                        let Ok(job) = job else { break };
                        handler(job);
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            jobs: Some(jobs),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job, blocking if `queue_cap` jobs are already waiting.
    ///
    /// # Errors
    ///
    /// Fails only if every worker has died (panicked).
    pub fn submit(&self, job: J) -> Result<(), mpsc::SendError<J>> {
        self.jobs
            .as_ref()
            .expect("jobs sender lives until drop")
            .send(job)
    }

    /// Closes the queue without joining: workers finish the queued jobs
    /// and exit. Use when results must still be collected from a side
    /// channel before the pool is dropped.
    pub fn close(&mut self) {
        self.jobs.take();
    }

    /// Closes the queue and waits for the workers to drain it.
    ///
    /// # Errors
    ///
    /// Reports the panic payload of the first worker that panicked.
    pub fn join(mut self) -> std::thread::Result<()> {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            worker.join()?;
        }
        Ok(())
    }
}

impl<J> Drop for WorkerPool<J> {
    /// Closes the job queue and reaps the workers; queued jobs still run.
    fn drop(&mut self) {
        self.jobs.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[derive(Debug)]
struct Pool {
    workers: WorkerPool<(u64, Vec<u8>)>,
    results: Receiver<(u64, Vec<u8>)>,
}

impl Pool {
    fn spawn(codec: &Arc<dyn Codec>, threads: usize) -> Self {
        let (result_tx, results) = mpsc::channel();
        let codec = Arc::clone(codec);
        let workers = WorkerPool::spawn(
            threads,
            threads * IN_FLIGHT_PER_WORKER,
            "atc-codec-compress",
            move |(seq, data): (u64, Vec<u8>)| {
                let packed = codec.compress(&data);
                // The writer may already be dropped; an unfinished stream
                // is unterminated either way, so a dead receiver is fine.
                let _ = result_tx.send((seq, packed));
            },
        );
        Self { workers, results }
    }
}

impl<W: Write> ParallelCodecWriter<W> {
    /// Creates a writer with the default segment size and `threads`
    /// compression workers (`0`/`1` = inline serial).
    pub fn new(inner: W, codec: Arc<dyn Codec>, threads: usize) -> Self {
        Self::with_segment_size(inner, codec, DEFAULT_SEGMENT_SIZE, threads)
    }

    /// Creates a writer compressing every `segment_size` raw bytes on a
    /// pool of `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_segment_size(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
    ) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        let pool = (threads > 1).then(|| Pool::spawn(&codec, threads));
        Self {
            inner,
            codec,
            buf: Vec::with_capacity(segment_size.min(1 << 22)),
            segment_size,
            raw_bytes: 0,
            compressed_bytes: 0,
            pool,
            next_seq: 0,
            next_write: 0,
            done: BTreeMap::new(),
            in_flight: 0,
            poisoned: None,
        }
    }

    /// Fails if a previous frame write errored (the stream may hold a
    /// partial frame, so no further writes can be trusted).
    fn check_poisoned(&self) -> io::Result<()> {
        match &self.poisoned {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }

    /// Raw bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed bytes emitted so far (excluding data still buffered or
    /// in flight on the pool).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Number of worker threads (0 = inline serial).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.workers.threads())
    }

    fn write_frame(&mut self, packed: &[u8]) -> io::Result<()> {
        // Header and payload as two writes (like the serial CodecWriter):
        // no copy of the compressed bytes on the one thread serializing
        // all output. Partial landings are handled by the poison latch.
        let mut header = [0u8; 10];
        let mut cursor = &mut header[..];
        varint::write_u64(&mut cursor, packed.len() as u64)?;
        let header_len = 10 - cursor.len();
        let result = self
            .inner
            .write_all(&header[..header_len])
            .and_then(|()| self.inner.write_all(packed));
        if let Err(e) = result {
            self.poisoned = Some((e.kind(), e.to_string()));
            return Err(e);
        }
        self.compressed_bytes += (header_len + packed.len()) as u64;
        Ok(())
    }

    /// Writes every completed segment that is next in line.
    fn drain_ready(&mut self) -> io::Result<()> {
        while let Some(packed) = self.done.remove(&self.next_write) {
            if let Err(e) = self.write_frame(&packed) {
                // Keep the accounting consistent (no deadlock waiting for
                // a result that was already consumed); the poison latch
                // set by write_frame stops any further writes.
                self.done.insert(self.next_write, packed);
                return Err(e);
            }
            self.next_write += 1;
            self.in_flight -= 1;
        }
        Ok(())
    }

    /// Receives one completed segment from the pool, blocking.
    fn recv_one(&mut self) -> io::Result<()> {
        let pool = self.pool.as_ref().expect("recv_one requires a pool");
        match pool.results.recv() {
            Ok((seq, packed)) => {
                self.done.insert(seq, packed);
                Ok(())
            }
            Err(_) => Err(io::Error::other("compression worker pool died")),
        }
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.pool.is_none() {
            // Inline serial path: identical to CodecWriter.
            let packed = self.codec.compress(&self.buf);
            self.buf.clear();
            return self.write_frame(&packed);
        }

        // Backpressure: cap segments in flight so memory stays bounded
        // even when compression is slower than production. Drain before
        // blocking on the pool: after a transient write error the
        // next-in-line frame sits in `done` with no pool result left to
        // wait for, and recv_one would block forever.
        let max_in_flight = self.threads() * IN_FLIGHT_PER_WORKER;
        while self.in_flight >= max_in_flight {
            self.drain_ready()?;
            if self.in_flight < max_in_flight {
                break;
            }
            self.recv_one()?;
        }

        let segment = std::mem::replace(
            &mut self.buf,
            Vec::with_capacity(self.segment_size.min(1 << 22)),
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let pool = self.pool.as_ref().expect("pool checked above");
        pool.workers
            .submit((seq, segment))
            .map_err(|_| io::Error::other("compression worker pool died"))?;
        self.in_flight += 1;

        // Opportunistically collect finished segments without blocking.
        while let Ok((seq, packed)) = self
            .pool
            .as_ref()
            .expect("pool checked above")
            .results
            .try_recv()
        {
            self.done.insert(seq, packed);
        }
        self.drain_ready()
    }

    /// Flushes the final segment, drains the pool, writes the
    /// end-of-stream marker, and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer and pool failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.check_poisoned()?;
        self.flush_segment()?;
        if let Some(pool) = &mut self.pool {
            // Closing the job queue lets workers exit as they go idle.
            pool.workers.close();
        }
        while self.in_flight > 0 {
            // Same ordering as the backpressure loop: retry anything
            // already buffered in `done` before blocking on the pool.
            self.drain_ready()?;
            if self.in_flight == 0 {
                break;
            }
            self.recv_one()?;
        }
        debug_assert!(self.done.is_empty());
        self.pool.take(); // joins the (now idle) workers
        let mut eos = Vec::with_capacity(1);
        varint::write_u64(&mut eos, 0)?;
        self.inner.write_all(&eos)?;
        self.compressed_bytes += eos.len() as u64;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for ParallelCodecWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.check_poisoned()?;
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.segment_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.segment_size {
                self.flush_segment()?;
            }
        }
        self.raw_bytes += data.len() as u64;
        Ok(data.len())
    }

    /// Flushes the inner writer only. Buffered raw bytes are *not* forced
    /// into a short segment, and in-flight segments keep compressing; both
    /// are emitted by [`ParallelCodecWriter::finish`].
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that decompresses a codec stream on a background
/// thread, `threads` segments at a time.
///
/// Consumes the exact stream format of
/// [`CodecWriter`](crate::CodecWriter) / [`ParallelCodecWriter`]. A feeder
/// thread reads framed segments, decompresses batches of up to `threads`
/// segments in parallel (scoped threads), and hands the decompressed
/// segments to the consumer through a bounded channel — so `decode`-style
/// consumers overlap file I/O + decompression with their own work.
#[derive(Debug)]
pub struct ReadaheadReader {
    rx: Option<Receiver<io::Result<Vec<u8>>>>,
    feeder: Option<JoinHandle<()>>,
    current: Vec<u8>,
    pos: usize,
    /// First error seen, replayed on every subsequent read (matching the
    /// serial `CodecReader`, which keeps erroring rather than turning a
    /// poisoned stream into a clean EOF).
    error: Option<(io::ErrorKind, String)>,
}

impl ReadaheadReader {
    /// Spawns the readahead pipeline over a terminated codec stream.
    ///
    /// `threads` is the per-batch decompression parallelism (`0`/`1` =
    /// one segment at a time, still overlapped with the consumer).
    pub fn new<R: Read + Send + 'static>(inner: R, codec: Arc<dyn Codec>, threads: usize) -> Self {
        let threads = threads.max(1);
        let (tx, rx) = mpsc::sync_channel(threads * IN_FLIGHT_PER_WORKER);
        let feeder = std::thread::Builder::new()
            .name("atc-codec-readahead".into())
            .spawn(move || feed(inner, codec, threads, tx))
            .expect("spawn readahead thread");
        Self {
            rx: Some(rx),
            feeder: Some(feeder),
            current: Vec::new(),
            pos: 0,
            error: None,
        }
    }

    fn refill(&mut self) -> io::Result<bool> {
        if let Some((kind, msg)) = &self.error {
            return Err(io::Error::new(*kind, msg.clone()));
        }
        let Some(rx) = &self.rx else {
            return Ok(false);
        };
        match rx.recv() {
            Ok(Ok(segment)) => {
                debug_assert!(!segment.is_empty());
                self.current = segment;
                self.pos = 0;
                Ok(true)
            }
            Ok(Err(e)) => {
                self.error = Some((e.kind(), e.to_string()));
                self.shutdown();
                Err(e)
            }
            Err(_) => {
                // Feeder finished cleanly after the end-of-stream marker.
                self.shutdown();
                Ok(false)
            }
        }
    }

    fn shutdown(&mut self) {
        self.rx.take();
        if let Some(feeder) = self.feeder.take() {
            let _ = feeder.join();
        }
    }
}

/// Feeder-thread body: frame, batch, decompress in parallel, emit in order.
fn feed<R: Read>(
    mut inner: R,
    codec: Arc<dyn Codec>,
    threads: usize,
    tx: SyncSender<io::Result<Vec<u8>>>,
) {
    loop {
        // Read up to `threads` packed segments sequentially.
        let mut batch: Vec<Vec<u8>> = Vec::with_capacity(threads);
        let mut end = false;
        while batch.len() < threads {
            let seg_len = match varint::read_u64(&mut inner) {
                Ok(n) => n as usize,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            };
            if seg_len == 0 {
                end = true;
                break;
            }
            let mut packed = vec![0u8; seg_len];
            if let Err(e) = inner.read_exact(&mut packed) {
                let _ = tx.send(Err(e));
                return;
            }
            batch.push(packed);
        }

        // Decompress the batch in parallel, preserving order.
        let results: Vec<Result<Vec<u8>, CodecError>> = if batch.len() <= 1 {
            batch.iter().map(|p| codec.decompress(p)).collect()
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|packed| {
                        let codec = &codec;
                        s.spawn(move || codec.decompress(packed))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("decompression worker panicked"))
                    .collect()
            })
        };

        for result in results {
            let send = match result {
                Ok(segment) if segment.is_empty() => {
                    // A zero-raw-byte segment is never written; treat as
                    // corrupt (mirrors the serial CodecReader).
                    Err(io::Error::from(CodecError::Corrupt("empty segment".into())))
                }
                Ok(segment) => Ok(segment),
                Err(e) => Err(io::Error::from(e)),
            };
            let failed = send.is_err();
            if tx.send(send).is_err() || failed {
                return; // consumer dropped, or stream is poisoned
            }
        }
        if end {
            return;
        }
    }
}

impl Read for ReadaheadReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = (self.current.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Drop for ReadaheadReader {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bzip, CodecReader, CodecWriter, Lz, Store};

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn output_byte_identical_to_serial() {
        let data = sample(300_000);
        for threads in [0usize, 1, 2, 4, 8] {
            let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(4096));
            let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 10_000);
            serial.write_all(&data).unwrap();
            let expect = serial.finish().unwrap();

            let mut parallel = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                10_000,
                threads,
            );
            parallel.write_all(&data).unwrap();
            let got = parallel.finish().unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn roundtrip_through_serial_reader() {
        let data = sample(120_000);
        for codec in [
            Arc::new(Store) as Arc<dyn Codec>,
            Arc::new(Lz::default()),
            Arc::new(Bzip::with_block_size(2048)),
        ] {
            let mut w =
                ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 7000, 4);
            w.write_all(&data).unwrap();
            let file = w.finish().unwrap();
            let mut r = CodecReader::new(&file[..], codec);
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn readahead_reads_serial_stream() {
        let data = sample(200_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 9000);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in [1usize, 2, 4] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "threads={threads}");
        }
    }

    #[test]
    fn empty_stream() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
        let file = w.finish().unwrap();
        let mut r = ReadaheadReader::new(std::io::Cursor::new(file), codec, 4);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn readahead_reports_truncation() {
        let mut file = Vec::new();
        varint::write_u64(&mut file, 4).unwrap();
        file.extend_from_slice(b"da"); // segment promises 4, delivers 2
        let mut r = ReadaheadReader::new(
            std::io::Cursor::new(file),
            Arc::new(Store) as Arc<dyn Codec>,
            2,
        );
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
        // The error persists: further reads must not look like clean EOF.
        let mut byte = [0u8; 1];
        assert!(r.read(&mut byte).is_err());
        assert!(r.read(&mut byte).is_err());
    }

    #[test]
    fn worker_pool_runs_all_jobs_and_joins() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        let pool = WorkerPool::spawn(3, 2, "test-pool", move |n: usize| {
            h.fetch_add(n, Ordering::SeqCst);
        });
        assert_eq!(pool.threads(), 3);
        for n in 0..100usize {
            pool.submit(n).unwrap();
        }
        pool.join().unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), (0..100).sum::<usize>());
    }

    #[test]
    fn drop_without_finish_reaps_workers() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), codec, 4096, 4);
        w.write_all(&sample(100_000)).unwrap();
        drop(w); // must not hang or leak threads
    }

    #[test]
    fn byte_counters_match_serial() {
        let data = sample(50_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192);
        serial.write_all(&data).unwrap();

        let mut parallel =
            ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192, 3);
        parallel.write_all(&data).unwrap();
        assert_eq!(parallel.raw_bytes(), 50_000);
        let serial_len = serial.finish().unwrap().len();
        let parallel_out = parallel.finish().unwrap();
        assert_eq!(parallel_out.len(), serial_len);
    }
}
