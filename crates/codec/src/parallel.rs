//! Parallel streaming adapters: an engine-backed [`ParallelCodecWriter`]
//! and a free-running [`ReadaheadReader`], both producing/consuming
//! exactly the [`CodecWriter`](crate::CodecWriter) stream format.
//!
//! The serial [`CodecWriter`](crate::CodecWriter) compresses every segment
//! on the producer thread, so compression throughput caps trace-generation
//! throughput. [`ParallelCodecWriter`] instead submits full segments as
//! tasks to a shared work-stealing [`Engine`] and writes the
//! `varint(len) ++ block` frames back **in submission order**, so the
//! on-disk format is byte-identical to the serial writer at every worker
//! count — existing readers work unchanged. This is the shape proven by
//! rr's `CompressedWriter`: independent blocks, ordered reassembly,
//! bounded in-flight buffering for backpressure.
//!
//! Both adapters are streaming-first: segments are compressed with
//! [`Codec::compress_into`] / decompressed with [`Codec::decompress_into`]
//! into *owned scratch buffers that cycle through the pipeline* (producer
//! → engine task → reassembly → back to the producer), so the steady
//! state performs no per-segment allocation on either side.
//!
//! [`ReadaheadReader`] mirrors the writer on the consume side: a feeder
//! thread frames packed segments off the input and submits each one to
//! the engine the moment it is read (an in-flight gate bounds readahead
//! depth); tasks decode independently, and an ordered reassembly map on
//! the consumer side delivers decompressed segments strictly in stream
//! order.
//!
//! Neither adapter owns threads. By default they share the process-wide
//! engine ([`Engine::global_with`], grown to the requested `threads`);
//! tests and multi-stream containers (the sharded store) inject an
//! explicit [`Engine`] instead, so many streams feed one worker set and
//! an idle stream's capacity is stolen by a busy one.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use atc_codec::{Bzip, Codec, CodecReader, ParallelCodecWriter};
//!
//! let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
//! let mut w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
//! w.write_all(b"stream me from four workers")?;
//! let file = w.finish()?;
//!
//! // The serial reader decodes the parallel writer's output.
//! let mut r = CodecReader::new(&file[..], codec);
//! let mut back = String::new();
//! r.read_to_string(&mut back)?;
//! assert_eq!(back, "stream me from four workers");
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::io::{self, BufRead, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use atc_engine::Engine;

use crate::error::CodecError;
use crate::stream::{SegmentRecord, DEFAULT_SEGMENT_SIZE};
use crate::varint;
use crate::Codec;

/// Upper bound on segments queued or in flight per configured thread.
///
/// Bounds memory to roughly `2 * threads * segment_size` raw bytes while
/// keeping every worker busy (one segment compressing, one queued).
pub const IN_FLIGHT_PER_WORKER: usize = 2;

/// A shared cap on buffered bytes across many parallel writers.
///
/// One writer's in-flight window already bounds *its* memory
/// (`threads × `[`IN_FLIGHT_PER_WORKER`]` segments`), but a container
/// running many writers — the sharded store feeds one
/// [`ParallelCodecWriter`] per shard — compounds those windows to
/// `writers × threads × 2` segments. A `ByteBudget` is the global gate:
/// every writer [`acquire`](ByteBudget::acquire)s a payload's bytes
/// before handing it to the engine and releases them when the engine
/// task is done with the buffer, so the *sum* of buffered bytes across
/// all sharing writers stays at or under `cap`.
///
/// Deadlock-freedom: releases are performed by engine workers (never by
/// the blocked producer), and an `acquire` larger than the whole cap is
/// admitted once the budget is empty — so a single oversized payload
/// can always make progress and the producer can never sleep on a
/// budget nobody will refill.
#[derive(Debug)]
pub struct ByteBudget {
    cap: u64,
    state: Mutex<BudgetState>,
    freed: Condvar,
}

#[derive(Debug, Default)]
struct BudgetState {
    in_use: u64,
    peak: u64,
}

impl ByteBudget {
    /// Creates a budget admitting up to `cap` buffered bytes (clamped to
    /// at least 1 so a zero cap cannot wedge the gate).
    pub fn new(cap: u64) -> Self {
        Self {
            cap: cap.max(1),
            state: Mutex::new(BudgetState::default()),
            freed: Condvar::new(),
        }
    }

    /// The configured cap in bytes.
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Blocks until `n` bytes fit under the cap, then takes them. An `n`
    /// exceeding the whole cap is admitted as soon as the budget is
    /// empty (overshoot beats deadlock; the cap is restored once the
    /// oversized payload releases).
    pub fn acquire(&self, n: u64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        while s.in_use > 0 && s.in_use + n > self.cap {
            s = self.freed.wait(s).unwrap_or_else(|e| e.into_inner());
        }
        s.in_use += n;
        s.peak = s.peak.max(s.in_use);
    }

    /// Returns `n` bytes to the budget and wakes blocked acquirers.
    pub fn release(&self, n: u64) {
        let mut s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(s.in_use >= n, "budget release exceeds acquires");
        s.in_use = s.in_use.saturating_sub(n);
        drop(s);
        // lock-held: not required here — `in_use` was decremented under
        // the `state` mutex above, so a blocked `acquire` is either
        // already in `wait` (and receives this notify) or has yet to
        // take the lock (and will see the new budget when it does);
        // notifying after the drop just spares the woken thread an
        // immediate block on a still-held mutex.
        self.freed.notify_all();
    }

    /// Bytes currently held.
    pub fn in_use(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).in_use
    }

    /// High-water mark of held bytes over the budget's lifetime — the
    /// number the store's memory-cap tests pin against `cap` (plus at
    /// most one overshooting oversized payload).
    pub fn peak(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).peak
    }
}

use atc_engine::panic_message;

/// Scratch-buffer accounting for a [`ParallelCodecWriter`] (see
/// [`ParallelCodecWriter::scratch_stats`]).
///
/// Steady state, `fresh` stays bounded by the in-flight window
/// (`threads * 2 + 1` per buffer kind) no matter how many segments the
/// stream carries — the assertion the scratch-reuse tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Segment buffers newly allocated because no recycled one was free.
    pub fresh: u64,
    /// Segment buffers reused from the cycling pool.
    pub recycled: u64,
}

/// A `Write` adapter that compresses segments on the shared engine.
///
/// Produces the exact byte stream of the serial
/// [`CodecWriter`](crate::CodecWriter): segments framed as
/// `varint(compressed_len) ++ compressed bytes`, terminated by a
/// zero-length varint, emitted in submission order. `threads <= 1` runs
/// inline on the caller thread with no tasks at all (today's serial
/// path); `threads > 1` bounds the writer's in-flight window and, when no
/// engine is injected, grows the process-wide engine to that worker
/// count.
///
/// Raw-segment and compressed-segment buffers are owned `Vec<u8>`s that
/// cycle producer → engine task → reassembly → producer, so the
/// steady-state write path allocates nothing per segment (see
/// [`ParallelCodecWriter::scratch_stats`]).
///
/// Call [`ParallelCodecWriter::finish`] to drain the in-flight segments,
/// write the end-of-stream marker, and recover the inner writer; dropping
/// without `finish` leaves the stream unterminated (readers will report
/// truncation), exactly like the serial writer.
#[derive(Debug)]
pub struct ParallelCodecWriter<W: Write> {
    inner: W,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    segment_size: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
    pool: Option<Pool>,
    /// Sequence number of the next segment to submit.
    next_seq: u64,
    /// Sequence number of the next segment to write to `inner`.
    next_write: u64,
    /// Completed segments (or task failures) that arrived ahead of their
    /// turn.
    done: BTreeMap<u64, io::Result<Vec<u8>>>,
    /// Segments submitted but not yet written out.
    in_flight: usize,
    /// Recycled raw-segment buffers (returned by tasks with results).
    raw_pool: Vec<Vec<u8>>,
    /// Recycled compressed-segment buffers (drained after frame writes).
    packed_pool: Vec<Vec<u8>>,
    stats: ScratchStats,
    /// Shared cap on raw bytes handed to the engine and not yet returned
    /// (None = only this writer's own window bounds it).
    budget: Option<Arc<ByteBudget>>,
    /// First inner-writer (or task) error; once set, every later call
    /// fails with it. A failed frame write may have landed partially, so
    /// retrying would silently corrupt the stream — fail fast instead.
    poisoned: Option<(io::ErrorKind, String)>,
    /// One record per segment written out, in stream order.
    segments: Vec<SegmentRecord>,
    /// Raw length of each submitted-but-unwritten segment, keyed by
    /// sequence number; drained into `segments` at ordered write time.
    raw_lens: BTreeMap<u64, u64>,
}

/// The writer's engine attachment: where tasks go and where results come
/// back.
#[derive(Debug)]
struct Pool {
    engine: Engine,
    /// Home worker for this writer's tasks (idle workers steal from it).
    home: usize,
    /// Configured parallelism: bounds the in-flight window.
    threads: usize,
    /// `(seq, raw buffer back for recycling, compressed segment or task
    /// failure)`.
    results: Receiver<(u64, Vec<u8>, io::Result<Vec<u8>>)>,
    tx: Sender<(u64, Vec<u8>, io::Result<Vec<u8>>)>,
}

impl Pool {
    fn attach(engine: Engine, threads: usize) -> Self {
        let (tx, results) = mpsc::channel();
        let home = engine.assign_home();
        Self {
            engine,
            home,
            threads,
            results,
            tx,
        }
    }
}

impl<W: Write> ParallelCodecWriter<W> {
    /// Creates a writer with the default segment size and `threads`
    /// in-flight segments (`0`/`1` = inline serial) on the process-wide
    /// engine.
    pub fn new(inner: W, codec: Arc<dyn Codec>, threads: usize) -> Self {
        Self::with_segment_size(inner, codec, DEFAULT_SEGMENT_SIZE, threads)
    }

    /// Creates a writer compressing every `segment_size` raw bytes with
    /// up to `threads` segments in flight on the process-wide engine
    /// (grown to at least `threads` workers).
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_segment_size(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
    ) -> Self {
        let engine = (threads > 1).then(|| Engine::global_with(threads));
        Self::build(inner, codec, segment_size, threads, engine)
    }

    /// Creates a writer submitting its segments to an explicit `engine`
    /// (the injection point for tests and multi-stream containers; the
    /// engine's worker count is whatever it was created with — `threads`
    /// only bounds this writer's in-flight window).
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_engine(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
        engine: Engine,
    ) -> Self {
        Self::with_engine_budget(inner, codec, segment_size, threads, engine, None)
    }

    /// Like [`ParallelCodecWriter::with_engine`], but drawing every
    /// in-flight raw segment from a shared [`ByteBudget`] — the gate a
    /// multi-writer container (the sharded store) uses to bound the
    /// *sum* of all writers' buffered bytes instead of letting the
    /// per-writer windows compound.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_engine_budget(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
        engine: Engine,
        budget: Option<Arc<ByteBudget>>,
    ) -> Self {
        let engine = (threads > 1).then_some(engine);
        let mut w = Self::build(inner, codec, segment_size, threads, engine);
        w.budget = budget;
        w
    }

    fn build(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        threads: usize,
        engine: Option<Engine>,
    ) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        // `threads <= 1` never attaches a pool (inline serial path), so a
        // pool's window is always ≥ 2 segments — clamp anyway so no
        // future call path can construct a zero-width in-flight window
        // that would wedge the backpressure loop.
        let pool = engine.map(|e| Pool::attach(e, threads.max(1)));
        Self {
            inner,
            codec,
            buf: Vec::with_capacity(segment_size.min(1 << 22)),
            segment_size,
            raw_bytes: 0,
            compressed_bytes: 0,
            pool,
            next_seq: 0,
            next_write: 0,
            done: BTreeMap::new(),
            in_flight: 0,
            raw_pool: Vec::new(),
            packed_pool: Vec::new(),
            stats: ScratchStats::default(),
            budget: None,
            poisoned: None,
            segments: Vec::new(),
            raw_lens: BTreeMap::new(),
        }
    }

    /// Fails if a previous frame write errored (the stream may hold a
    /// partial frame, so no further writes can be trusted).
    fn check_poisoned(&self) -> io::Result<()> {
        match &self.poisoned {
            Some((kind, msg)) => Err(io::Error::new(*kind, msg.clone())),
            None => Ok(()),
        }
    }

    /// Raw bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed bytes emitted so far (excluding data still buffered or
    /// in flight on the engine).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Configured parallelism: the in-flight window in segments (0 =
    /// inline serial, no engine tasks).
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(0, |p| p.threads)
    }

    /// Segment-buffer allocation accounting: how many buffers were newly
    /// allocated vs reused from the cycling pool. After warm-up, `fresh`
    /// stops growing — every later segment rides recycled buffers.
    pub fn scratch_stats(&self) -> ScratchStats {
        self.stats
    }

    /// Pops a recycled buffer (or allocates one of `capacity`), keeping
    /// the fresh/recycled accounting.
    fn take_buffer(pool: &mut Vec<Vec<u8>>, stats: &mut ScratchStats, capacity: usize) -> Vec<u8> {
        match pool.pop() {
            Some(buf) => {
                stats.recycled += 1;
                buf
            }
            None => {
                stats.fresh += 1;
                Vec::with_capacity(capacity)
            }
        }
    }

    fn write_frame(&mut self, packed: &[u8]) -> io::Result<()> {
        // Header and payload as two writes (like the serial CodecWriter):
        // no copy of the compressed bytes on the one thread serializing
        // all output. Partial landings are handled by the poison latch.
        let mut header = [0u8; 10];
        let mut cursor = &mut header[..];
        varint::write_u64(&mut cursor, packed.len() as u64)?;
        let header_len = 10 - cursor.len();
        let result = self
            .inner
            .write_all(&header[..header_len])
            .and_then(|()| self.inner.write_all(packed));
        if let Err(e) = result {
            self.poisoned = Some((e.kind(), e.to_string()));
            return Err(e);
        }
        self.compressed_bytes += (header_len + packed.len()) as u64;
        Ok(())
    }

    /// Writes every completed segment that is next in line, recycling its
    /// buffer afterwards. A failed *task* (compression panicked) poisons
    /// the writer when its turn comes up, preserving everything emitted
    /// before it.
    fn drain_ready(&mut self) -> io::Result<()> {
        while let Some(result) = self.done.remove(&self.next_write) {
            match result {
                Ok(packed) => {
                    let file_offset = self.compressed_bytes;
                    if let Err(e) = self.write_frame(&packed) {
                        // Keep the accounting consistent (no deadlock
                        // waiting for a result that was already consumed);
                        // the poison latch set by write_frame stops any
                        // further writes.
                        self.done.insert(self.next_write, Ok(packed));
                        return Err(e);
                    }
                    let raw_len = self
                        .raw_lens
                        .remove(&self.next_write)
                        // atclint: allow(library-unwrap) -- infallible: the
                        // submit path inserts into raw_lens under the same seq
                        // it sends to the engine, before in_flight is bumped,
                        // and each seq drains here exactly once.
                        .expect("every submitted segment recorded its raw length");
                    self.segments.push(SegmentRecord {
                        file_offset,
                        compressed_len: self.compressed_bytes - file_offset,
                        raw_len,
                    });
                    self.next_write += 1;
                    self.in_flight -= 1;
                    self.recycle_packed(packed);
                }
                Err(e) => {
                    // The segment can never be produced: the stream is
                    // unfinishable from here on.
                    self.next_write += 1;
                    self.in_flight -= 1;
                    self.poisoned = Some((e.kind(), e.to_string()));
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    fn recycle_packed(&mut self, mut packed: Vec<u8>) {
        packed.clear();
        self.packed_pool.push(packed);
    }

    fn recycle_raw(&mut self, mut raw: Vec<u8>) {
        raw.clear();
        self.raw_pool.push(raw);
    }

    /// Files one task result: the raw buffer re-enters the cycle, the
    /// compressed segment (or the task's failure) waits for its turn.
    fn file_result(&mut self, seq: u64, raw: Vec<u8>, result: io::Result<Vec<u8>>) {
        self.recycle_raw(raw);
        self.done.insert(seq, result);
    }

    /// Receives one completed segment from the engine, blocking.
    fn recv_one(&mut self) -> io::Result<()> {
        // atclint: allow(library-unwrap) -- infallible: recv_one is only
        // reached with in_flight > 0, and segments are only put in flight
        // through the pool-holding submit path.
        let pool = self.pool.as_ref().expect("recv_one requires a pool");
        match pool.results.recv() {
            Ok((seq, raw, result)) => {
                self.file_result(seq, raw, result);
                Ok(())
            }
            // The writer holds its own Sender, so this is unreachable;
            // keep the guard anyway.
            Err(_) => Err(io::Error::other("compression result channel closed")),
        }
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        self.check_poisoned()?;
        if self.buf.is_empty() {
            return Ok(());
        }
        if self.pool.is_none() {
            // Inline serial path: identical bytes to CodecWriter, with the
            // packed scratch cycling through a one-deep pool.
            let raw_len = self.buf.len() as u64;
            let file_offset = self.compressed_bytes;
            let mut out = Self::take_buffer(&mut self.packed_pool, &mut self.stats, 0);
            self.codec.compress_into(&self.buf, &mut out);
            self.buf.clear();
            let result = self.write_frame(&out);
            self.recycle_packed(out);
            if result.is_ok() {
                self.segments.push(SegmentRecord {
                    file_offset,
                    compressed_len: self.compressed_bytes - file_offset,
                    raw_len,
                });
            }
            return result;
        }

        // Backpressure: cap segments in flight so memory stays bounded
        // even when compression is slower than production. Drain before
        // blocking on the engine: after a transient write error the
        // next-in-line frame sits in `done` with no result left to wait
        // for, and recv_one would block forever.
        let max_in_flight = (self.threads() * IN_FLIGHT_PER_WORKER).max(1);
        while self.in_flight >= max_in_flight {
            self.drain_ready()?;
            if self.in_flight < max_in_flight {
                break;
            }
            self.recv_one()?;
        }

        // The shared gate (if any) admits this segment's raw bytes before
        // the engine sees them; engine workers release, so a producer
        // blocked here always wakes once any sharing writer's in-flight
        // work lands.
        let raw_len = self.buf.len() as u64;
        if let Some(budget) = &self.budget {
            budget.acquire(raw_len);
        }
        let raw_capacity = self.segment_size.min(1 << 22);
        let replacement = Self::take_buffer(&mut self.raw_pool, &mut self.stats, raw_capacity);
        let raw = std::mem::replace(&mut self.buf, replacement);
        let mut out = Self::take_buffer(&mut self.packed_pool, &mut self.stats, 0);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.raw_lens.insert(seq, raw_len);
        // atclint: allow(library-unwrap) -- infallible: this function's
        // serial fallback returned already when self.pool is None.
        let pool = self.pool.as_ref().expect("pool checked above");
        let tx = pool.tx.clone();
        let codec = Arc::clone(&self.codec);
        let budget = self.budget.clone();
        pool.engine.submit(pool.home, move || {
            // A panicking codec must not strand the writer waiting for a
            // result that will never come: catch it and deliver the
            // failure through the ordered reassembly path instead.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                codec.compress_into(&raw, &mut out);
            }));
            // The raw bytes leave the budget the moment compression is
            // over (panic included): the compressed copy is the small
            // one, and it is bounded by the per-writer window.
            if let Some(budget) = &budget {
                budget.release(raw_len);
            }
            let result = match outcome {
                Ok(()) => Ok(out),
                Err(p) => Err(io::Error::other(format!(
                    "compression task panicked: {}",
                    panic_message(&*p)
                ))),
            };
            // The writer may already be dropped; an unfinished stream is
            // unterminated either way, so a dead receiver is fine.
            let _ = tx.send((seq, raw, result));
        });
        self.in_flight += 1;

        // Opportunistically collect finished segments without blocking.
        while let Ok((seq, raw, result)) = self
            .pool
            .as_ref()
            // atclint: allow(library-unwrap) -- infallible: same
            // pool-is-Some branch as the submit a few lines up.
            .expect("pool checked above")
            .results
            .try_recv()
        {
            self.file_result(seq, raw, result);
        }
        self.drain_ready()
    }

    /// Flushes the final segment, drains the in-flight tasks, writes the
    /// end-of-stream marker, and returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer and task failures.
    pub fn finish(self) -> io::Result<W> {
        self.finish_with_segments().map(|(inner, _)| inner)
    }

    /// Like [`ParallelCodecWriter::finish`], but also hands back one
    /// [`SegmentRecord`] per sealed segment, in stream order — identical
    /// to the records the serial [`CodecWriter`](crate::CodecWriter)
    /// would produce for the same input, since the frames are written in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer and task failures.
    pub fn finish_with_segments(mut self) -> io::Result<(W, Vec<SegmentRecord>)> {
        self.check_poisoned()?;
        self.flush_segment()?;
        while self.in_flight > 0 {
            // Same ordering as the backpressure loop: retry anything
            // already buffered in `done` before blocking on the engine.
            self.drain_ready()?;
            if self.in_flight == 0 {
                break;
            }
            self.recv_one()?;
        }
        debug_assert!(self.done.is_empty());
        self.pool.take();
        let mut eos = [0u8; 10];
        let mut cursor = &mut eos[..];
        varint::write_u64(&mut cursor, 0)?;
        let eos_len = 10 - cursor.len();
        self.inner.write_all(&eos[..eos_len])?;
        self.compressed_bytes += eos_len as u64;
        self.inner.flush()?;
        Ok((self.inner, self.segments))
    }
}

impl<W: Write> Write for ParallelCodecWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        self.check_poisoned()?;
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.segment_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.segment_size {
                self.flush_segment()?;
            }
        }
        self.raw_bytes += data.len() as u64;
        Ok(data.len())
    }

    /// Flushes the inner writer only. Buffered raw bytes are *not* forced
    /// into a short segment, and in-flight segments keep compressing; both
    /// are emitted by [`ParallelCodecWriter::finish`].
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A shared free list of segment buffers.
///
/// Readahead buffers cycle consumer → pool → task → consumer (and
/// packed buffers feeder → task → pool → feeder). `cap` bounds how many
/// idle buffers are retained; beyond it, returned buffers are simply
/// dropped so a burst never pins memory forever.
#[derive(Debug)]
struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    cap: usize,
}

impl BufPool {
    fn new(cap: usize) -> Self {
        Self {
            bufs: Mutex::new(Vec::new()),
            cap,
        }
    }

    fn get(&self) -> Vec<u8> {
        // A poisoner can only have been mid `push`/`pop` on the Vec,
        // which never leaves it torn — recycle through the poison
        // rather than cascading the panic into every other reader.
        self.bufs
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop()
            .unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        buf.clear();
        let mut bufs = self.bufs.lock().unwrap_or_else(|e| e.into_inner());
        if bufs.len() < self.cap {
            bufs.push(buf);
        }
    }
}

/// Counting gate bounding the feeder's undelivered segments.
///
/// The engine's submit never blocks and the result channel is
/// unbounded, so readahead depth (and therefore memory) is bounded
/// here instead: the feeder `acquire`s one slot per message it will
/// produce (decode task or error), and the slot is `release`d only when
/// the **consumer** receives that message — so a consumer that stops
/// reading stalls the feeder after `cap` undelivered segments, exactly
/// like the old bounded channel, while engine workers never block.
/// `cancel` wakes a blocked feeder so it can observe the dead flag when
/// the consumer goes away with slots still held.
#[derive(Debug)]
struct Gate {
    count: Mutex<usize>,
    freed: Condvar,
    cap: usize,
}

impl Gate {
    fn new(cap: usize) -> Self {
        Self {
            count: Mutex::new(0),
            freed: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until a slot is free; returns `false` (no slot taken) if
    /// `dead` is set while waiting.
    fn acquire(&self, dead: &AtomicBool) -> bool {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // ordering: Relaxed — `dead` is a monotonic poll flag; the
            // `count` mutex (held across this check) plus `cancel`'s
            // locked notify already order the store against this load,
            // so the atomic needs no ordering of its own.
            if dead.load(Ordering::Relaxed) {
                return false;
            }
            if *n < self.cap {
                *n += 1;
                return true;
            }
            n = self.freed.wait(n).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn release(&self) {
        let mut n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        *n -= 1;
        drop(n);
        // lock-held: not required — the count was decremented under the
        // `count` mutex above, so a blocked `acquire` either already
        // waits (and gets this notify) or re-checks `*n < cap` under the
        // lock and sees the free slot without needing it.
        self.freed.notify_one();
    }

    /// Wakes any blocked `acquire` so it can re-check the dead flag.
    fn cancel(&self) {
        // lock-held: notify under the count lock — the feeder holds it
        // from its dead check until `wait` releases it, so acquiring
        // here means the feeder is either before the check (and will
        // see dead) or already waiting (and gets this wakeup); a bare
        // notify could land in that window and be lost, hanging
        // shutdown's join.
        let n = self.count.lock().unwrap_or_else(|e| e.into_inner());
        self.freed.notify_all();
        drop(n);
    }
}

/// A `Read` adapter that decompresses a codec stream through the shared
/// engine, free-running ahead of the consumer.
///
/// Consumes the exact stream format of
/// [`CodecWriter`](crate::CodecWriter) / [`ParallelCodecWriter`]. A feeder
/// thread frames packed segments off the input and submits each to the
/// engine the moment it is read; an in-flight gate bounds readahead
/// depth, and there is no batch-of-`threads` barrier, so one slow segment
/// never idles the other workers. Results flow to the consumer through a
/// channel and an ordered reassembly map keyed by sequence number, so
/// `read` always sees segments in exact stream order. Segment buffers
/// cycle back to the tasks once consumed.
///
/// Also implements [`BufRead`]: [`BufRead::fill_buf`] hands out the
/// unconsumed tail of the current decoded segment straight from the
/// reassembly buffer, so frame-granular consumers (the container layer's
/// `next_frame`) can parse decoded bytes in place without the `Read::read`
/// copy into their own buffer.
#[derive(Debug)]
pub struct ReadaheadReader {
    rx: Option<Receiver<(u64, io::Result<Vec<u8>>)>>,
    feeder: Option<JoinHandle<()>>,
    /// Decompressed segments that arrived ahead of their turn.
    pending: BTreeMap<u64, io::Result<Vec<u8>>>,
    /// Sequence number of the next segment to hand to the consumer.
    next_seq: u64,
    current: Vec<u8>,
    pos: usize,
    /// First error seen, replayed on every subsequent read (matching the
    /// serial `CodecReader`, which keeps erroring rather than turning a
    /// poisoned stream into a clean EOF). A mid-stream CRC failure
    /// therefore fails *all* reads after the error point, forever.
    error: Option<(io::ErrorKind, String)>,
    /// Consumed segment buffers, recycled back to the decode tasks.
    out_pool: Arc<BufPool>,
    /// One slot per undelivered message (see [`Gate`]); released as the
    /// consumer receives each message.
    gate: Arc<Gate>,
    /// Tells the feeder (and its gate waits) that the consumer is gone.
    dead: Arc<AtomicBool>,
}

impl ReadaheadReader {
    /// Spawns the readahead pipeline over a terminated codec stream on
    /// the process-wide engine (grown to at least `threads` workers).
    ///
    /// `threads` is the decompression parallelism (`0`/`1` = one segment
    /// at a time on the feeder thread, still overlapped with the
    /// consumer).
    pub fn new<R: Read + Send + 'static>(inner: R, codec: Arc<dyn Codec>, threads: usize) -> Self {
        let engine = (threads > 1).then(|| Engine::global_with(threads));
        Self::build(inner, codec, threads, engine)
    }

    /// Like [`ReadaheadReader::new`], but submits decode tasks to an
    /// explicit `engine` (the injection point for tests and multi-stream
    /// containers).
    pub fn with_engine<R: Read + Send + 'static>(
        inner: R,
        codec: Arc<dyn Codec>,
        threads: usize,
        engine: Engine,
    ) -> Self {
        let engine = (threads > 1).then_some(engine);
        Self::build(inner, codec, threads, engine)
    }

    fn build<R: Read + Send + 'static>(
        inner: R,
        codec: Arc<dyn Codec>,
        threads: usize,
        engine: Option<Engine>,
    ) -> Self {
        let threads = threads.max(1);
        let window = threads * IN_FLIGHT_PER_WORKER;
        let (tx, rx) = mpsc::channel();
        let out_pool = Arc::new(BufPool::new(window + 2));
        let gate = Arc::new(Gate::new(window));
        // Flipped by a task (or shutdown) when the consumer is gone; the
        // feeder polls it and stops reading ahead.
        let dead = Arc::new(AtomicBool::new(false));
        let feeder = {
            let out_pool = Arc::clone(&out_pool);
            let gate = Arc::clone(&gate);
            let dead = Arc::clone(&dead);
            std::thread::Builder::new()
                .name("atc-codec-readahead".into())
                .spawn(move || feed(inner, codec, threads, engine, tx, out_pool, gate, dead))
                // atclint: allow(library-unwrap) -- OS thread-spawn failure
                // at reader construction has no fallback; the infallible
                // constructor signature is part of the public API.
                .expect("spawn readahead thread")
        };
        Self {
            rx: Some(rx),
            feeder: Some(feeder),
            pending: BTreeMap::new(),
            next_seq: 0,
            current: Vec::new(),
            pos: 0,
            error: None,
            out_pool,
            gate,
            dead,
        }
    }

    fn latch(&mut self, e: &io::Error) {
        self.error = Some((e.kind(), e.to_string()));
        self.shutdown();
    }

    fn refill(&mut self) -> io::Result<bool> {
        if let Some((kind, msg)) = &self.error {
            return Err(io::Error::new(*kind, msg.clone()));
        }
        loop {
            // Deliver strictly in order: only the segment numbered
            // `next_seq` may leave the reassembly map.
            if let Some(result) = self.pending.remove(&self.next_seq) {
                self.next_seq += 1;
                match result {
                    Ok(segment) => {
                        debug_assert!(!segment.is_empty());
                        let consumed = std::mem::replace(&mut self.current, segment);
                        self.out_pool.put(consumed);
                        self.pos = 0;
                        return Ok(true);
                    }
                    Err(e) => {
                        self.latch(&e);
                        return Err(e);
                    }
                }
            }
            let Some(rx) = &self.rx else {
                return Ok(false);
            };
            match rx.recv() {
                Ok((seq, result)) => {
                    // The message left the channel: free its readahead
                    // slot so the feeder may produce the next one.
                    self.gate.release();
                    self.pending.insert(seq, result);
                }
                Err(_) => {
                    // All senders gone: every produced result has been
                    // drained into `pending`. An empty map means the
                    // feeder finished cleanly after the end-of-stream
                    // marker; a gap means a decode task was lost.
                    if self.pending.is_empty() {
                        self.shutdown();
                        return Ok(false);
                    }
                    let e = io::Error::other("readahead task lost mid-stream");
                    self.latch(&e);
                    return Err(e);
                }
            }
        }
    }

    fn shutdown(&mut self) {
        // Order matters: mark the consumer dead and wake any blocked
        // gate wait *before* joining the feeder, or a feeder stalled on
        // a full window (slots held by messages we will never receive)
        // would never exit.
        // ordering: Relaxed — `cancel` takes the gate mutex after this
        // store, and the feeder reads `dead` under that same mutex, so
        // the lock hand-off publishes the flag; Relaxed suffices.
        self.dead.store(true, Ordering::Relaxed);
        self.gate.cancel();
        self.rx.take();
        if let Some(feeder) = self.feeder.take() {
            let _ = feeder.join();
        }
        self.pending.clear();
    }
}

/// Decompresses one packed segment into a pooled buffer.
fn decode_segment(codec: &dyn Codec, packed: &[u8], out_pool: &BufPool) -> io::Result<Vec<u8>> {
    let mut out = out_pool.get();
    match codec.decompress_into(packed, &mut out) {
        Ok(_) if out.is_empty() => {
            // A zero-raw-byte segment is never written; treat as corrupt
            // (mirrors the serial CodecReader).
            out_pool.put(out);
            Err(io::Error::from(CodecError::Corrupt("empty segment".into())))
        }
        Ok(_) => Ok(out),
        Err(e) => {
            out_pool.put(out);
            Err(io::Error::from(e))
        }
    }
}

/// Feeder-thread body: frame segments off the input and keep the engine
/// saturated; ordering is restored on the consumer side. Every message
/// (result or error) carries one gate slot, released by the consumer —
/// a consumer that stops reading therefore stalls the feeder after one
/// window of undelivered segments.
#[allow(clippy::too_many_arguments)]
fn feed<R: Read>(
    mut inner: R,
    codec: Arc<dyn Codec>,
    threads: usize,
    engine: Option<Engine>,
    tx: Sender<(u64, io::Result<Vec<u8>>)>,
    out_pool: Arc<BufPool>,
    gate: Arc<Gate>,
    dead: Arc<AtomicBool>,
) {
    let window = threads * IN_FLIGHT_PER_WORKER;
    let packed_pool = Arc::new(BufPool::new(window + 2));
    let mut seq = 0u64;

    let Some(engine) = engine else {
        // Single-threaded readahead: decode inline on this thread (still
        // fully overlapped with the consumer through the channel).
        loop {
            let seg_len = match varint::read_u64(&mut inner) {
                Ok(n) => n as usize,
                Err(e) => {
                    if gate.acquire(&dead) {
                        let _ = tx.send((seq, Err(e)));
                    }
                    return;
                }
            };
            if seg_len == 0 {
                return;
            }
            let mut packed = packed_pool.get();
            packed.resize(seg_len, 0);
            if let Err(e) = inner.read_exact(&mut packed) {
                if gate.acquire(&dead) {
                    let _ = tx.send((seq, Err(e)));
                }
                return;
            }
            let result = decode_segment(&*codec, &packed, &out_pool);
            packed_pool.put(packed);
            let failed = result.is_err();
            if !gate.acquire(&dead) {
                return; // consumer gone
            }
            if tx.send((seq, result)).is_err() || failed {
                return; // consumer dropped, or stream is poisoned
            }
            seq += 1;
        }
    };

    // Free-running: every frame is submitted the moment it is read; the
    // gate caps undelivered segments (and therefore memory) without any
    // per-batch barrier, and without ever blocking an engine worker.
    let home = engine.assign_home();
    loop {
        // ordering: Relaxed — best-effort early exit; missing one store
        // costs at most one extra readahead frame, and the gate's mutex
        // in `acquire` gives the authoritative, ordered check below.
        if dead.load(Ordering::Relaxed) {
            break;
        }
        let seg_len = match varint::read_u64(&mut inner) {
            Ok(n) => n as usize,
            Err(e) => {
                // Tagged with the next unused sequence number, the error
                // sorts after every submitted segment: the consumer sees
                // all good data, then the failure — exactly the serial
                // reader's ordering.
                if gate.acquire(&dead) {
                    let _ = tx.send((seq, Err(e)));
                }
                break;
            }
        };
        if seg_len == 0 {
            break;
        }
        let mut packed = packed_pool.get();
        packed.resize(seg_len, 0);
        if let Err(e) = inner.read_exact(&mut packed) {
            if gate.acquire(&dead) {
                let _ = tx.send((seq, Err(e)));
            }
            break;
        }
        if !gate.acquire(&dead) {
            break; // consumer gone
        }
        let task_tx = tx.clone();
        let codec = Arc::clone(&codec);
        let out_pool = Arc::clone(&out_pool);
        let packed_pool = Arc::clone(&packed_pool);
        let gate = Arc::clone(&gate);
        let dead = Arc::clone(&dead);
        engine.submit(home, move || {
            // A panicking codec must surface as a latched error, not a
            // lost segment: catch and convert.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                decode_segment(&*codec, &packed, &out_pool)
            }));
            let (result, packed) = match outcome {
                Ok(r) => (r, Some(packed)),
                Err(p) => (
                    Err(io::Error::other(format!(
                        "decompression task panicked: {}",
                        panic_message(&*p)
                    ))),
                    None,
                ),
            };
            if let Some(packed) = packed {
                packed_pool.put(packed);
            }
            if task_tx.send((seq, result)).is_err() {
                // Consumer is gone: tell the feeder (dead first, so the
                // release's wakeup observes it) and hand the slot back,
                // since no consumer will.
                // ordering: Relaxed — `release` takes the gate mutex
                // after this store and the feeder re-checks `dead` under
                // that mutex, so the lock publishes the flag.
                dead.store(true, Ordering::Relaxed);
                gate.release();
            }
        });
        seq += 1;
    }
    // Dropping the feeder's sender leaves only the in-flight tasks'
    // clones; once they finish, the consumer observes the disconnect with
    // every produced result already delivered, so no segment is ever
    // silently lost.
}

impl Read for ReadaheadReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = (self.current.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl BufRead for ReadaheadReader {
    /// Returns the unconsumed tail of the current decoded segment,
    /// refilling from the reorder pipeline if it is exhausted. An empty
    /// slice means clean end of stream. Errors latch exactly like `read`.
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(&[]);
            }
        }
        Ok(&self.current[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.current.len());
    }
}

impl Drop for ReadaheadReader {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bzip, CodecReader, CodecWriter, Lz, Store};

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    /// Thread counts exercised by the identity tests; override with
    /// `ATC_TEST_THREADS` (single value or comma list) to pin the counts
    /// on a CI matrix runner.
    fn test_threads() -> Vec<usize> {
        match std::env::var("ATC_TEST_THREADS") {
            Ok(s) => {
                let parsed: Vec<usize> = s
                    .split(',')
                    .filter_map(|t| t.trim().parse().ok())
                    .filter(|&t| (1..=64).contains(&t))
                    .collect();
                if parsed.is_empty() {
                    vec![1, 2, 4, 8]
                } else {
                    parsed
                }
            }
            Err(_) => vec![1, 2, 4, 8],
        }
    }

    #[test]
    fn output_byte_identical_to_serial() {
        let data = sample(300_000);
        let mut threads_axis = vec![0usize];
        threads_axis.extend(test_threads());
        for threads in threads_axis {
            let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(4096));
            let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 10_000);
            serial.write_all(&data).unwrap();
            let expect = serial.finish().unwrap();

            let mut parallel = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                10_000,
                threads,
            );
            parallel.write_all(&data).unwrap();
            let got = parallel.finish().unwrap();
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn output_byte_identical_across_engine_worker_counts() {
        // The submitter window (threads) and the engine worker count are
        // now independent; the bytes must not depend on either.
        let data = sample(150_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(4096));
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 9000);
        serial.write_all(&data).unwrap();
        let expect = serial.finish().unwrap();
        for workers in [1usize, 2, 4, 8] {
            let engine = Engine::new(workers);
            let mut w =
                ParallelCodecWriter::with_engine(Vec::new(), Arc::clone(&codec), 9000, 4, engine);
            w.write_all(&data).unwrap();
            assert_eq!(w.finish().unwrap(), expect, "workers={workers}");
        }
    }

    #[test]
    fn segment_records_identical_to_serial_at_every_thread_count() {
        let data = sample(120_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(4096));
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 10_000);
        serial.write_all(&data).unwrap();
        let (_, expect) = serial.finish_with_segments().unwrap();
        assert_eq!(expect.len(), 12);
        let mut threads_axis = vec![0usize];
        threads_axis.extend(test_threads());
        for threads in threads_axis {
            let mut w = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                10_000,
                threads,
            );
            w.write_all(&data).unwrap();
            let (_, segs) = w.finish_with_segments().unwrap();
            assert_eq!(segs, expect, "threads={threads}");
        }
    }

    #[test]
    fn roundtrip_through_serial_reader() {
        let data = sample(120_000);
        for codec in [
            Arc::new(Store) as Arc<dyn Codec>,
            Arc::new(Lz::default()),
            Arc::new(Bzip::with_block_size(2048)),
        ] {
            let mut w =
                ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 7000, 4);
            w.write_all(&data).unwrap();
            let file = w.finish().unwrap();
            let mut r = CodecReader::new(&file[..], codec);
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data);
        }
    }

    #[test]
    fn readahead_reads_serial_stream() {
        let data = sample(200_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 9000);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in test_threads() {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "threads={threads}");
        }
    }

    #[test]
    fn readahead_many_small_segments_stay_ordered() {
        // Far more segments than any in-flight window: exercises the
        // reorder map under sustained free-running load, including with
        // fewer engine workers than the requested parallelism.
        let data = sample(64_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 64);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for (threads, workers) in [(2usize, 2usize), (4, 1), (8, 3)] {
            let engine = Engine::new(workers);
            let mut r = ReadaheadReader::with_engine(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
                engine,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "threads={threads} workers={workers}");
        }
    }

    #[test]
    fn empty_stream() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let w = ParallelCodecWriter::new(Vec::new(), Arc::clone(&codec), 4);
        let file = w.finish().unwrap();
        let mut r = ReadaheadReader::new(std::io::Cursor::new(file), codec, 4);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn readahead_reports_truncation() {
        let mut file = Vec::new();
        varint::write_u64(&mut file, 4).unwrap();
        file.extend_from_slice(b"da"); // segment promises 4, delivers 2
        let mut r = ReadaheadReader::new(
            std::io::Cursor::new(file),
            Arc::new(Store) as Arc<dyn Codec>,
            2,
        );
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
        // The error persists: further reads must not look like clean EOF.
        let mut byte = [0u8; 1];
        assert!(r.read(&mut byte).is_err());
        assert!(r.read(&mut byte).is_err());
    }

    /// Regression test: a CRC failure in a *middle* segment must deliver
    /// the earlier segments intact, then fail — and keep failing on every
    /// subsequent `read` call, at every thread count, instead of decaying
    /// into a clean EOF once the erroring batch has drained.
    #[test]
    fn mid_stream_crc_error_latches_forever() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let segment = 5000usize;
        let data = sample(segment * 6);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();

        // Walk the varint framing to find the 4th segment's payload and
        // flip a bit deep inside it (past the block header), so framing
        // still parses but the CRC check fails.
        let mut corrupted = file.clone();
        let mut cursor = &file[..];
        let mut offset = 0usize;
        for _ in 0..3 {
            let before = cursor.len();
            let len = varint::read_u64(&mut cursor).unwrap() as usize;
            offset += before - cursor.len() + len;
            cursor = &cursor[len..];
        }
        let before = cursor.len();
        let len = varint::read_u64(&mut cursor).unwrap() as usize;
        offset += before - cursor.len();
        corrupted[offset + len - 8] ^= 0x40;

        for threads in [1usize, 2, 4, 8] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(corrupted.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            let err = r.read_to_end(&mut back).unwrap_err();
            // Everything before the corrupt segment is delivered, in
            // order, before the error surfaces.
            assert_eq!(back.len(), segment * 3, "threads={threads}");
            assert_eq!(back, data[..segment * 3], "threads={threads}");
            let kind = err.kind();
            // The latch replays the same error on every later call.
            let mut byte = [0u8; 1];
            for _ in 0..3 {
                let again = r.read(&mut byte).unwrap_err();
                assert_eq!(again.kind(), kind, "threads={threads}");
            }
        }
    }

    /// A codec that panics on a marked segment — stands in for any bug in
    /// a compression task. The engine must catch the panic and convert it
    /// into a latched stream error on both sides.
    #[derive(Debug)]
    struct PanicCodec {
        /// Panic when the segment's first byte equals this marker.
        marker: u8,
    }

    impl Codec for PanicCodec {
        fn name(&self) -> &'static str {
            "panic-test"
        }

        fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) -> usize {
            assert!(
                data.first() != Some(&self.marker),
                "injected compression panic"
            );
            out.clear();
            out.extend_from_slice(data);
            data.len()
        }

        fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<usize, CodecError> {
            assert!(
                data.first() != Some(&self.marker),
                "injected decompression panic"
            );
            out.clear();
            out.extend_from_slice(data);
            Ok(data.len())
        }
    }

    #[test]
    fn compress_task_panic_latches_writer() {
        // Segment 3 (first byte 0xEE) panics inside the engine task; the
        // writer must surface an error (on write or finish) and every
        // later call must keep failing instead of hanging or emitting a
        // corrupt stream.
        let codec: Arc<dyn Codec> = Arc::new(PanicCodec { marker: 0xEE });
        let engine = Engine::new(2);
        let mut w =
            ParallelCodecWriter::with_engine(Vec::new(), Arc::clone(&codec), 100, 4, engine);
        let mut data = vec![0u8; 700];
        data[300] = 0xEE; // first byte of segment 3
        let write_err = w.write_all(&data).err();
        let finish_err = w.finish().err();
        let e = write_err.or(finish_err).expect("panic must surface");
        assert!(
            e.to_string().contains("panicked"),
            "error should name the panic: {e}"
        );
    }

    #[test]
    fn decode_task_panic_latches_reader() {
        // Build a valid stream with the identity half of PanicCodec, then
        // read it back with a marker that trips on the third segment: the
        // reader must deliver segments 0-1, error on 2, and latch.
        let good: Arc<dyn Codec> = Arc::new(PanicCodec { marker: 0xFF });
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&good), 100);
        let mut data = vec![0u8; 600];
        data[200] = 0xEE; // first byte of segment 2 (the decode marker)
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();

        let trip: Arc<dyn Codec> = Arc::new(PanicCodec { marker: 0xEE });
        for workers in [1usize, 2] {
            let engine = Engine::new(workers);
            let mut r = ReadaheadReader::with_engine(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&trip),
                4,
                engine,
            );
            let mut back = Vec::new();
            let err = r.read_to_end(&mut back).unwrap_err();
            assert!(err.to_string().contains("panicked"), "workers={workers}");
            assert_eq!(back, data[..200], "segments before the panic arrive");
            let mut byte = [0u8; 1];
            assert!(r.read(&mut byte).is_err(), "error must latch");
            assert!(r.read(&mut byte).is_err(), "error must stay latched");
        }
    }

    #[test]
    fn bufread_matches_read_and_latches_errors() {
        // fill_buf/consume must walk the same bytes as read(), and a
        // truncated stream must keep erroring through the BufRead face.
        let data = sample(50_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 3000);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        for threads in [1usize, 4] {
            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            loop {
                let buf = r.fill_buf().unwrap();
                if buf.is_empty() {
                    break;
                }
                let n = buf.len().min(777);
                back.extend_from_slice(&buf[..n]);
                r.consume(n);
            }
            assert_eq!(back, data, "threads={threads}");
            assert!(r.fill_buf().unwrap().is_empty());
        }

        let mut truncated = Vec::new();
        varint::write_u64(&mut truncated, 4).unwrap();
        truncated.extend_from_slice(b"da");
        let mut r = ReadaheadReader::new(
            std::io::Cursor::new(truncated),
            Arc::new(Store) as Arc<dyn Codec>,
            2,
        );
        assert!(r.fill_buf().is_err());
        assert!(r.fill_buf().is_err(), "error must latch for BufRead too");
    }

    /// Regression test for the degenerate-parallelism window: `threads`
    /// of 0 or 1 must never construct a zero-width in-flight window
    /// (`threads * IN_FLIGHT_PER_WORKER == 0` would make the
    /// backpressure loop wait for a result that was never submitted).
    /// Both adapters must run inline, terminate, and produce bytes
    /// identical to the serial stream — through every constructor,
    /// including the ones handed an explicit engine.
    #[test]
    fn threads_zero_and_one_run_inline_without_deadlock() {
        let data = sample(40_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 3000);
        serial.write_all(&data).unwrap();
        let expect = serial.finish().unwrap();

        for threads in [0usize, 1] {
            let mut w = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                3000,
                threads,
            );
            w.write_all(&data).unwrap();
            assert_eq!(w.threads(), 0, "threads={threads} must be inline");
            assert_eq!(w.finish().unwrap(), expect, "threads={threads}");

            // An explicit engine must not resurrect a zero-width window.
            let mut w = ParallelCodecWriter::with_engine(
                Vec::new(),
                Arc::clone(&codec),
                3000,
                threads,
                Engine::new(2),
            );
            w.write_all(&data).unwrap();
            assert_eq!(w.finish().unwrap(), expect, "engine threads={threads}");

            let mut r = ReadaheadReader::new(
                std::io::Cursor::new(expect.clone()),
                Arc::clone(&codec),
                threads,
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "reader threads={threads}");

            let mut r = ReadaheadReader::with_engine(
                std::io::Cursor::new(expect.clone()),
                Arc::clone(&codec),
                threads,
                Engine::new(2),
            );
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            assert_eq!(back, data, "engine reader threads={threads}");
        }
    }

    /// The shared byte budget must gate segments across writers without
    /// wedging a single writer: peak usage stays at the cap, the output
    /// is unchanged, and an oversized payload (cap smaller than one
    /// segment) still makes progress via the empty-budget overshoot.
    #[test]
    fn byte_budget_bounds_in_flight_raw_bytes() {
        let data = sample(64_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 4096);
        serial.write_all(&data).unwrap();
        let expect = serial.finish().unwrap();

        let budget = Arc::new(ByteBudget::new(2 * 4096));
        let mut w = ParallelCodecWriter::with_engine_budget(
            Vec::new(),
            Arc::clone(&codec),
            4096,
            4,
            Engine::new(2),
            Some(Arc::clone(&budget)),
        );
        w.write_all(&data).unwrap();
        assert_eq!(w.finish().unwrap(), expect);
        assert!(budget.peak() <= 2 * 4096, "peak {}", budget.peak());
        assert_eq!(budget.in_use(), 0, "finish returns every byte");

        // Cap below one segment: the empty-budget overshoot admits each
        // segment alone instead of deadlocking.
        let tiny = Arc::new(ByteBudget::new(100));
        let mut w = ParallelCodecWriter::with_engine_budget(
            Vec::new(),
            Arc::clone(&codec),
            4096,
            4,
            Engine::new(2),
            Some(Arc::clone(&tiny)),
        );
        w.write_all(&data).unwrap();
        assert_eq!(w.finish().unwrap(), expect);
        assert!(
            tiny.peak() <= 4096,
            "one segment at a time: {}",
            tiny.peak()
        );
        assert_eq!(tiny.in_use(), 0);
    }

    #[test]
    fn drop_without_finish_reaps_tasks() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), codec, 4096, 4);
        w.write_all(&sample(100_000)).unwrap();
        drop(w); // must not hang or leak threads
    }

    /// The readahead window is consumer-released: with nobody reading,
    /// the feeder must stall after one window of undelivered segments
    /// (bounding memory), and dropping the reader must cancel that
    /// stalled gate wait instead of hanging the join.
    #[test]
    fn drop_unread_readahead_with_full_window_does_not_hang() {
        let data = sample(300_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap(); // ~300 segments >> any window
        for threads in [1usize, 4] {
            let r = ReadaheadReader::new(
                std::io::Cursor::new(file.clone()),
                Arc::clone(&codec),
                threads,
            );
            // Give the feeder time to fill the window and block.
            std::thread::sleep(std::time::Duration::from_millis(50));
            drop(r); // must not hang
        }
    }

    #[test]
    fn drop_readahead_mid_stream_reaps_threads() {
        // Consumer walks away after one segment; feeder + in-flight tasks
        // must wind down promptly instead of decoding the rest of the
        // stream.
        let data = sample(400_000);
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 4096);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        let mut r = ReadaheadReader::new(std::io::Cursor::new(file), codec, 4);
        let mut first = vec![0u8; 1000];
        r.read_exact(&mut first).unwrap();
        assert_eq!(first, data[..1000]);
        drop(r); // must not hang
    }

    #[test]
    fn byte_counters_match_serial() {
        let data = sample(50_000);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192);
        serial.write_all(&data).unwrap();

        let mut parallel =
            ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 8192, 3);
        parallel.write_all(&data).unwrap();
        assert_eq!(parallel.raw_bytes(), 50_000);
        let serial_len = serial.finish().unwrap().len();
        let parallel_out = parallel.finish().unwrap();
        assert_eq!(parallel_out.len(), serial_len);
    }

    #[test]
    fn steady_state_allocates_no_fresh_buffers() {
        // 100 segments with a 3-deep window: fresh buffers stop at the
        // in-flight window; the rest of the stream rides recycled buffers.
        let data = sample(100 * 1024);
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024, 3);
        w.write_all(&data).unwrap();
        let stats = w.scratch_stats();
        let window = 3 * IN_FLIGHT_PER_WORKER;
        // Two buffer kinds (raw + packed) per in-flight slot, plus the
        // writer's own accumulator slack.
        let fresh_cap = (2 * (window + 1)) as u64;
        assert!(
            stats.fresh <= fresh_cap,
            "fresh {} exceeds warm-up bound {fresh_cap}",
            stats.fresh
        );
        assert!(
            stats.recycled >= 2 * 100 - fresh_cap,
            "recycled only {} of ~200 buffer uses",
            stats.recycled
        );
        w.finish().unwrap();

        // Inline serial path: one fresh packed buffer total.
        let mut w = ParallelCodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024, 1);
        w.write_all(&data).unwrap();
        let stats = w.scratch_stats();
        assert_eq!(stats.fresh, 1, "serial path allocates one packed scratch");
        assert_eq!(stats.recycled, 99);
        w.finish().unwrap();
    }
}
