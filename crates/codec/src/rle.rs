//! Zero run-length encoding over the MTF output (bzip2's RUNA/RUNB scheme).
//!
//! After MTF the stream is dominated by zeros. Runs of zeros are re-encoded
//! in *bijective base 2* using two dedicated symbols `RUNA` (digit value 1)
//! and `RUNB` (digit value 2): a run of length `n = Σ dᵢ·2ⁱ` becomes the
//! digit string `d₀ d₁ …`. Nonzero MTF bytes `v` are shifted to `v + 1` and
//! a terminal `EOB` symbol closes the stream, exactly mirroring bzip2's
//! symbol mapping.
//!
//! The output alphabet is `usize` symbols in `0..=EOB`.
//!
//! # Examples
//!
//! ```
//! use atc_codec::rle::{rle_decode, rle_encode, EOB, RUNA, RUNB};
//!
//! let enc = rle_encode(&[0, 0, 0, 5]);
//! assert_eq!(enc, vec![RUNA, RUNA, 5 + 1, EOB]);
//! assert_eq!(rle_decode(&enc).unwrap(), vec![0, 0, 0, 5]);
//! ```

/// Run digit of value 1.
pub const RUNA: usize = 0;
/// Run digit of value 2.
pub const RUNB: usize = 1;
/// End-of-block marker; also the largest symbol value.
pub const EOB: usize = 257;
/// Size of the RLE output alphabet (`EOB + 1`).
pub const ALPHABET: usize = EOB + 1;

/// Errors produced while decoding an RLE symbol stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RleError {
    /// A symbol outside `0..=EOB` was encountered.
    InvalidSymbol(usize),
    /// The stream ended without an `EOB` symbol.
    MissingEob,
    /// Symbols follow the `EOB` marker.
    TrailingData,
}

impl std::fmt::Display for RleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RleError::InvalidSymbol(s) => write!(f, "invalid RLE symbol {s}"),
            RleError::MissingEob => write!(f, "RLE stream missing end-of-block marker"),
            RleError::TrailingData => write!(f, "data after RLE end-of-block marker"),
        }
    }
}

impl std::error::Error for RleError {}

/// Pushes the bijective-base-2 digits of a zero-run of length `n`.
fn push_run(out: &mut Vec<usize>, mut n: u64) {
    debug_assert!(n > 0);
    while n > 0 {
        if (n - 1).is_multiple_of(2) {
            out.push(RUNA);
            n = (n - 1) / 2;
        } else {
            out.push(RUNB);
            n = (n - 2) / 2;
        }
    }
}

/// Encodes MTF output into the RUNA/RUNB symbol alphabet, appending `EOB`.
pub fn rle_encode(mtf: &[u8]) -> Vec<usize> {
    let mut out = Vec::new();
    rle_encode_into(mtf, &mut out);
    out
}

/// Length of the zero prefix of `data`, scanning a 64-bit word at a
/// time: post-MTF input is mostly zero runs, so the common step is one
/// `u64 == 0` compare per eight bytes, and `trailing_zeros` pinpoints
/// the run's end inside the final word.
#[inline]
fn zero_prefix_len(data: &[u8]) -> usize {
    let (words, tail) = data.as_chunks::<8>();
    for (i, w) in words.iter().enumerate() {
        let x = u64::from_le_bytes(*w);
        if x != 0 {
            return i * 8 + (x.trailing_zeros() / 8) as usize;
        }
    }
    words.len() * 8 + tail.iter().take_while(|&&b| b == 0).count()
}

/// [`rle_encode`] appending into a reused, cleared output buffer.
pub fn rle_encode_into(mtf: &[u8], out: &mut Vec<usize>) {
    out.clear();
    out.reserve(mtf.len() / 2 + 16);
    let mut rest = mtf;
    while !rest.is_empty() {
        let zeros = zero_prefix_len(rest);
        if zeros > 0 {
            push_run(out, zeros as u64);
            rest = &rest[zeros..];
            continue;
        }
        // Copy literals up to the next zero byte; each is just shifted
        // by one, so this inner loop is a plain map.
        let lits = rest.iter().take_while(|&&b| b != 0).count();
        out.extend(rest[..lits].iter().map(|&b| b as usize + 1));
        rest = &rest[lits..];
    }
    out.push(EOB);
}

/// Decodes a RUNA/RUNB symbol stream back to MTF bytes.
///
/// # Errors
///
/// Returns [`RleError`] if the stream contains invalid symbols, lacks the
/// `EOB` marker, or has symbols after it.
pub fn rle_decode(symbols: &[usize]) -> Result<Vec<u8>, RleError> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    let mut run: u64 = 0;
    // Place value of the next run digit.
    let mut place: u64 = 1;
    let mut in_run = false;
    let mut iter = symbols.iter().copied();
    let mut finished = false;
    for s in iter.by_ref() {
        match s {
            RUNA | RUNB => {
                let digit = if s == RUNA { 1 } else { 2 };
                run += digit * place;
                place *= 2;
                in_run = true;
            }
            _ => {
                if in_run {
                    out.resize(out.len() + run as usize, 0);
                    run = 0;
                    place = 1;
                    in_run = false;
                }
                if s == EOB {
                    finished = true;
                    break;
                }
                if s > EOB {
                    return Err(RleError::InvalidSymbol(s));
                }
                out.push((s - 1) as u8);
            }
        }
    }
    if !finished {
        return Err(RleError::MissingEob);
    }
    if iter.next().is_some() {
        return Err(RleError::TrailingData);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Byte-at-a-time reference encoder the word-scanning loop must match.
    fn rle_encode_scalar(mtf: &[u8]) -> Vec<usize> {
        let mut out = Vec::new();
        let mut zero_run: u64 = 0;
        for &b in mtf {
            if b == 0 {
                zero_run += 1;
            } else {
                if zero_run > 0 {
                    push_run(&mut out, zero_run);
                    zero_run = 0;
                }
                out.push(b as usize + 1);
            }
        }
        if zero_run > 0 {
            push_run(&mut out, zero_run);
        }
        out.push(EOB);
        out
    }

    #[test]
    fn word_scan_matches_scalar_at_awkward_lengths() {
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            // All-zero, all-nonzero, and alternating at each length.
            let zeros = vec![0u8; n];
            let ones = vec![1u8; n];
            let alt: Vec<u8> = (0..n).map(|i| (i % 2) as u8).collect();
            for data in [&zeros, &ones, &alt] {
                assert_eq!(rle_encode(data), rle_encode_scalar(data), "n={n}");
            }
        }
    }

    proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 64 }))]
        /// Differential: the word-scanning encoder emits the identical
        /// symbol stream on arbitrary (zero-heavy) inputs.
        #[test]
        fn word_scan_matches_scalar(seed in proptest::collection::vec(any::<u8>(), 0..2048)) {
            // Bias toward zeros: post-MTF streams are mostly zero runs.
            let data: Vec<u8> = seed.iter().map(|&b| if b & 0x03 != 0 { 0 } else { b }).collect();
            let enc = rle_encode(&data);
            prop_assert_eq!(&enc, &rle_encode_scalar(&data));
            prop_assert_eq!(rle_decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn empty_stream() {
        let enc = rle_encode(&[]);
        assert_eq!(enc, vec![EOB]);
        assert_eq!(rle_decode(&enc).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn run_lengths_small() {
        // n=1 -> RUNA ; n=2 -> RUNB ; n=3 -> RUNA RUNA ; n=4 -> RUNB RUNA
        let cases: &[(u64, &[usize])] = &[
            (1, &[RUNA]),
            (2, &[RUNB]),
            (3, &[RUNA, RUNA]),
            (4, &[RUNB, RUNA]),
            (5, &[RUNA, RUNB]),
            (6, &[RUNB, RUNB]),
            (7, &[RUNA, RUNA, RUNA]),
        ];
        for &(n, expect) in cases {
            let zeros = vec![0u8; n as usize];
            let enc = rle_encode(&zeros);
            assert_eq!(&enc[..enc.len() - 1], expect, "run length {n}");
            assert_eq!(rle_decode(&enc).unwrap(), zeros);
        }
    }

    #[test]
    fn long_run_roundtrip() {
        for n in [100usize, 1000, 65535, 1 << 20] {
            let zeros = vec![0u8; n];
            assert_eq!(rle_decode(&rle_encode(&zeros)).unwrap(), zeros);
        }
    }

    #[test]
    fn mixed_roundtrip() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| if i % 7 < 5 { 0 } else { (i % 255) as u8 })
            .collect();
        assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn byte_255_roundtrip() {
        // The +1 shift must not overflow the alphabet: 255 -> 256 < EOB.
        let data = vec![255u8, 0, 255];
        let enc = rle_encode(&data);
        assert!(enc.iter().all(|&s| s <= EOB));
        assert_eq!(rle_decode(&enc).unwrap(), data);
    }

    #[test]
    fn errors() {
        assert_eq!(rle_decode(&[5]), Err(RleError::MissingEob));
        assert_eq!(rle_decode(&[EOB, 5]), Err(RleError::TrailingData));
        assert_eq!(
            rle_decode(&[EOB + 1]),
            Err(RleError::InvalidSymbol(EOB + 1))
        );
    }
}
