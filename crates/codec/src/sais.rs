//! Linear-time suffix array construction (SA-IS).
//!
//! This powers the Burrows–Wheeler transform in [`crate::bwt`]. The
//! algorithm is the induced-sorting construction of Nong, Zhang and Chan
//! (2009): classify suffixes as L/S, sort the LMS substrings by induced
//! sorting, recurse on the reduced string if names collide, then induce the
//! full order from the sorted LMS suffixes. Time and space are linear in the
//! input length, which keeps the bzip-class codec fast even on adversarial
//! (highly repetitive) blocks where comparison sorts of rotations degrade.
//!
//! # Examples
//!
//! ```
//! let sa = atc_codec::sais::suffix_array(b"banana");
//! // Suffixes in order: a, ana, anana, banana, na, nana
//! assert_eq!(sa, vec![5, 3, 1, 0, 4, 2]);
//! ```

const EMPTY: u32 = u32::MAX;

/// Reusable buffers for [`suffix_array_in`].
///
/// The top-level widened text and suffix-array buffers dominate SA-IS
/// allocation cost (8 bytes per input byte each), and the recursion used
/// to allocate a fresh set of working vectors (`is_s`, `bucket`, `names`,
/// `lms_pos`, `s1`, …) at *every* level. The scratch now carries a
/// level-indexed arena: each recursion depth owns one set of working
/// buffers that are cleared and reused across calls, so a warmed scratch
/// constructs suffix arrays with **zero** allocations (pinned by the
/// `sais_alloc` integration test).
#[derive(Debug, Default)]
pub struct SaisScratch {
    /// Widened input with the explicit sentinel appended.
    s: Vec<u32>,
    /// Suffix-array output buffer (including the sentinel row).
    sa: Vec<u32>,
    /// Per-recursion-depth working buffers (level 0 = top level).
    levels: Vec<SaisLevel>,
}

impl SaisScratch {
    /// Creates empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap capacity currently held across all levels, in bytes
    /// (diagnostics only).
    pub fn capacity(&self) -> usize {
        let top = (self.s.capacity() + self.sa.capacity()) * 4;
        top + self.levels.iter().map(SaisLevel::capacity).sum::<usize>()
    }
}

/// One recursion level's working buffers (see [`SaisScratch`]).
#[derive(Debug, Default)]
struct SaisLevel {
    /// S-type classification per suffix.
    is_s: Vec<bool>,
    /// Bucket sizes per character.
    bucket: Vec<u32>,
    /// Bucket start offsets (rebuilt by each induction pass).
    heads: Vec<u32>,
    /// Bucket end offsets (rebuilt by each induction pass).
    tails: Vec<u32>,
    /// LMS-substring names by text position.
    names: Vec<u32>,
    /// LMS positions in text order.
    lms_pos: Vec<u32>,
    /// The reduced string (names in text order).
    s1: Vec<u32>,
    /// LMS positions in current sorted order.
    lms_sorted: Vec<u32>,
    /// Final order of LMS suffixes.
    order: Vec<u32>,
    /// Recursion output: suffix array of `s1`.
    sa1: Vec<u32>,
}

impl SaisLevel {
    fn capacity(&self) -> usize {
        self.is_s.capacity()
            + (self.bucket.capacity()
                + self.heads.capacity()
                + self.tails.capacity()
                + self.names.capacity()
                + self.lms_pos.capacity()
                + self.s1.capacity()
                + self.lms_sorted.capacity()
                + self.order.capacity()
                + self.sa1.capacity())
                * 4
    }
}

/// Builds the suffix array of `text`.
///
/// Suffixes are compared with the usual convention that a proper prefix
/// sorts before any suffix extending it (equivalently, the text ends with a
/// virtual sentinel smaller than every byte).
///
/// # Panics
///
/// Panics if `text.len() >= u32::MAX as usize`.
pub fn suffix_array(text: &[u8]) -> Vec<u32> {
    let mut scratch = SaisScratch::new();
    suffix_array_in(text, &mut scratch).to_vec()
}

/// Builds the suffix array of `text` into reusable `scratch` buffers.
///
/// Same result as [`suffix_array`]; the returned slice borrows from
/// `scratch` and is valid until its next use.
///
/// # Panics
///
/// Panics if `text.len() >= u32::MAX as usize`.
pub fn suffix_array_in<'a>(text: &[u8], scratch: &'a mut SaisScratch) -> &'a [u32] {
    assert!(
        text.len() < u32::MAX as usize,
        "input too large for 32-bit suffix array"
    );
    if text.is_empty() {
        return &[];
    }
    // Shift bytes by +1 so value 0 is free for the explicit sentinel.
    scratch.s.clear();
    scratch.s.reserve(text.len() + 1);
    scratch.s.extend(text.iter().map(|&b| b as u32 + 1));
    scratch.s.push(0);
    sais_into(&scratch.s, 257, &mut scratch.sa, &mut scratch.levels, 0);
    // Drop the sentinel suffix (always first).
    debug_assert_eq!(scratch.sa[0] as usize, text.len());
    &scratch.sa[1..]
}

/// SA-IS over a u32 string `s` that ends with a unique smallest sentinel
/// 0, writing into a caller-provided (reused) output buffer. `k` is the
/// alphabet size (all values < k); `levels[depth..]` is the arena of
/// per-recursion-level working buffers.
fn sais_into(s: &[u32], k: usize, sa: &mut Vec<u32>, levels: &mut Vec<SaisLevel>, depth: usize) {
    let n = s.len();
    debug_assert!(n > 0 && s[n - 1] == 0);
    debug_assert!(s[..n - 1].iter().all(|&c| c > 0 && (c as usize) < k));
    sa.clear();
    sa.resize(n, EMPTY);
    if n == 1 {
        sa[0] = 0;
        return;
    }
    if levels.len() <= depth {
        levels.push(SaisLevel::default());
    }
    // Take this level's buffers out of the arena so the recursive call
    // can borrow the deeper levels without aliasing.
    let mut lvl = std::mem::take(&mut levels[depth]);
    sais_level(s, k, sa.as_mut_slice(), &mut lvl, levels, depth);
    levels[depth] = lvl;
}

/// One SA-IS level, working entirely out of `lvl`'s reused buffers.
fn sais_level(
    s: &[u32],
    k: usize,
    sa: &mut [u32],
    lvl: &mut SaisLevel,
    levels: &mut Vec<SaisLevel>,
    depth: usize,
) {
    let n = s.len();
    let SaisLevel {
        is_s,
        bucket,
        heads,
        tails,
        names,
        lms_pos,
        s1,
        lms_sorted,
        order,
        sa1,
    } = lvl;

    // --- Classify suffixes: S-type (true) / L-type (false). ---
    is_s.clear();
    is_s.resize(n, false);
    is_s[n - 1] = true;
    for i in (0..n - 1).rev() {
        is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
    }
    let is_lms = |is_s: &[bool], i: usize| i > 0 && is_s[i] && !is_s[i - 1];

    // --- Bucket sizes per character. ---
    bucket.clear();
    bucket.resize(k, 0);
    for &c in s {
        bucket[c as usize] += 1;
    }

    // --- Pass 1: sort LMS substrings by induced sorting. ---
    place_lms_in_tails(s, sa, bucket, tails, is_s);
    induce(s, sa, bucket, heads, tails, is_s);

    // Compact the LMS suffixes in their current (LMS-substring-sorted) order.
    let n_lms = (1..n).filter(|&i| is_lms(is_s, i)).count();
    lms_sorted.clear();
    lms_sorted.reserve(n_lms);
    for &p in sa.iter() {
        if p != EMPTY && is_lms(is_s, p as usize) {
            lms_sorted.push(p);
        }
    }
    debug_assert_eq!(lms_sorted.len(), n_lms);

    // --- Name LMS substrings. ---
    // names[i] = name of the LMS substring starting at text position i.
    names.clear();
    names.resize(n, EMPTY);
    let mut name: u32 = 0;
    let mut prev: Option<u32> = None;
    for &p in lms_sorted.iter() {
        if let Some(q) = prev {
            if !lms_substring_eq(s, is_s, q as usize, p as usize) {
                name += 1;
            }
        }
        names[p as usize] = name;
        prev = Some(p);
    }
    let distinct = name as usize + 1;

    // Reduced string: names of LMS substrings in text order.
    lms_pos.clear();
    lms_pos.extend((1..n).filter(|&i| is_lms(is_s, i)).map(|i| i as u32));
    s1.clear();
    s1.extend(lms_pos.iter().map(|&p| names[p as usize]));

    // --- Order of LMS suffixes. ---
    order.clear();
    if distinct == n_lms {
        // All names unique: order is derivable by bucketing names.
        order.resize(n_lms, EMPTY);
        for (i, &nm) in s1.iter().enumerate() {
            order[nm as usize] = lms_pos[i];
        }
    } else {
        // Recurse into the next arena level. s1 ends with the sentinel's
        // name (always the unique minimum: its LMS substring is just "0").
        // atclint: allow(library-unwrap) -- infallible: s1 holds one name
        // per LMS position and the sentinel is always LMS, so it is
        // non-empty on this branch.
        debug_assert_eq!(*s1.last().expect("non-empty"), 0);
        sais_into(&s1[..], distinct, sa1, levels, depth + 1);
        order.extend(sa1.iter().map(|&r| lms_pos[r as usize]));
    }

    // --- Pass 2: induce the final order from sorted LMS suffixes. ---
    sa.fill(EMPTY);
    fill_bucket_tails(bucket, tails);
    for &p in order.iter().rev() {
        let c = s[p as usize] as usize;
        tails[c] -= 1;
        sa[tails[c] as usize] = p;
    }
    induce(s, sa, bucket, heads, tails, is_s);
    debug_assert!(sa.iter().all(|&p| p != EMPTY));
}

/// Fills `tails` with the exclusive end offset of each character bucket.
fn fill_bucket_tails(bucket: &[u32], tails: &mut Vec<u32>) {
    tails.clear();
    tails.resize(bucket.len(), 0);
    let mut sum = 0u32;
    for (c, &b) in bucket.iter().enumerate() {
        sum += b;
        tails[c] = sum;
    }
}

/// Fills `heads` with the start offset of each character bucket.
fn fill_bucket_heads(bucket: &[u32], heads: &mut Vec<u32>) {
    heads.clear();
    heads.resize(bucket.len(), 0);
    let mut sum = 0u32;
    for (c, &b) in bucket.iter().enumerate() {
        heads[c] = sum;
        sum += b;
    }
}

/// Drops every LMS suffix at the tail of its first-character bucket.
fn place_lms_in_tails(
    s: &[u32],
    sa: &mut [u32],
    bucket: &[u32],
    tails: &mut Vec<u32>,
    is_s: &[bool],
) {
    let n = s.len();
    fill_bucket_tails(bucket, tails);
    for i in (1..n).rev() {
        if is_s[i] && !is_s[i - 1] {
            let c = s[i] as usize;
            tails[c] -= 1;
            sa[tails[c] as usize] = i as u32;
        }
    }
}

/// Induced sorting: scan left-to-right placing L-type predecessors at bucket
/// heads, then right-to-left placing S-type predecessors at bucket tails.
fn induce(
    s: &[u32],
    sa: &mut [u32],
    bucket: &[u32],
    heads: &mut Vec<u32>,
    tails: &mut Vec<u32>,
    is_s: &[bool],
) {
    let n = s.len();
    fill_bucket_heads(bucket, heads);
    for i in 0..n {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if !is_s[p] {
                let c = s[p] as usize;
                sa[heads[c] as usize] = p as u32;
                heads[c] += 1;
            }
        }
    }
    fill_bucket_tails(bucket, tails);
    for i in (0..n).rev() {
        let j = sa[i];
        if j != EMPTY && j > 0 {
            let p = (j - 1) as usize;
            if is_s[p] {
                let c = s[p] as usize;
                tails[c] -= 1;
                sa[tails[c] as usize] = p as u32;
            }
        }
    }
}

/// Compares the LMS substrings starting at `a` and `b` for exact equality
/// (same characters and same L/S types up to and including the next LMS
/// position).
fn lms_substring_eq(s: &[u32], is_s: &[bool], a: usize, b: usize) -> bool {
    let n = s.len();
    if a == b {
        return true;
    }
    // The sentinel LMS substring is unique.
    if a == n - 1 || b == n - 1 {
        return false;
    }
    let is_lms = |i: usize| i > 0 && is_s[i] && !is_s[i - 1];
    let mut d = 0usize;
    loop {
        let pa = a + d;
        let pb = b + d;
        if pa >= n || pb >= n {
            return false;
        }
        if s[pa] != s[pb] || is_s[pa] != is_s[pb] {
            return false;
        }
        if d > 0 && (is_lms(pa) || is_lms(pb)) {
            return is_lms(pa) && is_lms(pb);
        }
        d += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// O(n^2 log n) reference: sort suffixes directly.
    fn naive_sa(text: &[u8]) -> Vec<u32> {
        let mut idx: Vec<u32> = (0..text.len() as u32).collect();
        idx.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        idx
    }

    fn check(text: &[u8]) {
        assert_eq!(suffix_array(text), naive_sa(text), "text={text:?}");
    }

    #[test]
    fn empty_and_tiny() {
        check(b"");
        check(b"a");
        check(b"ab");
        check(b"ba");
        check(b"aa");
    }

    #[test]
    fn classic_examples() {
        check(b"banana");
        check(b"mississippi");
        check(b"abracadabra");
        check(b"GATTACA");
    }

    #[test]
    fn repetitive() {
        check(&b"ab".repeat(100));
        check(&b"a".repeat(257));
        check(&b"abcabcabcabd".repeat(20));
        check(&[0u8; 64]);
        check(&[255u8; 64]);
    }

    #[test]
    fn all_byte_values() {
        let text: Vec<u8> = (0..=255u8).rev().collect();
        check(&text);
    }

    #[test]
    fn pseudorandom_matches_naive() {
        let mut x: u64 = 0x12345;
        let mut text = Vec::with_capacity(2000);
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push((x >> 33) as u8);
        }
        check(&text);
        // Small alphabet: forces deep recursion.
        let text2: Vec<u8> = text.iter().map(|&b| b % 3).collect();
        check(&text2);
    }
}
