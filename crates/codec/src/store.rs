//! Identity codec: stores bytes unmodified.
//!
//! Useful as a control in compression-ratio experiments (it measures the
//! framing overhead alone) and for debugging container formats without an
//! entropy stage in the way.
//!
//! # Examples
//!
//! ```
//! use atc_codec::{Codec, Store};
//!
//! let codec = Store;
//! let packed = codec.compress(b"abc");
//! assert_eq!(codec.decompress(&packed).unwrap(), b"abc");
//! ```

use crate::error::CodecError;
use crate::Codec;

/// The identity codec.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Store;

impl Codec for Store {
    fn name(&self) -> &'static str {
        "store"
    }

    fn compress(&self, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn decompress(&self, data: &[u8]) -> Result<Vec<u8>, CodecError> {
        Ok(data.to_vec())
    }

    fn compress_into(&self, data: &[u8], out: &mut Vec<u8>) -> usize {
        out.clear();
        out.extend_from_slice(data);
        data.len()
    }

    fn decompress_into(&self, data: &[u8], out: &mut Vec<u8>) -> Result<usize, CodecError> {
        out.clear();
        out.extend_from_slice(data);
        Ok(data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        let c = Store;
        assert_eq!(c.compress(b"xyz"), b"xyz");
        assert_eq!(c.decompress(b"xyz").unwrap(), b"xyz");
        assert!(c.compress(b"").is_empty());
    }

    #[test]
    fn into_identity_clears_scratch() {
        let c = Store;
        let mut out = vec![1u8; 32];
        assert_eq!(c.compress_into(b"xyz", &mut out), 3);
        assert_eq!(out, b"xyz");
        assert_eq!(c.decompress_into(b"ab", &mut out).unwrap(), 2);
        assert_eq!(out, b"ab");
        assert_eq!(c.compress_into(b"", &mut out), 0);
        assert!(out.is_empty());
    }
}
