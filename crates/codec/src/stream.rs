//! Streaming adapters: write through a codec, read back transparently.
//!
//! The ATC compressor streams addresses one at a time, so it needs
//! `std::io::Write`/`Read` front ends over the block codecs. A
//! [`CodecWriter`] buffers raw bytes up to a segment size, compresses each
//! segment, and frames it as `varint(compressed_len) ++ compressed bytes`; a
//! zero-length varint terminates the stream, allowing multiple logical
//! streams to share one file. [`CodecReader`] mirrors this.
//!
//! Adapters hold the codec behind an [`Arc`], so long-lived containers (the
//! ATC directory writer, the TCgen baseline) can share one codec across
//! many concurrent streams without lifetime gymnastics.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use atc_codec::{Bzip, Codec, CodecReader, CodecWriter};
//!
//! let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
//! let mut w = CodecWriter::new(Vec::new(), Arc::clone(&codec));
//! w.write_all(b"stream me")?;
//! let file = w.finish()?;
//!
//! let mut r = CodecReader::new(&file[..], codec);
//! let mut back = String::new();
//! r.read_to_string(&mut back)?;
//! assert_eq!(back, "stream me");
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};
use std::sync::Arc;

use crate::error::CodecError;
use crate::varint;
use crate::Codec;

/// Default raw-bytes-per-segment for streaming adapters.
pub const DEFAULT_SEGMENT_SIZE: usize = 1 << 20;

/// A `Write` adapter that compresses through a [`Codec`].
///
/// Call [`CodecWriter::finish`] to write the end-of-stream marker and
/// recover the inner writer; dropping without `finish` leaves the stream
/// unterminated (readers will report truncation).
#[derive(Debug)]
pub struct CodecWriter<W: Write> {
    inner: W,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    segment_size: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
}

impl<W: Write> CodecWriter<W> {
    /// Creates a writer with the default segment size.
    pub fn new(inner: W, codec: Arc<dyn Codec>) -> Self {
        Self::with_segment_size(inner, codec, DEFAULT_SEGMENT_SIZE)
    }

    /// Creates a writer that compresses every `segment_size` raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_segment_size(inner: W, codec: Arc<dyn Codec>, segment_size: usize) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        Self {
            inner,
            codec,
            buf: Vec::with_capacity(segment_size.min(1 << 22)),
            segment_size,
            raw_bytes: 0,
            compressed_bytes: 0,
        }
    }

    /// Raw bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed bytes emitted so far (excluding data still buffered).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let packed = self.codec.compress(&self.buf);
        let mut header = Vec::with_capacity(10);
        varint::write_u64(&mut header, packed.len() as u64)?;
        self.inner.write_all(&header)?;
        self.inner.write_all(&packed)?;
        self.compressed_bytes += (header.len() + packed.len()) as u64;
        self.buf.clear();
        Ok(())
    }

    /// Flushes the final segment, writes the end-of-stream marker, and
    /// returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_segment()?;
        let mut eos = Vec::with_capacity(1);
        varint::write_u64(&mut eos, 0)?;
        self.inner.write_all(&eos)?;
        self.compressed_bytes += eos.len() as u64;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for CodecWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.segment_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.segment_size {
                self.flush_segment()?;
            }
        }
        self.raw_bytes += data.len() as u64;
        Ok(data.len())
    }

    /// Flushes the inner writer only. Buffered raw bytes are *not* forced
    /// into a short segment (that would hurt the compression ratio); they
    /// are emitted by [`CodecWriter::finish`].
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that decompresses a [`CodecWriter`] stream.
#[derive(Debug)]
pub struct CodecReader<R: Read> {
    inner: R,
    codec: Arc<dyn Codec>,
    current: Vec<u8>,
    pos: usize,
    finished: bool,
}

impl<R: Read> CodecReader<R> {
    /// Creates a reader over a terminated codec stream.
    pub fn new(inner: R, codec: Arc<dyn Codec>) -> Self {
        Self {
            inner,
            codec,
            current: Vec::new(),
            pos: 0,
            finished: false,
        }
    }

    /// Consumes the adapter and returns the inner reader, positioned just
    /// after the end-of-stream marker if the stream was fully read.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn refill(&mut self) -> io::Result<bool> {
        if self.finished {
            return Ok(false);
        }
        let seg_len = varint::read_u64(&mut self.inner)? as usize;
        if seg_len == 0 {
            self.finished = true;
            return Ok(false);
        }
        let mut packed = vec![0u8; seg_len];
        self.inner.read_exact(&mut packed)?;
        self.current = self.codec.decompress(&packed).map_err(io::Error::from)?;
        self.pos = 0;
        if self.current.is_empty() {
            // A zero-raw-byte segment is never written; treat as corrupt.
            return Err(io::Error::from(CodecError::Corrupt("empty segment".into())));
        }
        Ok(true)
    }
}

impl<R: Read> Read for CodecReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = (self.current.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bzip, Lz, Store};

    fn roundtrip(codec: Arc<dyn Codec>, data: &[u8], segment: usize) {
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        w.write_all(data).unwrap();
        let file = w.finish().unwrap();
        let mut r = CodecReader::new(&file[..], codec);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_stream() {
        let codecs: [Arc<dyn Codec>; 3] = [
            Arc::new(Store),
            Arc::new(Bzip::default()),
            Arc::new(Lz::default()),
        ];
        for codec in codecs {
            roundtrip(codec, b"", 4096);
        }
    }

    #[test]
    fn cross_codec_matrix() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
        let codecs: [Arc<dyn Codec>; 3] = [
            Arc::new(Store),
            Arc::new(Bzip::with_block_size(4096)),
            Arc::new(Lz::default()),
        ];
        for codec in codecs {
            for segment in [1usize, 100, 4096, 100_000] {
                roundtrip(Arc::clone(&codec), &data, segment);
            }
        }
    }

    #[test]
    fn unterminated_stream_errors() {
        let mut file = Vec::new();
        varint::write_u64(&mut file, 4).unwrap();
        file.extend_from_slice(b"da"); // segment promises 4, delivers 2
        let mut r = CodecReader::new(&file[..], Arc::new(Store) as Arc<dyn Codec>);
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
    }

    #[test]
    fn trailing_bytes_preserved_for_inner() {
        // Two logical streams back to back in one file.
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::new(Vec::new(), Arc::clone(&codec));
        w.write_all(b"first").unwrap();
        let mut file = w.finish().unwrap();
        let mut w2 = CodecWriter::new(Vec::new(), Arc::clone(&codec));
        w2.write_all(b"second").unwrap();
        file.extend_from_slice(&w2.finish().unwrap());

        let mut r = CodecReader::new(&file[..], Arc::clone(&codec));
        let mut a = Vec::new();
        r.read_to_end(&mut a).unwrap();
        assert_eq!(a, b"first");
        let mut rest = r.into_inner();
        let mut r2 = CodecReader::new(&mut rest, codec);
        let mut b = Vec::new();
        r2.read_to_end(&mut b).unwrap();
        assert_eq!(b, b"second");
    }

    #[test]
    fn byte_counters() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::new(Vec::new(), codec);
        w.write_all(&[7u8; 100]).unwrap();
        assert_eq!(w.raw_bytes(), 100);
        let compressed = w.finish().unwrap().len() as u64;
        assert!(compressed >= 100); // store codec + framing
    }
}
