//! Streaming adapters: write through a codec, read back transparently.
//!
//! The ATC compressor streams addresses one at a time, so it needs
//! `std::io::Write`/`Read` front ends over the block codecs. A
//! [`CodecWriter`] buffers raw bytes up to a segment size, compresses each
//! segment, and frames it as `varint(compressed_len) ++ compressed bytes`; a
//! zero-length varint terminates the stream, allowing multiple logical
//! streams to share one file. [`CodecReader`] mirrors this.
//!
//! Adapters hold the codec behind an [`Arc`], so long-lived containers (the
//! ATC directory writer, the TCgen baseline) can share one codec across
//! many concurrent streams without lifetime gymnastics.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use std::io::{Read, Write};
//! use std::sync::Arc;
//! use atc_codec::{Bzip, Codec, CodecReader, CodecWriter};
//!
//! let codec: Arc<dyn Codec> = Arc::new(Bzip::default());
//! let mut w = CodecWriter::new(Vec::new(), Arc::clone(&codec));
//! w.write_all(b"stream me")?;
//! let file = w.finish()?;
//!
//! let mut r = CodecReader::new(&file[..], codec);
//! let mut back = String::new();
//! r.read_to_string(&mut back)?;
//! assert_eq!(back, "stream me");
//! # Ok(())
//! # }
//! ```

use std::io::{self, BufRead, Read, Write};
use std::sync::Arc;

use crate::error::CodecError;
use crate::varint;
use crate::Codec;

/// Default raw-bytes-per-segment for streaming adapters.
pub const DEFAULT_SEGMENT_SIZE: usize = 1 << 20;

/// Where one sealed segment landed in the compressed stream: the byte
/// offset of its `varint(compressed_len)` header, the framed length
/// (header + payload), and how many raw bytes it decodes to.
///
/// The stream writers record one of these per sealed segment — for free,
/// since both values are already on hand when the segment is framed — and
/// hand the list back from [`CodecWriter::finish_with_segments`] /
/// [`ParallelCodecWriter::finish_with_segments`]. Containers persist it as
/// a seek sidecar so readers can jump to any segment without decoding the
/// prefix.
///
/// [`ParallelCodecWriter::finish_with_segments`]:
///     crate::ParallelCodecWriter::finish_with_segments
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRecord {
    /// Byte offset of the segment's varint header in the codec stream.
    pub file_offset: u64,
    /// Framed length on disk: varint header plus compressed payload.
    pub compressed_len: u64,
    /// Raw (decoded) length of the segment.
    pub raw_len: u64,
}

/// Reusable buffers for one codec stream: the raw segment accumulator and
/// the compressed-segment scratch.
///
/// A [`CodecWriter`] owns one of these internally; workloads that open
/// many short streams back to back (the lossy container writes one stream
/// per chunk file) can thread a `StreamScratch` through
/// [`CodecWriter::with_scratch`] / [`CodecWriter::finish_with_scratch`] so
/// every stream after the first reuses the same two allocations.
#[derive(Debug, Default)]
pub struct StreamScratch {
    buf: Vec<u8>,
    packed: Vec<u8>,
}

impl StreamScratch {
    /// Heap capacity currently held, in bytes (diagnostics only).
    pub fn capacity(&self) -> usize {
        self.buf.capacity() + self.packed.capacity()
    }
}

/// A `Write` adapter that compresses through a [`Codec`].
///
/// Segments are compressed with [`Codec::compress_into`] into a scratch
/// buffer owned by the writer, so the steady-state write path performs no
/// per-segment allocation.
///
/// Call [`CodecWriter::finish`] to write the end-of-stream marker and
/// recover the inner writer; dropping without `finish` leaves the stream
/// unterminated (readers will report truncation).
#[derive(Debug)]
pub struct CodecWriter<W: Write> {
    inner: W,
    codec: Arc<dyn Codec>,
    buf: Vec<u8>,
    packed: Vec<u8>,
    segment_size: usize,
    raw_bytes: u64,
    compressed_bytes: u64,
    segments: Vec<SegmentRecord>,
}

impl<W: Write> CodecWriter<W> {
    /// Creates a writer with the default segment size.
    pub fn new(inner: W, codec: Arc<dyn Codec>) -> Self {
        Self::with_segment_size(inner, codec, DEFAULT_SEGMENT_SIZE)
    }

    /// Creates a writer that compresses every `segment_size` raw bytes.
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_segment_size(inner: W, codec: Arc<dyn Codec>, segment_size: usize) -> Self {
        Self::with_scratch(inner, codec, segment_size, StreamScratch::default())
    }

    /// Creates a writer that reuses `scratch` from an earlier stream
    /// (see [`StreamScratch`]).
    ///
    /// # Panics
    ///
    /// Panics if `segment_size` is zero.
    pub fn with_scratch(
        inner: W,
        codec: Arc<dyn Codec>,
        segment_size: usize,
        scratch: StreamScratch,
    ) -> Self {
        assert!(segment_size > 0, "segment size must be positive");
        let StreamScratch { mut buf, packed } = scratch;
        buf.clear();
        if buf.capacity() == 0 {
            buf.reserve(segment_size.min(1 << 22));
        }
        Self {
            inner,
            codec,
            buf,
            packed,
            segment_size,
            raw_bytes: 0,
            compressed_bytes: 0,
            segments: Vec::new(),
        }
    }

    /// Raw bytes accepted so far.
    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    /// Compressed bytes emitted so far (excluding data still buffered).
    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    fn flush_segment(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let file_offset = self.compressed_bytes;
        let raw_len = self.buf.len() as u64;
        let n = self.codec.compress_into(&self.buf, &mut self.packed);
        self.buf.clear();
        // Fixed-size stack header: a u64 varint never exceeds 10 bytes.
        let mut header = [0u8; 10];
        let mut cursor = &mut header[..];
        varint::write_u64(&mut cursor, n as u64)?;
        let header_len = 10 - cursor.len();
        self.inner.write_all(&header[..header_len])?;
        self.inner.write_all(&self.packed[..n])?;
        self.compressed_bytes += (header_len + n) as u64;
        self.segments.push(SegmentRecord {
            file_offset,
            compressed_len: (header_len + n) as u64,
            raw_len,
        });
        Ok(())
    }

    /// Flushes the final segment, writes the end-of-stream marker, and
    /// returns the inner writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer.
    pub fn finish(self) -> io::Result<W> {
        self.finish_parts().map(|(inner, _, _)| inner)
    }

    /// Like [`CodecWriter::finish`], but also hands back the stream's
    /// scratch buffers for reuse by a later [`CodecWriter::with_scratch`].
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer.
    pub fn finish_with_scratch(self) -> io::Result<(W, StreamScratch)> {
        self.finish_parts()
            .map(|(inner, scratch, _)| (inner, scratch))
    }

    /// Like [`CodecWriter::finish`], but also hands back one
    /// [`SegmentRecord`] per sealed segment, in stream order — the raw
    /// material for a seek sidecar.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the inner writer.
    pub fn finish_with_segments(self) -> io::Result<(W, Vec<SegmentRecord>)> {
        self.finish_parts().map(|(inner, _, segs)| (inner, segs))
    }

    fn finish_parts(mut self) -> io::Result<(W, StreamScratch, Vec<SegmentRecord>)> {
        self.flush_segment()?;
        let mut eos = [0u8; 10];
        let mut cursor = &mut eos[..];
        varint::write_u64(&mut cursor, 0)?;
        let eos_len = 10 - cursor.len();
        self.inner.write_all(&eos[..eos_len])?;
        self.compressed_bytes += eos_len as u64;
        self.inner.flush()?;
        Ok((
            self.inner,
            StreamScratch {
                buf: self.buf,
                packed: self.packed,
            },
            self.segments,
        ))
    }
}

impl<W: Write> Write for CodecWriter<W> {
    fn write(&mut self, data: &[u8]) -> io::Result<usize> {
        let mut rest = data;
        while !rest.is_empty() {
            let room = self.segment_size - self.buf.len();
            let take = room.min(rest.len());
            self.buf.extend_from_slice(&rest[..take]);
            rest = &rest[take..];
            if self.buf.len() == self.segment_size {
                self.flush_segment()?;
            }
        }
        self.raw_bytes += data.len() as u64;
        Ok(data.len())
    }

    /// Flushes the inner writer only. Buffered raw bytes are *not* forced
    /// into a short segment (that would hurt the compression ratio); they
    /// are emitted by [`CodecWriter::finish`].
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that decompresses a [`CodecWriter`] stream.
///
/// The packed-segment buffer and the decompressed-segment buffer are both
/// reused across segments ([`Codec::decompress_into`]), so steady-state
/// reads perform no per-segment allocation.
///
/// Also implements [`BufRead`]: [`BufRead::fill_buf`] hands out the
/// not-yet-consumed tail of the *decoded segment buffer itself*, so
/// frame-granular consumers can parse decoded bytes in place instead of
/// paying the `Read::read` copy into their own buffer.
#[derive(Debug)]
pub struct CodecReader<R: Read> {
    inner: R,
    codec: Arc<dyn Codec>,
    packed: Vec<u8>,
    current: Vec<u8>,
    pos: usize,
    finished: bool,
    segments_decoded: u64,
}

impl<R: Read> CodecReader<R> {
    /// Creates a reader over a terminated codec stream.
    pub fn new(inner: R, codec: Arc<dyn Codec>) -> Self {
        Self {
            inner,
            codec,
            packed: Vec::new(),
            current: Vec::new(),
            pos: 0,
            finished: false,
            segments_decoded: 0,
        }
    }

    /// Consumes the adapter and returns the inner reader, positioned just
    /// after the end-of-stream marker if the stream was fully read.
    pub fn into_inner(self) -> R {
        self.inner
    }

    /// Number of segments decompressed so far — the work counter a seek
    /// implementation uses to prove it skipped the prefix instead of
    /// decoding through it.
    pub fn segments_decoded(&self) -> u64 {
        self.segments_decoded
    }

    fn refill(&mut self) -> io::Result<bool> {
        if self.finished {
            return Ok(false);
        }
        let seg_len = varint::read_u64(&mut self.inner)? as usize;
        if seg_len == 0 {
            self.finished = true;
            return Ok(false);
        }
        self.packed.clear();
        self.packed.resize(seg_len, 0);
        self.inner.read_exact(&mut self.packed)?;
        // Reset the consumer view *before* decoding: decompress_into
        // reuses `current`, so a decode error must never leave a stale
        // `pos` pointing into partial output (a retried `read` would
        // panic or hand out bytes of the corrupt segment).
        self.pos = 0;
        self.current.clear();
        if let Err(e) = self.codec.decompress_into(&self.packed, &mut self.current) {
            self.current.clear();
            return Err(io::Error::from(e));
        }
        if self.current.is_empty() {
            // A zero-raw-byte segment is never written; treat as corrupt.
            return Err(io::Error::from(CodecError::Corrupt("empty segment".into())));
        }
        self.segments_decoded += 1;
        Ok(true)
    }
}

impl<R: Read> Read for CodecReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(0);
            }
        }
        let n = (self.current.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.current[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl<R: Read> BufRead for CodecReader<R> {
    /// Returns the unconsumed tail of the current decoded segment,
    /// refilling (and decompressing the next segment) if it is exhausted.
    /// An empty slice means clean end of stream.
    fn fill_buf(&mut self) -> io::Result<&[u8]> {
        while self.pos == self.current.len() {
            if !self.refill()? {
                return Ok(&[]);
            }
        }
        Ok(&self.current[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.current.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Bzip, Lz, Store};

    fn roundtrip(codec: Arc<dyn Codec>, data: &[u8], segment: usize) {
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        w.write_all(data).unwrap();
        let file = w.finish().unwrap();
        let mut r = CodecReader::new(&file[..], codec);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn empty_stream() {
        let codecs: [Arc<dyn Codec>; 3] = [
            Arc::new(Store),
            Arc::new(Bzip::default()),
            Arc::new(Lz::default()),
        ];
        for codec in codecs {
            roundtrip(codec, b"", 4096);
        }
    }

    #[test]
    fn cross_codec_matrix() {
        let data: Vec<u8> = (0..40_000u32).map(|i| (i % 97) as u8).collect();
        let codecs: [Arc<dyn Codec>; 3] = [
            Arc::new(Store),
            Arc::new(Bzip::with_block_size(4096)),
            Arc::new(Lz::default()),
        ];
        for codec in codecs {
            for segment in [1usize, 100, 4096, 100_000] {
                roundtrip(Arc::clone(&codec), &data, segment);
            }
        }
    }

    /// Regression test: a decode error in a later segment must not leave
    /// `pos` pointing into the (reused, now shorter) segment buffer — a
    /// retried `read` used to underflow `current.len() - pos` and panic,
    /// or hand out bytes of the corrupt segment.
    #[test]
    fn read_after_decode_error_never_panics_or_leaks() {
        let codec: Arc<dyn Codec> = Arc::new(Lz::default());
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 101) as u8).collect();
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 3000);
        w.write_all(&data).unwrap();
        let mut file = w.finish().unwrap();
        // Corrupt the second segment's payload, deep enough that framing
        // still parses (CRC/structure check fails instead).
        let first_len = {
            let mut cursor = &file[..];
            let len = varint::read_u64(&mut cursor).unwrap() as usize;
            (file.len() - cursor.len()) + len
        };
        let pos = file.len() - 8;
        assert!(pos > first_len, "corruption must land in segment 2");
        file[pos] ^= 0x40;

        let mut r = CodecReader::new(&file[..], Arc::clone(&codec));
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
        // First segment was delivered intact before the error.
        assert_eq!(back, data[..3000]);
        // Retried reads must not panic; any bytes they return would be
        // corrupt-segment leakage, so only Err or clean EOF is allowed.
        let mut byte = [0u8; 1];
        for _ in 0..3 {
            assert!(matches!(r.read(&mut byte), Err(_) | Ok(0)));
        }
    }

    #[test]
    fn unterminated_stream_errors() {
        let mut file = Vec::new();
        varint::write_u64(&mut file, 4).unwrap();
        file.extend_from_slice(b"da"); // segment promises 4, delivers 2
        let mut r = CodecReader::new(&file[..], Arc::new(Store) as Arc<dyn Codec>);
        let mut back = Vec::new();
        assert!(r.read_to_end(&mut back).is_err());
    }

    #[test]
    fn trailing_bytes_preserved_for_inner() {
        // Two logical streams back to back in one file.
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::new(Vec::new(), Arc::clone(&codec));
        w.write_all(b"first").unwrap();
        let mut file = w.finish().unwrap();
        let mut w2 = CodecWriter::new(Vec::new(), Arc::clone(&codec));
        w2.write_all(b"second").unwrap();
        file.extend_from_slice(&w2.finish().unwrap());

        let mut r = CodecReader::new(&file[..], Arc::clone(&codec));
        let mut a = Vec::new();
        r.read_to_end(&mut a).unwrap();
        assert_eq!(a, b"first");
        let mut rest = r.into_inner();
        let mut r2 = CodecReader::new(&mut rest, codec);
        let mut b = Vec::new();
        r2.read_to_end(&mut b).unwrap();
        assert_eq!(b, b"second");
    }

    #[test]
    fn scratch_threads_through_streams() {
        // Two streams sharing one scratch: the second must reuse the
        // first's capacity and produce an independent, correct stream.
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let data: Vec<u8> = (0..30_000u32).map(|i| (i % 193) as u8).collect();

        let mut w = CodecWriter::with_scratch(
            Vec::new(),
            Arc::clone(&codec),
            4096,
            StreamScratch::default(),
        );
        w.write_all(&data).unwrap();
        let (file1, scratch) = w.finish_with_scratch().unwrap();
        let cap_after_first = scratch.capacity();
        assert!(cap_after_first > 0);

        let mut w = CodecWriter::with_scratch(Vec::new(), Arc::clone(&codec), 4096, scratch);
        w.write_all(&data).unwrap();
        let (file2, scratch) = w.finish_with_scratch().unwrap();
        assert_eq!(file1, file2, "scratch reuse must not change the stream");
        assert!(scratch.capacity() >= cap_after_first);

        let mut r = CodecReader::new(&file2[..], codec);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn bufread_hands_out_decoded_segments_in_place() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 4096);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();

        let mut r = CodecReader::new(&file[..], codec);
        let mut back = Vec::new();
        loop {
            let buf = r.fill_buf().unwrap();
            if buf.is_empty() {
                break; // clean EOF
            }
            // The in-place view matches the stream position exactly.
            assert_eq!(buf, &data[back.len()..back.len() + buf.len()]);
            // Consume in odd-sized bites to exercise partial consumes.
            let n = buf.len().min(1000);
            back.extend_from_slice(&buf[..n]);
            r.consume(n);
        }
        assert_eq!(back, data);
        // fill_buf after EOF stays empty; consume past the end is a no-op.
        assert!(r.fill_buf().unwrap().is_empty());
        r.consume(10_000);
    }

    #[test]
    fn segment_records_describe_the_stream_exactly() {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 199) as u8).collect();
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 4096);
        w.write_all(&data).unwrap();
        let (file, segs) = w.finish_with_segments().unwrap();

        // 10_000 bytes over 4096-byte segments: 4096 + 4096 + 1808.
        assert_eq!(
            segs.iter().map(|s| s.raw_len).collect::<Vec<_>>(),
            vec![4096, 4096, 1808]
        );
        // Records tile the file: contiguous, starting at 0, ending just
        // before the EOS marker, and each one frames a decodable segment.
        let mut off = 0u64;
        for s in &segs {
            assert_eq!(s.file_offset, off);
            let framed = &file[s.file_offset as usize..(s.file_offset + s.compressed_len) as usize];
            let mut cursor = framed;
            let payload_len = varint::read_u64(&mut cursor).unwrap() as usize;
            assert_eq!(cursor.len(), payload_len);
            let raw = codec.decompress(cursor).unwrap();
            assert_eq!(raw.len() as u64, s.raw_len);
            assert_eq!(raw, data[off_raw(&segs, s)..off_raw(&segs, s) + raw.len()]);
            off += s.compressed_len;
        }
        // Only the EOS varint (one zero byte) follows the last record.
        assert_eq!(off as usize, file.len() - 1);
        assert_eq!(file[off as usize], 0);

        fn off_raw(segs: &[SegmentRecord], target: &SegmentRecord) -> usize {
            segs.iter()
                .take_while(|s| s.file_offset < target.file_offset)
                .map(|s| s.raw_len as usize)
                .sum()
        }
    }

    #[test]
    fn reader_counts_decoded_segments() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1000);
        w.write_all(&[3u8; 2500]).unwrap();
        let file = w.finish().unwrap();
        let mut r = CodecReader::new(&file[..], codec);
        assert_eq!(r.segments_decoded(), 0);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        assert_eq!(back.len(), 2500);
        assert_eq!(r.segments_decoded(), 3);
    }

    #[test]
    fn byte_counters() {
        let codec: Arc<dyn Codec> = Arc::new(Store);
        let mut w = CodecWriter::new(Vec::new(), codec);
        w.write_all(&[7u8; 100]).unwrap();
        assert_eq!(w.raw_bytes(), 100);
        let compressed = w.finish().unwrap().len() as u64;
        assert!(compressed >= 100); // store codec + framing
    }
}
