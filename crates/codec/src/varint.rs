//! LEB128 variable-length integers used by every on-disk format in the
//! workspace (block frames, ATC interval records, trace headers).
//!
//! Small values (block lengths, chunk ids, interval counts) dominate these
//! formats, so a byte-oriented varint keeps headers negligible next to the
//! compressed payload.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! let mut buf = Vec::new();
//! atc_codec::varint::write_u64(&mut buf, 300)?;
//! let mut cur = &buf[..];
//! assert_eq!(atc_codec::varint::read_u64(&mut cur)?, 300);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

/// Writes `value` as an unsigned LEB128 varint.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an unsigned LEB128 varint.
///
/// # Errors
///
/// Returns an error on I/O failure, premature end of input, or an encoding
/// longer than 10 bytes (which cannot fit in a `u64`).
pub fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift == 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflows u64",
            ));
        }
        value |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 10 bytes",
            ));
        }
    }
}

/// Writes `value` with zigzag encoding so small negative values stay short.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_i64<W: Write>(w: &mut W, value: i64) -> io::Result<()> {
    write_u64(w, ((value << 1) ^ (value >> 63)) as u64)
}

/// Reads a zigzag-encoded signed varint.
///
/// # Errors
///
/// Same failure modes as [`read_u64`].
pub fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let z = read_u64(r)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        read_u64(&mut &buf[..]).unwrap()
    }

    fn roundtrip_i(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        read_i64(&mut &buf[..]).unwrap()
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0, 1, 127, 128, 300, 16383, 16384, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_u(v), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0, 1, -1, 63, -64, 64, -65, i64::MAX, i64::MIN] {
            assert_eq!(roundtrip_i(v), v);
        }
    }

    #[test]
    fn encoding_sizes() {
        let size = |v: u64| {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            buf.len()
        };
        assert_eq!(size(0), 1);
        assert_eq!(size(127), 1);
        assert_eq!(size(128), 2);
        assert_eq!(size(u64::MAX), 10);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        buf.pop();
        assert!(read_u64(&mut &buf[..]).is_err());
    }

    #[test]
    fn overlong_encoding_errors() {
        // 11 continuation bytes cannot encode a u64.
        let buf = [0x80u8; 11];
        assert!(read_u64(&mut &buf[..]).is_err());
    }
}
