//! Property-based tests for the codec substrate: every stage of the
//! bzip-class pipeline, the LZ codec, and the streaming adapters must
//! round-trip arbitrary bytes.

use std::io::{Read, Write};
use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use atc_codec::bwt::{bwt_forward, bwt_inverse};
use atc_codec::mtf::{mtf_decode, mtf_encode};
use atc_codec::rle::{rle_decode, rle_encode};
use atc_codec::sais::suffix_array;
use atc_codec::{Bzip, Codec, CodecReader, CodecWriter, Lz, ParallelCodecWriter, Store};

/// Thread counts exercised by the byte-identity tests.
///
/// Defaults to `[1, 2, 4, 8]`; the CI thread matrix overrides it with
/// `ATC_TEST_THREADS` (a single value or a comma list) so byte identity
/// across thread counts is pinned on real multi-core runners, not just
/// simulated on a single-core container.
fn test_threads() -> Vec<usize> {
    match std::env::var("ATC_TEST_THREADS") {
        Ok(s) => {
            let parsed: Vec<usize> = s
                .split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&t| (1..=64).contains(&t))
                .collect();
            if parsed.is_empty() {
                vec![1, 2, 4, 8]
            } else {
                parsed
            }
        }
        Err(_) => vec![1, 2, 4, 8],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 4 } else { 128 }))]

    #[test]
    fn sais_is_a_sorted_suffix_permutation(data in vec(any::<u8>(), 0..400)) {
        let sa = suffix_array(&data);
        // Permutation of 0..n.
        let mut idx: Vec<u32> = sa.clone();
        idx.sort_unstable();
        prop_assert_eq!(idx, (0..data.len() as u32).collect::<Vec<_>>());
        // Sorted order.
        for w in sa.windows(2) {
            prop_assert!(data[w[0] as usize..] < data[w[1] as usize..]);
        }
    }

    #[test]
    fn bwt_roundtrip(data in vec(any::<u8>(), 0..2000)) {
        let (l, p) = bwt_forward(&data);
        prop_assert_eq!(bwt_inverse(&l, p).unwrap(), data);
    }

    #[test]
    fn mtf_roundtrip(data in vec(any::<u8>(), 0..2000)) {
        prop_assert_eq!(mtf_decode(&mtf_encode(&data)), data);
    }

    #[test]
    fn rle_roundtrip(data in vec(any::<u8>(), 0..2000)) {
        prop_assert_eq!(rle_decode(&rle_encode(&data)).unwrap(), data);
    }

    #[test]
    fn bzip_roundtrip(data in vec(any::<u8>(), 0..5000)) {
        let codec = Bzip::with_block_size(1024); // force multi-block paths
        prop_assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }

    #[test]
    fn lz_roundtrip(data in vec(any::<u8>(), 0..5000)) {
        let codec = Lz::with_block_size(1024);
        prop_assert_eq!(codec.decompress(&codec.compress(&data)).unwrap(), data);
    }

    #[test]
    fn bzip_never_accepts_flipped_crc(data in vec(any::<u8>(), 64..512), flip in 0usize..8) {
        // Flip one CRC bit in the header: decompression must fail (the
        // other header fields may coincidentally still parse).
        let codec = Bzip::default();
        let mut packed = codec.compress(&data);
        // CRC occupies bytes [varint_len .. varint_len+4); varint of len<2^14
        // takes 1-2 bytes. Locate it by re-encoding the length.
        let mut header = Vec::new();
        atc_codec::varint::write_u64(&mut header, data.len() as u64).unwrap();
        let crc_off = header.len();
        packed[crc_off + flip / 8] ^= 1 << (flip % 8);
        prop_assert!(codec.decompress(&packed).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 32 }))]

    #[test]
    fn streaming_matches_oneshot(
        data in vec(any::<u8>(), 0..20_000),
        segment in 1usize..4096,
    ) {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut w = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        w.write_all(&data).unwrap();
        let file = w.finish().unwrap();
        let mut r = CodecReader::new(&file[..], codec);
        let mut back = Vec::new();
        r.read_to_end(&mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn store_is_identity(data in vec(any::<u8>(), 0..1000)) {
        let c = Store;
        prop_assert_eq!(c.compress(&data), data.clone());
        prop_assert_eq!(c.decompress(&data).unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 24 }))]

    // The parallel writer must produce streams the *serial* reader
    // decompresses byte-identically, at every thread count and segment
    // size — the on-disk format never depends on the writer's threading.
    #[test]
    fn parallel_writer_decodes_identically_via_serial_reader(
        data in vec(any::<u8>(), 0..20_000),
        segment in 1usize..4096,
    ) {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut serial =
            CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), segment);
        serial.write_all(&data).unwrap();
        let serial_file = serial.finish().unwrap();

        for threads in test_threads() {
            let mut w = ParallelCodecWriter::with_segment_size(
                Vec::new(),
                Arc::clone(&codec),
                segment,
                threads,
            );
            w.write_all(&data).unwrap();
            let file = w.finish().unwrap();
            // Byte-identical stream, not merely an equivalent one.
            prop_assert_eq!(&file, &serial_file, "stream bytes, threads={}", threads);

            let mut r = CodecReader::new(&file[..], Arc::clone(&codec));
            let mut back = Vec::new();
            r.read_to_end(&mut back).unwrap();
            prop_assert_eq!(&back, &data, "decoded bytes, threads={}", threads);
        }
    }

    // Multi-block Bzip parallelism: parallel decompress must round-trip
    // serial compress output and vice versa (and the compressed bytes
    // must be identical in both directions).
    #[test]
    fn parallel_bzip_interoperates_with_serial(
        data in vec(any::<u8>(), 0..24_000),
    ) {
        let serial = Bzip::with_block_size(1024); // force many blocks
        let packed_serial = serial.compress(&data);
        for threads in test_threads() {
            let parallel = Bzip::with_block_size(1024).threads(threads);
            let packed_parallel = parallel.compress(&data);
            prop_assert_eq!(&packed_serial, &packed_parallel, "compressed bytes, threads={}", threads);

            // serial compress -> parallel decompress
            prop_assert_eq!(&parallel.decompress(&packed_serial).unwrap(), &data);
            // parallel compress -> serial decompress
            prop_assert_eq!(&serial.decompress(&packed_parallel).unwrap(), &data);
        }
    }

    // Forced-stealing byte identity: an injected engine whose home worker
    // is buried under junk tasks makes the writer's segments get *stolen*
    // by the other workers, and the output must still be byte-identical
    // to the serial stream at every worker count. This pins the lock-free
    // deque path (owner pop vs thief CAS) to on-disk bytes.
    #[test]
    fn forced_stealing_keeps_streams_byte_identical(
        data in vec(any::<u8>(), 0..20_000),
    ) {
        let codec: Arc<dyn Codec> = Arc::new(Bzip::with_block_size(2048));
        let mut serial = CodecWriter::with_segment_size(Vec::new(), Arc::clone(&codec), 1024);
        serial.write_all(&data).unwrap();
        let serial_file = serial.finish().unwrap();

        for workers in test_threads() {
            let engine = atc_engine::Engine::new(workers);
            // Bury home 0 — the home the writer below will be assigned —
            // so its segment tasks queue behind junk and idle workers
            // must steal them to keep the stream moving.
            for _ in 0..64 {
                engine.submit(0, || std::thread::sleep(std::time::Duration::from_micros(50)));
            }
            let mut w = ParallelCodecWriter::with_engine(
                Vec::new(),
                Arc::clone(&codec),
                1024,
                workers,
                engine.clone(),
            );
            w.write_all(&data).unwrap();
            let file = w.finish().unwrap();
            prop_assert_eq!(&file, &serial_file, "stream bytes, workers={}", workers);
            if workers > 1 && !data.is_empty() {
                // The junk backlog guarantees contention; with several
                // workers some of it must have been stolen.
                prop_assert!(engine.stats().steals > 0, "no steals at workers={}", workers);
            }
        }
    }

    #[test]
    fn parallel_bzip_rejects_corruption_like_serial(
        data in vec(any::<u8>(), 2048..8192),
        flip_bit in 0usize..64,
    ) {
        let parallel = Bzip::with_block_size(1024).threads(4);
        let mut packed = parallel.compress(&data);
        let pos = packed.len() - 1 - (flip_bit / 8) % packed.len().min(64);
        packed[pos] ^= 1 << (flip_bit % 8);
        let serial = Bzip::with_block_size(1024);
        // Whatever the serial codec says, the parallel one must agree.
        prop_assert_eq!(
            serial.decompress(&packed).is_err(),
            parallel.decompress(&packed).is_err()
        );
    }
}

/// Every built-in codec, sized so multi-block paths are exercised.
fn all_codecs() -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(Bzip::with_block_size(1024)),
        Box::new(Bzip::with_block_size(1024).threads(4)),
        Box::new(Lz::with_block_size(1024)),
        Box::new(Store),
    ]
}

/// Asserts the streaming entry points agree byte-for-byte with the
/// one-shot ones, through a dirty scratch buffer (stale contents and
/// pre-existing capacity must not leak into the output).
fn assert_into_matches_oneshot(codec: &dyn Codec, data: &[u8], scratch: &mut Vec<u8>) {
    let packed = codec.compress(data);
    let n = codec.compress_into(data, scratch);
    assert_eq!(n, scratch.len(), "{}: returned length", codec.name());
    assert_eq!(&packed, scratch, "{}: compressed bytes", codec.name());

    let raw = codec.decompress(&packed).expect("own output decompresses");
    let packed_copy = scratch.clone();
    let m = codec
        .decompress_into(&packed_copy, scratch)
        .expect("own output decompresses (into)");
    assert_eq!(m, scratch.len(), "{}: returned length", codec.name());
    assert_eq!(&raw, scratch, "{}: decompressed bytes", codec.name());
    assert_eq!(raw, data, "{}: roundtrip", codec.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(if cfg!(miri) { 2 } else { 48 }))]

    // The streaming API is only a scratch-reuse variant: its bytes must be
    // exactly the one-shot bytes for every codec and every input,
    // regardless of what the scratch buffer held before.
    #[test]
    fn compress_into_is_byte_identical_to_compress(
        data in vec(any::<u8>(), 0..12_000),
        stale in vec(any::<u8>(), 0..256),
    ) {
        for codec in all_codecs() {
            let mut scratch = stale.clone();
            assert_into_matches_oneshot(&*codec, &data, &mut scratch);
            // Second call through the now-warm scratch: still identical.
            assert_into_matches_oneshot(&*codec, &data, &mut scratch);
        }
    }
}

/// The degenerate segment sizes the streaming writers can produce: the
/// empty segment (never framed, but the API must handle it) and the
/// 1-byte segment, plus the sizes around the block boundary.
#[test]
fn compress_into_edge_segment_sizes() {
    for size in [0usize, 1, 2, 1023, 1024, 1025, 4096] {
        let data: Vec<u8> = (0..size).map(|i| (i % 17) as u8).collect();
        for codec in all_codecs() {
            let mut scratch = vec![0xEE; 64]; // dirty scratch
            assert_into_matches_oneshot(&*codec, &data, &mut scratch);
        }
    }
}

/// `compress_into` on an empty input must clear the scratch and write
/// nothing, for every codec (the writers rely on "empty in, empty out").
#[test]
fn compress_into_empty_input_clears_scratch() {
    for codec in all_codecs() {
        let mut scratch = vec![1u8; 100];
        assert_eq!(
            codec.compress_into(b"", &mut scratch),
            0,
            "{}",
            codec.name()
        );
        assert!(scratch.is_empty(), "{}", codec.name());
    }
}
