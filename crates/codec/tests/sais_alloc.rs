//! Allocation-count pin for the SA-IS recursion arena.
//!
//! ROADMAP item: scratch reuse used to stop at the SA-IS top level — the
//! recursion allocated fresh `is_s`/`bucket`/`names`/`lms_pos`/`s1`
//! buffers at every level of every call. With the level-indexed arena in
//! [`atc_codec::sais::SaisScratch`], a *warmed* scratch must construct a
//! suffix array with **zero** heap allocations, recursion included.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator: exactly one test runs here, so no other
//! thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use atc_codec::sais::{suffix_array_in, SaisScratch};

/// System allocator with a global allocation counter.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a counter bump — every
// GlobalAlloc contract obligation (layout validity, pointer provenance,
// no unwinding) is discharged by delegating to the system allocator
// with the caller's arguments unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: same layout the caller was required to validate.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come straight from the caller, who must
        // pass the pair `alloc` returned.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: caller upholds GlobalAlloc's contract; forwarded verbatim.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        // SAFETY: arguments forwarded unchanged from the caller.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// A small-alphabet pseudorandom text: forces several levels of SA-IS
/// recursion (names collide heavily with only 3 symbols).
fn deep_recursion_text(n: usize) -> Vec<u8> {
    let mut x: u64 = 0x5DEECE66D;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((x >> 33) % 3) as u8
        })
        .collect()
}

#[test]
fn warmed_scratch_builds_suffix_arrays_without_allocating() {
    let text = deep_recursion_text(40_000);
    let mut scratch = SaisScratch::new();

    // Warm-up: grows every level's buffers (and gives the expected
    // answer to compare against).
    let expect = suffix_array_in(&text, &mut scratch).to_vec();
    assert!(scratch.capacity() > 0, "arena must retain its buffers");

    // Warmed: the same construction must not touch the allocator at all.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let got_len = {
        let got = suffix_array_in(&text, &mut scratch);
        assert!(got == expect.as_slice(), "arena reuse changed the result");
        got.len()
    };
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(got_len, text.len());
    assert_eq!(
        after - before,
        0,
        "warmed SA-IS must be allocation-free across all recursion levels"
    );

    // A *smaller* input reuses the same arena without growing it.
    let small = deep_recursion_text(10_000);
    let small_expect = atc_codec::sais::suffix_array(&small);
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let got = suffix_array_in(&small, &mut scratch);
    assert!(got == small_expect.as_slice());
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(after - before, 0, "smaller inputs ride the warmed arena");
}
