//! The bytesort reversible transformation (§4 of the paper).
//!
//! Bytesort takes a buffer of `N` 64-bit addresses and emits eight blocks of
//! `N` bytes:
//!
//! 1. block 0 is the most-significant byte of every address, in sequence
//!    order (plain byte-unshuffling);
//! 2. before emitting block *j*, the addresses are **stably** counting-sorted
//!    by their byte *j−1*; block *j* is then byte *j* of every address in
//!    this progressively sorted order.
//!
//! Because the sorts are stable, addresses from the same memory region are
//! grouped together column after column, exposing cross-region pattern
//! repetition that a byte-level compressor (bzip2) can exploit. The whole
//! transformation — and its inverse — is linear in time and space, exactly
//! as the paper's C implementation (`unshuffle_bytes` / `sort_bytes` /
//! `output_bytesorted_blocks` in Figure 2).
//!
//! # Examples
//!
//! ```
//! use atc_core::bytesort::{bytesort_forward, bytesort_inverse};
//!
//! let addrs: Vec<u64> = (0..1000u64).map(|i| 0xF200 + (i % 37) * 0x100).collect();
//! let cols = bytesort_forward(&addrs);
//! assert_eq!(cols.len(), 8);
//! assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
//! ```

use crate::error::AtcError;

/// Number of byte columns in a 64-bit address.
pub const COLUMNS: usize = 8;

/// Histogram of the most-significant byte of every value.
///
/// Four interleaved sub-histograms: consecutive increments hit different
/// 1 KiB counter arrays, so they never alias and the adds pipeline
/// instead of serializing on store-to-load forwarding (counting loops
/// over low-entropy columns otherwise hammer the same few counters).
fn histogram_top_byte(vals: &[u64]) -> [u32; 256] {
    let mut sub = [[0u32; 256]; 4];
    let (chunks, tail) = vals.as_chunks::<4>();
    for c in chunks {
        sub[0][(c[0] >> 56) as usize] += 1;
        sub[1][(c[1] >> 56) as usize] += 1;
        sub[2][(c[2] >> 56) as usize] += 1;
        sub[3][(c[3] >> 56) as usize] += 1;
    }
    for &a in tail {
        sub[0][(a >> 56) as usize] += 1;
    }
    let mut out = [0u32; 256];
    for i in 0..256 {
        out[i] = sub[0][i] + sub[1][i] + sub[2][i] + sub[3][i];
    }
    out
}

/// Byte histogram with the same 4-way sub-histogram structure as
/// [`histogram_top_byte`].
fn histogram_bytes(col: &[u8]) -> [u32; 256] {
    let mut sub = [[0u32; 256]; 4];
    let (chunks, tail) = col.as_chunks::<4>();
    for c in chunks {
        sub[0][c[0] as usize] += 1;
        sub[1][c[1] as usize] += 1;
        sub[2][c[2] as usize] += 1;
        sub[3][c[3] as usize] += 1;
    }
    for &b in tail {
        sub[0][b as usize] += 1;
    }
    let mut out = [0u32; 256];
    for i in 0..256 {
        out[i] = sub[0][i] + sub[1][i] + sub[2][i] + sub[3][i];
    }
    out
}

/// Exclusive prefix sum of a histogram: the start offset of each bucket
/// in a stable counting sort.
fn bucket_offsets(hist: &[u32; 256]) -> [u32; 256] {
    let mut offs = [0u32; 256];
    let mut sum = 0u32;
    for c in 0..256 {
        offs[c] = sum;
        sum += hist[c];
    }
    offs
}

/// Applies the bytesort transformation to a buffer of addresses.
///
/// Returns the eight emitted byte blocks, most-significant column first.
/// Each block has `addrs.len()` bytes. The transformation is reversed by
/// [`bytesort_inverse`].
pub fn bytesort_forward(addrs: &[u64]) -> Vec<Vec<u8>> {
    let n = addrs.len();
    let mut cols: Vec<Vec<u8>> = Vec::with_capacity(COLUMNS);
    // Working copies ping-pong between `cur` and `next`, with consumed
    // high-order bytes shifted out, mirroring the paper's `a[i] << 8`.
    let mut cur: Vec<u64> = addrs.to_vec();
    let mut next: Vec<u64> = vec![0u64; n];
    for level in 0..COLUMNS {
        // Unshuffle: emit the current most-significant byte column (a pure
        // u64→u8 narrowing map, which the compiler turns into SIMD pack
        // instructions) and histogram it (the paper's `unshuffle_bytes`,
        // split into two passes so each one vectorizes/pipelines).
        let mut col = vec![0u8; n];
        for (dst, &a) in col.iter_mut().zip(&cur) {
            *dst = (a >> 56) as u8;
        }
        cols.push(col);
        if level == COLUMNS - 1 {
            break;
        }
        let hist = histogram_top_byte(&cur);
        // Stable counting sort by that byte, shifting it out (the paper's
        // `sort_bytes`). The scatter itself must stay serial per bucket —
        // two equal keys contend for consecutive slots — so the speed
        // comes from the cheap passes around it.
        let mut offs = bucket_offsets(&hist);
        for &a in &cur {
            let c = (a >> 56) as usize;
            next[offs[c] as usize] = a << 8;
            offs[c] += 1;
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cols
}

/// Inverts [`bytesort_forward`].
///
/// The decoder replays the encoder's stable sorts: the histogram of each
/// received column determines the permutation the encoder applied after
/// emitting it, so a running `perm[i]` (position of original address `i` in
/// the current order) recovers every byte.
///
/// # Errors
///
/// Returns [`AtcError::Format`] if `cols` does not contain exactly eight
/// equally long blocks.
pub fn bytesort_inverse(cols: &[Vec<u8>]) -> Result<Vec<u64>, AtcError> {
    if cols.len() != COLUMNS {
        return Err(AtcError::Format(format!(
            "bytesort needs {COLUMNS} columns, got {}",
            cols.len()
        )));
    }
    let n = cols[0].len();
    if cols.iter().any(|c| c.len() != n) {
        return Err(AtcError::Format(
            "bytesort columns have unequal lengths".into(),
        ));
    }
    let mut inverse = BytesortInverse::default();
    inverse.begin(n);
    for col in cols {
        inverse.push_column(col)?;
    }
    inverse.into_addrs()
}

/// Column-at-a-time decoder for the bytesort transformation.
///
/// [`bytesort_inverse`] needs all eight columns materialized side by side;
/// this streaming form consumes them one at a time, in emission order.
/// That is exactly the shape of the on-disk frame (`varint(n)` then the
/// eight columns back to back), so the container's zero-copy read path can
/// feed each column *borrowed straight from the decoded segment buffer*
/// instead of first copying it into an owned vector. All internal state
/// (the address accumulator, the permutation, the sort scratch) is reused
/// across frames: steady-state decoding allocates nothing.
///
/// # Examples
///
/// ```
/// use atc_core::bytesort::{bytesort_forward, BytesortInverse};
///
/// let addrs: Vec<u64> = (0..100u64).map(|i| i * 64).collect();
/// let cols = bytesort_forward(&addrs);
/// let mut inv = BytesortInverse::default();
/// inv.begin(addrs.len());
/// for col in &cols {
///     inv.push_column(col).unwrap();
/// }
/// assert_eq!(inv.finish().unwrap(), &addrs[..]);
/// ```
#[derive(Debug, Default)]
pub struct BytesortInverse {
    addrs: Vec<u64>,
    /// perm[i] = position of original address i in the encoder's current
    /// order when the upcoming column was emitted. Identity at level 0.
    perm: Vec<u32>,
    newpos: Vec<u32>,
    /// Columns consumed so far for the current frame.
    level: usize,
    n: usize,
}

impl BytesortInverse {
    /// Starts decoding a frame of `n` addresses, resetting (and reusing)
    /// all internal state.
    pub fn begin(&mut self, n: usize) {
        self.n = n;
        self.level = 0;
        self.addrs.clear();
        self.addrs.resize(n, 0);
        self.perm.clear();
        self.perm.extend(0..n as u32);
        self.newpos.clear();
        self.newpos.resize(n, 0);
    }

    /// Feeds the next emitted column (most-significant first).
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] if the column's length differs from
    /// the `n` passed to [`BytesortInverse::begin`] or all [`COLUMNS`]
    /// columns were already consumed.
    pub fn push_column(&mut self, col: &[u8]) -> Result<(), AtcError> {
        if col.len() != self.n {
            return Err(AtcError::Format(format!(
                "bytesort column holds {} bytes, frame says {}",
                col.len(),
                self.n
            )));
        }
        if self.level >= COLUMNS {
            return Err(AtcError::Format(format!(
                "bytesort frame has more than {COLUMNS} columns"
            )));
        }
        let shift = 8 * (COLUMNS - 1 - self.level) as u32;
        // Gather the column bytes through the permutation. Gathered loads
        // are independent, so a 4-wide unroll keeps four cache misses in
        // flight instead of one per iteration.
        {
            let (perm4, perm_tail) = self.perm.as_chunks::<4>();
            let (addr4, addr_tail) = self.addrs.as_chunks_mut::<4>();
            for (a, p) in addr4.iter_mut().zip(perm4) {
                a[0] |= (col[p[0] as usize] as u64) << shift;
                a[1] |= (col[p[1] as usize] as u64) << shift;
                a[2] |= (col[p[2] as usize] as u64) << shift;
                a[3] |= (col[p[3] as usize] as u64) << shift;
            }
            for (a, &p) in addr_tail.iter_mut().zip(perm_tail) {
                *a |= (col[p as usize] as u64) << shift;
            }
        }
        self.level += 1;
        if self.level == COLUMNS {
            return Ok(());
        }
        // Replay the encoder's stable counting sort of this column.
        let hist = histogram_bytes(col);
        let mut offs = bucket_offsets(&hist);
        for (p, &c) in col.iter().enumerate() {
            self.newpos[p] = offs[c as usize];
            offs[c as usize] += 1;
        }
        // Compose the permutation (another independent-gather loop).
        let (perm4, perm_tail) = self.perm.as_chunks_mut::<4>();
        for p in perm4 {
            p[0] = self.newpos[p[0] as usize];
            p[1] = self.newpos[p[1] as usize];
            p[2] = self.newpos[p[2] as usize];
            p[3] = self.newpos[p[3] as usize];
        }
        for p in perm_tail {
            *p = self.newpos[*p as usize];
        }
        Ok(())
    }

    /// Completes the frame and returns the decoded addresses (valid until
    /// the next [`BytesortInverse::begin`]).
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] if fewer than [`COLUMNS`] columns were
    /// pushed since the last `begin`.
    pub fn finish(&self) -> Result<&[u64], AtcError> {
        if self.level != COLUMNS {
            return Err(AtcError::Format(format!(
                "bytesort frame ended after {} of {COLUMNS} columns",
                self.level
            )));
        }
        Ok(&self.addrs)
    }

    /// Like [`BytesortInverse::finish`], but consumes the decoder and
    /// hands its output buffer over without a copy (the one-shot
    /// [`bytesort_inverse`] path).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BytesortInverse::finish`].
    pub fn into_addrs(self) -> Result<Vec<u64>, AtcError> {
        self.finish()?;
        Ok(self.addrs)
    }
}

/// Plain byte-unshuffling (§4.1's first idea, the paper's `us` baseline):
/// transposes the buffer into eight byte columns in sequence order, without
/// any sorting.
pub fn unshuffle(addrs: &[u64]) -> Vec<Vec<u8>> {
    // Column-outer: each inner loop is a pure u64→u8 narrowing map over
    // the whole buffer, which autovectorizes into SIMD shift+pack (the
    // address-outer formulation scatters one byte to eight destinations
    // per iteration and defeats that).
    (0..COLUMNS)
        .map(|j| {
            let shift = (8 * (COLUMNS - 1 - j)) as u32;
            addrs.iter().map(|&a| (a >> shift) as u8).collect()
        })
        .collect()
}

/// Inverts [`unshuffle`].
///
/// # Errors
///
/// Returns [`AtcError::Format`] if `cols` does not contain exactly eight
/// equally long blocks.
pub fn unshuffle_inverse(cols: &[Vec<u8>]) -> Result<Vec<u64>, AtcError> {
    if cols.len() != COLUMNS {
        return Err(AtcError::Format(format!(
            "unshuffle needs {COLUMNS} columns, got {}",
            cols.len()
        )));
    }
    let n = cols[0].len();
    if cols.iter().any(|c| c.len() != n) {
        return Err(AtcError::Format(
            "unshuffle columns have unequal lengths".into(),
        ));
    }
    let mut addrs = vec![0u64; n];
    for (j, col) in cols.iter().enumerate() {
        let shift = 8 * (COLUMNS - 1 - j) as u32;
        for (a, &c) in addrs.iter_mut().zip(col) {
            *a |= (c as u64) << shift;
        }
    }
    Ok(addrs)
}

/// Serializes columns back-to-back into one byte stream (the layout fed to
/// the back-end compressor).
pub fn columns_to_bytes(cols: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = cols.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for c in cols {
        out.extend_from_slice(c);
    }
    out
}

/// Splits a concatenated column stream back into eight equal columns.
///
/// # Errors
///
/// Returns [`AtcError::Format`] if `bytes.len()` is not a multiple of eight.
pub fn bytes_to_columns(bytes: &[u8]) -> Result<Vec<Vec<u8>>, AtcError> {
    if !bytes.len().is_multiple_of(COLUMNS) {
        return Err(AtcError::Format(format!(
            "column stream length {} is not a multiple of {COLUMNS}",
            bytes.len()
        )));
    }
    if bytes.is_empty() {
        return Ok(vec![Vec::new(); COLUMNS]);
    }
    let n = bytes.len() / COLUMNS;
    Ok(bytes.chunks_exact(n).map(<[u8]>::to_vec).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Byte-at-a-time reference for [`bytesort_forward`]: the paper's
    /// Figure 2 loops, exactly as this module shipped them before the
    /// ILP restructuring. The optimized path must match byte for byte.
    fn bytesort_forward_scalar(addrs: &[u64]) -> Vec<Vec<u8>> {
        let n = addrs.len();
        let mut cols: Vec<Vec<u8>> = Vec::with_capacity(COLUMNS);
        let mut cur: Vec<u64> = addrs.to_vec();
        let mut next: Vec<u64> = vec![0u64; n];
        for level in 0..COLUMNS {
            let mut hist = [0u32; 256];
            let mut col = Vec::with_capacity(n);
            for &a in &cur {
                let c = (a >> 56) as u8;
                col.push(c);
                hist[c as usize] += 1;
            }
            cols.push(col);
            if level == COLUMNS - 1 {
                break;
            }
            let mut offs = [0u32; 256];
            let mut sum = 0u32;
            for c in 0..256 {
                offs[c] = sum;
                sum += hist[c];
            }
            for &a in &cur {
                let c = (a >> 56) as usize;
                next[offs[c] as usize] = a << 8;
                offs[c] += 1;
            }
            std::mem::swap(&mut cur, &mut next);
        }
        cols
    }

    /// Scalar reference for the streaming inverse: replays the stable
    /// sorts one index at a time, no unrolling.
    fn bytesort_inverse_scalar(cols: &[Vec<u8>]) -> Vec<u64> {
        let n = cols[0].len();
        let mut addrs = vec![0u64; n];
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut newpos = vec![0u32; n];
        for (level, col) in cols.iter().enumerate() {
            let shift = 8 * (COLUMNS - 1 - level) as u32;
            for (i, &p) in perm.iter().enumerate() {
                addrs[i] |= (col[p as usize] as u64) << shift;
            }
            if level == COLUMNS - 1 {
                break;
            }
            let mut hist = [0u32; 256];
            for &c in col {
                hist[c as usize] += 1;
            }
            let mut offs = [0u32; 256];
            let mut sum = 0u32;
            for c in 0..256 {
                offs[c] = sum;
                sum += hist[c];
            }
            for (p, &c) in col.iter().enumerate() {
                newpos[p] = offs[c as usize];
                offs[c as usize] += 1;
            }
            for p in perm.iter_mut() {
                *p = newpos[*p as usize];
            }
        }
        addrs
    }

    /// Address-outer reference for [`unshuffle`].
    fn unshuffle_scalar(addrs: &[u64]) -> Vec<Vec<u8>> {
        let n = addrs.len();
        let mut cols: Vec<Vec<u8>> = (0..COLUMNS).map(|_| Vec::with_capacity(n)).collect();
        for &a in addrs {
            for (j, col) in cols.iter_mut().enumerate() {
                col.push((a >> (8 * (COLUMNS - 1 - j))) as u8);
            }
        }
        cols
    }

    fn roundtrip(addrs: &[u64]) {
        let cols = bytesort_forward(addrs);
        assert_eq!(bytesort_inverse(&cols).unwrap(), addrs, "bytesort");
        let ucols = unshuffle(addrs);
        assert_eq!(unshuffle_inverse(&ucols).unwrap(), addrs, "unshuffle");
    }

    #[test]
    fn empty_and_single() {
        roundtrip(&[]);
        roundtrip(&[0]);
        roundtrip(&[u64::MAX]);
        roundtrip(&[0x1234_5678_9ABC_DEF0]);
    }

    #[test]
    fn paper_figure1_example() {
        // Figure 1: sixteen 32-bit addresses (here zero-extended to 64 bits
        // in the low half so the high 4 columns are all zero).
        let addrs: Vec<u64> = vec![
            0x0000_0000,
            0xFF00_0007,
            0x0001_C000,
            0xFF00_0006,
            0x0001_8000,
            0xFF00_0005,
            0x0001_4000,
            0xFF00_0004,
            0x0001_0000,
            0xFF00_0003,
            0x0000_C000,
            0xFF00_0002,
            0x0000_8000,
            0xFF00_0001,
            0x0000_4000,
            0xFF00_0000,
        ];
        let cols = bytesort_forward(&addrs);
        // Columns 0..4 (bytes 7..4 of the 64-bit values) are all zero.
        for c in &cols[..4] {
            assert!(c.iter().all(|&b| b == 0));
        }
        // Column 4 = the "1st byte column" of Figure 1: original order.
        let expect_c4: Vec<u8> = addrs.iter().map(|&a| (a >> 24) as u8).collect();
        assert_eq!(cols[4], expect_c4);
        // After sorting by that byte, the 00-prefixed addresses precede the
        // FF-prefixed ones (stably), giving Figure 1's "block 2".
        let expect_c5: Vec<u8> = vec![
            0x00, 0x01, 0x01, 0x01, 0x01, 0x00, 0x00, 0x00, // 00-group byte 2
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // FF-group byte 2
        ];
        assert_eq!(cols[5], expect_c5);
        assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
    }

    #[test]
    fn paper_section41_text_example() {
        // §4.1: F200..F2FF interleaved with A100..A17F (two regions with
        // identical low-byte patterns). After bytesort, the low-order column
        // must consist of two runs: 00..7F then 00..FF.
        let mut addrs = Vec::new();
        let mut a1 = 0u64;
        for i in 0..256u64 {
            addrs.push(0xF200 + i);
            if i % 2 == 1 {
                addrs.push(0xA100 + a1);
                a1 += 1;
            }
        }
        let cols = bytesort_forward(&addrs);
        let low = &cols[7];
        // First 128 bytes: the A1 region's low bytes in order.
        let first: Vec<u8> = (0..128u64).map(|i| i as u8).collect();
        assert_eq!(&low[..128], &first[..]);
        // Next 256: the F2 region's low bytes in order.
        let second: Vec<u8> = (0..256u64).map(|i| i as u8).collect();
        assert_eq!(&low[128..], &second[..]);
        assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
    }

    #[test]
    fn stability_preserves_same_key_order() {
        // Addresses identical in the top 7 bytes must keep their relative
        // order in the final column.
        let addrs = vec![0x10, 0x30, 0x20, 0x10, 0x30];
        let cols = bytesort_forward(&addrs);
        assert_eq!(cols[7], vec![0x10, 0x30, 0x20, 0x10, 0x30]);
        assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
    }

    #[test]
    fn pseudorandom_roundtrip() {
        let mut x: u64 = 0xABCD;
        let addrs: Vec<u64> = (0..10_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x
            })
            .collect();
        roundtrip(&addrs);
    }

    #[test]
    fn block_addresses_with_null_top_bits() {
        let addrs: Vec<u64> = (0..5000u64).map(|i| (i * 977) % (1 << 52)).collect();
        roundtrip(&addrs);
    }

    #[test]
    fn column_stream_roundtrip() {
        let addrs: Vec<u64> = (0..100).map(|i| i * 64).collect();
        let cols = bytesort_forward(&addrs);
        let bytes = columns_to_bytes(&cols);
        assert_eq!(bytes.len(), 800);
        let back = bytes_to_columns(&bytes).unwrap();
        assert_eq!(back, cols);
    }

    #[test]
    fn streaming_inverse_reuses_state_across_frames() {
        let mut inv = BytesortInverse::default();
        for n in [1000usize, 1, 0, 500] {
            let addrs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37)).collect();
            let cols = bytesort_forward(&addrs);
            inv.begin(n);
            for col in &cols {
                inv.push_column(col).unwrap();
            }
            assert_eq!(inv.finish().unwrap(), &addrs[..], "n={n}");
        }
    }

    #[test]
    fn streaming_inverse_rejects_misuse() {
        let mut inv = BytesortInverse::default();
        inv.begin(4);
        assert!(inv.finish().is_err(), "too few columns");
        assert!(inv.push_column(&[0u8; 3]).is_err(), "wrong length");
        for _ in 0..COLUMNS {
            inv.push_column(&[0u8; 4]).unwrap();
        }
        assert!(inv.push_column(&[0u8; 4]).is_err(), "too many columns");
    }

    #[test]
    fn invalid_columns_rejected() {
        assert!(bytesort_inverse(&vec![vec![0u8; 4]; 7]).is_err());
        let mut cols = vec![vec![0u8; 4]; 8];
        cols[3] = vec![0u8; 5];
        assert!(bytesort_inverse(&cols).is_err());
        assert!(bytes_to_columns(&[0u8; 9]).is_err());
    }

    #[test]
    fn matches_scalar_at_awkward_lengths() {
        // 0, 1, and non-multiples of the 4-wide unroll.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 63, 65] {
            let addrs: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
            let cols = bytesort_forward(&addrs);
            assert_eq!(cols, bytesort_forward_scalar(&addrs), "forward n={n}");
            assert_eq!(bytesort_inverse(&cols).unwrap(), addrs, "inverse n={n}");
            assert_eq!(
                unshuffle(&addrs),
                unshuffle_scalar(&addrs),
                "unshuffle n={n}"
            );
        }
    }

    proptest! {
        /// Differential: the restructured forward/inverse/unshuffle are
        /// byte-identical to the scalar references on arbitrary inputs.
        #[test]
        fn restructured_matches_scalar(addrs in proptest::collection::vec(any::<u64>(), 0..300)) {
            let cols = bytesort_forward(&addrs);
            prop_assert_eq!(&cols, &bytesort_forward_scalar(&addrs));
            prop_assert_eq!(bytesort_inverse(&cols).unwrap(), bytesort_inverse_scalar(&cols));
            prop_assert_eq!(bytesort_inverse(&cols).unwrap(), addrs.clone());
            prop_assert_eq!(unshuffle(&addrs), unshuffle_scalar(&addrs));
        }

        /// Low-entropy addresses (the realistic trace shape) through the
        /// same differential check: equal keys exercise the stable-sort
        /// tie paths the unrolled loops must preserve.
        #[test]
        fn low_entropy_matches_scalar(seeds in proptest::collection::vec(0u64..16, 0..300)) {
            let addrs: Vec<u64> = seeds.iter().map(|&s| 0xF200 + s * 0x40).collect();
            let cols = bytesort_forward(&addrs);
            prop_assert_eq!(&cols, &bytesort_forward_scalar(&addrs));
            prop_assert_eq!(bytesort_inverse(&cols).unwrap(), addrs);
        }
    }

    #[test]
    fn sorting_groups_regions() {
        // Two interleaved regions: after bytesort the last column must be
        // "more runny" than the raw interleaved low bytes.
        let mut addrs = Vec::new();
        for i in 0..512u64 {
            addrs.push(0x0000_F200_0000 + i * 64);
            addrs.push(0x0000_A100_0000 + i * 64);
        }
        let cols = bytesort_forward(&addrs);
        let runs = |v: &[u8]| v.windows(2).filter(|w| w[0] == w[1]).count();
        let raw_low: Vec<u8> = addrs.iter().map(|&a| (a >> 16) as u8).collect();
        assert!(runs(&cols[5]) >= runs(&raw_low));
    }
}
