//! Error type for the ATC compressor.

use std::fmt;

/// Errors produced by ATC compression, decompression, and container I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum AtcError {
    /// Underlying file or stream I/O failed.
    Io(std::io::Error),
    /// The back-end codec reported corrupt data.
    Codec(atc_codec::CodecError),
    /// The container layout or a record is structurally invalid.
    Format(String),
}

impl fmt::Display for AtcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtcError::Io(e) => write!(f, "i/o error: {e}"),
            AtcError::Codec(e) => write!(f, "codec error: {e}"),
            AtcError::Format(what) => write!(f, "invalid ATC container: {what}"),
        }
    }
}

impl std::error::Error for AtcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AtcError::Io(e) => Some(e),
            AtcError::Codec(e) => Some(e),
            AtcError::Format(_) => None,
        }
    }
}

impl From<std::io::Error> for AtcError {
    fn from(e: std::io::Error) -> Self {
        AtcError::Io(e)
    }
}

impl From<atc_codec::CodecError> for AtcError {
    fn from(e: atc_codec::CodecError) -> Self {
        AtcError::Codec(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, AtcError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = AtcError::Format("missing meta file".into());
        let s = e.to_string();
        assert!(s.contains("missing meta file"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn io_source_preserved() {
        use std::error::Error;
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AtcError::from(io);
        assert!(e.source().is_some());
    }
}
