//! On-disk container format.
//!
//! An ATC trace is a *directory*, mirroring the original tool (Figure 8 of
//! the paper shows `foobar/1.bz2` + `foobar/INFO.bz2`):
//!
//! ```text
//! trace.atc/
//!   meta              plain-text key=value header (mode, codec, counts …)
//!   data.atc          lossless mode: the whole bytesorted trace, one codec stream
//!   chunk-000000.atc  lossy mode: one file per stored chunk
//!   info.atc          lossy mode: the compressed interval trace (records below)
//! ```
//!
//! Every `.atc` payload is a [`atc_codec::CodecWriter`] stream of the codec
//! named in `meta`. Address payloads are sequences of *frames*:
//! `varint(n) ++ bytesort columns (8·n bytes)`; a frame holds one buffer of
//! at most `buffer` addresses (the paper's `B`).
//!
//! The interval trace (`info.atc`) is a sequence of records:
//!
//! ```text
//! 0x01  varint(chunk_id) varint(len)            -- NewChunk
//! 0x02  varint(chunk_id) u8(mask) [256 B]*      -- Imitate (tables for set bits, ascending j)
//! ```

use std::io::{Read, Write};

use atc_codec::varint;

use crate::bytesort;
use crate::error::{AtcError, Result};
use crate::hist::{Translation, COLUMNS};

/// Format version recorded in `meta`.
pub const FORMAT_VERSION: u32 = 1;

/// Name of the plain-text header file.
pub const META_FILE: &str = "meta";
/// Name of the lossless payload file.
pub const DATA_FILE: &str = "data.atc";
/// Name of the interval-trace file (lossy mode).
pub const INFO_FILE: &str = "info.atc";

/// File name for chunk `id`.
pub fn chunk_file_name(id: u64) -> String {
    format!("chunk-{id:06}.atc")
}

/// Record tag: a new chunk was stored.
const TAG_CHUNK: u8 = 0x01;
/// Record tag: an interval imitates an existing chunk.
const TAG_IMITATE: u8 = 0x02;

/// One interval-trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalRecord {
    /// The interval was stored as chunk `chunk_id` (`len` addresses).
    NewChunk {
        /// Id of the stored chunk (also names the chunk file).
        chunk_id: u64,
        /// Number of addresses in the chunk.
        len: u64,
    },
    /// The interval is imitated by translating chunk `chunk_id`.
    Imitate {
        /// Id of the imitated chunk.
        chunk_id: u64,
        /// Per-column translations; `None` = identity (raw histograms
        /// already within threshold, the paper's "only if necessary" rule).
        translations: Box<[Option<Translation>; COLUMNS]>,
    },
}

impl IntervalRecord {
    /// Serializes the record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            IntervalRecord::NewChunk { chunk_id, len } => {
                w.write_all(&[TAG_CHUNK])?;
                varint::write_u64(w, *chunk_id)?;
                varint::write_u64(w, *len)?;
            }
            IntervalRecord::Imitate {
                chunk_id,
                translations,
            } => {
                w.write_all(&[TAG_IMITATE])?;
                varint::write_u64(w, *chunk_id)?;
                let mut mask = 0u8;
                for (j, t) in translations.iter().enumerate() {
                    if t.is_some() {
                        mask |= 1 << j;
                    }
                }
                w.write_all(&[mask])?;
                for t in translations.iter().flatten() {
                    w.write_all(t.table())?;
                }
            }
        }
        Ok(())
    }

    /// Reads the next record; `Ok(None)` at clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on unknown tags or invalid translation
    /// tables, and [`AtcError::Io`] on truncated input.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<Self>> {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        match tag[0] {
            TAG_CHUNK => {
                let chunk_id = varint::read_u64(r)?;
                let len = varint::read_u64(r)?;
                Ok(Some(IntervalRecord::NewChunk { chunk_id, len }))
            }
            TAG_IMITATE => {
                let chunk_id = varint::read_u64(r)?;
                let mut mask = [0u8; 1];
                r.read_exact(&mut mask)?;
                let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
                for j in 0..COLUMNS {
                    if mask[0] & (1 << j) != 0 {
                        let mut table = [0u8; 256];
                        r.read_exact(&mut table)?;
                        let t = Translation::from_table(table).ok_or_else(|| {
                            AtcError::Format(format!(
                                "translation table for byte {j} is not a permutation"
                            ))
                        })?;
                        translations[j] = Some(t);
                    }
                }
                Ok(Some(IntervalRecord::Imitate {
                    chunk_id,
                    translations,
                }))
            }
            other => Err(AtcError::Format(format!("unknown record tag {other:#x}"))),
        }
    }
}

/// Writes one bytesorted frame: `varint(n)` followed by the eight columns.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_frame<W: Write>(w: &mut W, addrs: &[u64]) -> Result<()> {
    varint::write_u64(w, addrs.len() as u64)?;
    let cols = bytesort::bytesort_forward(addrs);
    for c in &cols {
        w.write_all(c)?;
    }
    Ok(())
}

/// Reads one bytesorted frame; `Ok(None)` at clean end of stream.
///
/// # Errors
///
/// Returns [`AtcError::Io`] on truncated frames and [`AtcError::Format`] on
/// structurally invalid ones.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u64>>> {
    let n = match try_read_varint(r)? {
        Some(n) => n as usize,
        None => return Ok(None),
    };
    let mut cols = Vec::with_capacity(COLUMNS);
    for _ in 0..COLUMNS {
        let mut col = vec![0u8; n];
        r.read_exact(&mut col)?;
        cols.push(col);
    }
    bytesort::bytesort_inverse(&cols).map(Some)
}

/// Reads a varint, mapping clean EOF (before the first byte) to `None`.
fn try_read_varint<R: Read>(r: &mut R) -> Result<Option<u64>> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if first[0] & 0x80 == 0 {
        return Ok(Some(first[0] as u64));
    }
    let mut value = (first[0] & 0x7F) as u64;
    let mut shift = 7u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        value |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        if shift > 63 {
            return Err(AtcError::Format("varint longer than 10 bytes".into()));
        }
    }
}

/// The plain-text `meta` header.
#[derive(Debug, Clone, PartialEq)]
pub struct Meta {
    /// Format version.
    pub version: u32,
    /// `"lossless"` or `"lossy"`.
    pub mode: String,
    /// Back-end codec name (see [`atc_codec::codec_by_name`]).
    pub codec: String,
    /// Bytesort buffer size `B` in addresses.
    pub buffer: u64,
    /// Interval length `L` (lossy mode; 0 in lossless mode).
    pub interval_len: u64,
    /// Similarity threshold ε (lossy mode; 0 in lossless mode).
    pub threshold: f64,
    /// Total number of addresses in the trace.
    pub count: u64,
    /// Number of stored chunks.
    pub chunks: u64,
}

impl Meta {
    /// Serializes as `key=value` lines.
    pub fn to_text(&self) -> String {
        format!(
            "version={}\nmode={}\ncodec={}\nbuffer={}\ninterval_len={}\nthreshold={}\ncount={}\nchunks={}\n",
            self.version,
            self.mode,
            self.codec,
            self.buffer,
            self.interval_len,
            self.threshold,
            self.count,
            self.chunks
        )
    }

    /// Parses the `meta` file contents.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on missing or malformed keys.
    pub fn parse(text: &str) -> Result<Self> {
        let mut map = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| AtcError::Format(format!("malformed meta line {line:?}")))?;
            map.insert(k.to_string(), v.to_string());
        }
        let get = |k: &str| {
            map.get(k)
                .cloned()
                .ok_or_else(|| AtcError::Format(format!("meta key {k:?} missing")))
        };
        let parse_u64 = |k: &str| -> Result<u64> {
            get(k)?
                .parse()
                .map_err(|_| AtcError::Format(format!("meta key {k:?} is not an integer")))
        };
        Ok(Meta {
            version: parse_u64("version")? as u32,
            mode: get("mode")?,
            codec: get("codec")?,
            buffer: parse_u64("buffer")?,
            interval_len: parse_u64("interval_len")?,
            threshold: get("threshold")?
                .parse()
                .map_err(|_| AtcError::Format("meta key \"threshold\" is not a number".into()))?,
            count: parse_u64("count")?,
            chunks: parse_u64("chunks")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let addrs: Vec<u64> = (0..777u64).map(|i| i * 997).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        write_frame(&mut buf, &addrs[..10]).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), addrs);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), &addrs[..10]);
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn truncated_frame_is_error() {
        let addrs: Vec<u64> = (0..100u64).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        buf.truncate(buf.len() - 5);
        let mut cur = &buf[..];
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn record_roundtrip_chunk() {
        let rec = IntervalRecord::NewChunk {
            chunk_id: 42,
            len: 1_000_000,
        };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        let mut cur = &buf[..];
        assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
        assert!(IntervalRecord::read(&mut cur).unwrap().is_none());
    }

    #[test]
    fn record_roundtrip_imitate() {
        let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
        let mut table = [0u8; 256];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as u8).wrapping_add(1);
        }
        translations[2] = Some(Translation::from_table(table).unwrap());
        translations[5] = Some(Translation::identity());
        let rec = IntervalRecord::Imitate {
            chunk_id: 7,
            translations,
        };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        // 1 tag + 1 id + 1 mask + 2*256 tables
        assert_eq!(buf.len(), 3 + 512);
        let mut cur = &buf[..];
        assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [0xEEu8];
        let mut cur = &buf[..];
        assert!(IntervalRecord::read(&mut cur).is_err());
    }

    #[test]
    fn non_permutation_table_rejected() {
        let mut buf = vec![TAG_IMITATE, 1, 0b0000_0001];
        buf.extend_from_slice(&[7u8; 256]); // constant table: not a permutation
        let mut cur = &buf[..];
        assert!(IntervalRecord::read(&mut cur).is_err());
    }

    #[test]
    fn meta_roundtrip() {
        let m = Meta {
            version: FORMAT_VERSION,
            mode: "lossy".into(),
            codec: "bzip".into(),
            buffer: 1_000_000,
            interval_len: 10_000_000,
            threshold: 0.1,
            count: 123_456_789,
            chunks: 17,
        };
        assert_eq!(Meta::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn meta_missing_key() {
        assert!(Meta::parse("version=1\n").is_err());
        assert!(Meta::parse("not a line\n").is_err());
    }

    #[test]
    fn chunk_names_sortable() {
        assert_eq!(chunk_file_name(0), "chunk-000000.atc");
        assert_eq!(chunk_file_name(999_999), "chunk-999999.atc");
        assert!(chunk_file_name(1) < chunk_file_name(2));
    }
}
