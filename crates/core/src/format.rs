//! On-disk container format.
//!
//! An ATC trace is a *directory*, mirroring the original tool (Figure 8 of
//! the paper shows `foobar/1.bz2` + `foobar/INFO.bz2`):
//!
//! ```text
//! trace.atc/
//!   meta              plain-text key=value header (mode, codec, counts …)
//!   data.atc          lossless mode: the whole bytesorted trace, one codec stream
//!   chunk-000000.atc  lossy mode: one file per stored chunk
//!   info.atc          lossy mode: the compressed interval trace (records below)
//! ```
//!
//! Every `.atc` payload is a [`atc_codec::CodecWriter`] stream of the codec
//! named in `meta`. Address payloads are sequences of *frames*:
//! `varint(n) ++ bytesort columns (8·n bytes)`; a frame holds one buffer of
//! at most `buffer` addresses (the paper's `B`).
//!
//! The interval trace (`info.atc`) is a sequence of records:
//!
//! ```text
//! 0x01  varint(chunk_id) varint(len)            -- NewChunk
//! 0x02  varint(chunk_id) u8(mask) [256 B]*      -- Imitate (tables for set bits, ascending j)
//! ```

use std::io::{BufRead, Read, Write};

use atc_codec::{varint, SegmentRecord};

use crate::bytesort::{self, BytesortInverse};
use crate::error::{AtcError, Result};
use crate::hist::{Translation, COLUMNS};

/// Format version recorded in `meta`.
pub const FORMAT_VERSION: u32 = 1;

/// Name of the plain-text header file.
pub const META_FILE: &str = "meta";
/// Name of the lossless payload file.
pub const DATA_FILE: &str = "data.atc";
/// Name of the interval-trace file (lossy mode).
pub const INFO_FILE: &str = "info.atc";
/// Name of the per-trace seek sidecar (lossless mode, written by current
/// tools; tolerated absent on old archives).
pub const SEEK_FILE: &str = "seek.atc";

/// File name for chunk `id`.
pub fn chunk_file_name(id: u64) -> String {
    format!("chunk-{id:06}.atc")
}

/// Record tag: a new chunk was stored.
const TAG_CHUNK: u8 = 0x01;
/// Record tag: an interval imitates an existing chunk.
const TAG_IMITATE: u8 = 0x02;

/// One interval-trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntervalRecord {
    /// The interval was stored as chunk `chunk_id` (`len` addresses).
    NewChunk {
        /// Id of the stored chunk (also names the chunk file).
        chunk_id: u64,
        /// Number of addresses in the chunk.
        len: u64,
    },
    /// The interval is imitated by translating chunk `chunk_id`.
    Imitate {
        /// Id of the imitated chunk.
        chunk_id: u64,
        /// Per-column translations; `None` = identity (raw histograms
        /// already within threshold, the paper's "only if necessary" rule).
        translations: Box<[Option<Translation>; COLUMNS]>,
    },
}

impl IntervalRecord {
    /// Serializes the record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            IntervalRecord::NewChunk { chunk_id, len } => {
                w.write_all(&[TAG_CHUNK])?;
                varint::write_u64(w, *chunk_id)?;
                varint::write_u64(w, *len)?;
            }
            IntervalRecord::Imitate {
                chunk_id,
                translations,
            } => {
                w.write_all(&[TAG_IMITATE])?;
                varint::write_u64(w, *chunk_id)?;
                let mut mask = 0u8;
                for (j, t) in translations.iter().enumerate() {
                    if t.is_some() {
                        mask |= 1 << j;
                    }
                }
                w.write_all(&[mask])?;
                for t in translations.iter().flatten() {
                    w.write_all(t.table())?;
                }
            }
        }
        Ok(())
    }

    /// Reads the next record; `Ok(None)` at clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on unknown tags or invalid translation
    /// tables, and [`AtcError::Io`] on truncated input.
    pub fn read<R: Read>(r: &mut R) -> Result<Option<Self>> {
        let mut tag = [0u8; 1];
        match r.read_exact(&mut tag) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e.into()),
        }
        match tag[0] {
            TAG_CHUNK => {
                let chunk_id = varint::read_u64(r)?;
                let len = varint::read_u64(r)?;
                Ok(Some(IntervalRecord::NewChunk { chunk_id, len }))
            }
            TAG_IMITATE => {
                let chunk_id = varint::read_u64(r)?;
                let mut mask = [0u8; 1];
                r.read_exact(&mut mask)?;
                let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
                for j in 0..COLUMNS {
                    if mask[0] & (1 << j) != 0 {
                        let mut table = [0u8; 256];
                        r.read_exact(&mut table)?;
                        let t = Translation::from_table(table).ok_or_else(|| {
                            AtcError::Format(format!(
                                "translation table for byte {j} is not a permutation"
                            ))
                        })?;
                        translations[j] = Some(t);
                    }
                }
                Ok(Some(IntervalRecord::Imitate {
                    chunk_id,
                    translations,
                }))
            }
            other => Err(AtcError::Format(format!("unknown record tag {other:#x}"))),
        }
    }
}

/// Hard cap on a single frame's declared address count.
///
/// A frame holds one writer buffer (the paper's `B`, typically a few
/// hundred to a few thousand addresses), so 16Mi addresses is far beyond
/// any legitimate trace while still bounding what a forged length can
/// make a reader allocate up front (~24 bytes per address across the
/// column buffers and the bytesort inverse's permutation arrays).
pub const FRAME_MAX_ADDRS: u64 = 1 << 24;

/// Validates a declared frame address count before anything is allocated.
fn check_frame_addrs(n: u64) -> Result<usize> {
    if n > FRAME_MAX_ADDRS {
        return Err(AtcError::Format(format!(
            "declared frame length {n} exceeds the {FRAME_MAX_ADDRS} address cap"
        )));
    }
    Ok(n as usize)
}

/// Writes one bytesorted frame: `varint(n)` followed by the eight columns.
///
/// # Errors
///
/// Propagates I/O errors from `w`; returns [`AtcError::Format`] for a
/// frame above [`FRAME_MAX_ADDRS`] (readers refuse it, so writing it
/// would only produce an unreadable trace).
pub fn write_frame<W: Write>(w: &mut W, addrs: &[u64]) -> Result<()> {
    if addrs.len() as u64 > FRAME_MAX_ADDRS {
        return Err(AtcError::Format(format!(
            "frame of {} addresses exceeds the {FRAME_MAX_ADDRS} cap",
            addrs.len()
        )));
    }
    varint::write_u64(w, addrs.len() as u64)?;
    let cols = bytesort::bytesort_forward(addrs);
    for c in &cols {
        w.write_all(c)?;
    }
    Ok(())
}

/// Reads one bytesorted frame; `Ok(None)` at clean end of stream.
///
/// # Errors
///
/// Returns [`AtcError::Io`] on truncated frames and [`AtcError::Format`] on
/// structurally invalid ones.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u64>>> {
    let n = match try_read_varint(r)? {
        Some(n) => check_frame_addrs(n)?,
        None => return Ok(None),
    };
    // bounded: n was checked against FRAME_MAX_ADDRS above.
    let mut cols = Vec::with_capacity(COLUMNS);
    for _ in 0..COLUMNS {
        // bounded: ditto — at most FRAME_MAX_ADDRS bytes per column.
        let mut col = vec![0u8; n];
        r.read_exact(&mut col)?;
        cols.push(col);
    }
    bytesort::bytesort_inverse(&cols).map(Some)
}

/// Accounting for the borrowed (zero-copy) frame-read path
/// ([`read_frame_borrowed`]): how many column bytes were consumed in place
/// versus copied. The analogue of
/// [`atc_codec::ParallelCodecWriter::scratch_stats`] for the decode side —
/// regression tests pin `copied_bytes == 0` whenever frames do not
/// straddle segment boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameReadStats {
    /// Frames decoded.
    pub frames: u64,
    /// Column bytes fed to the bytesort inverse borrowed straight from
    /// the stream's decoded segment buffer (no copy).
    pub borrowed_bytes: u64,
    /// Column bytes copied into scratch first because the column
    /// straddled a segment boundary.
    pub copied_bytes: u64,
}

/// Reads one bytesorted frame through a buffered stream, feeding each
/// column to `inverse` *borrowed from the stream's internal decoded
/// buffer* whenever the column is contiguous in it; only columns that
/// straddle a segment boundary are copied (into `scratch`, which is
/// reused). Returns `Ok(false)` at clean end of stream; on `Ok(true)` the
/// decoded addresses are in `inverse` (see [`BytesortInverse::finish`]).
///
/// This is the zero-copy path behind `AtcReader::next_frame`: with
/// [`atc_codec::ReadaheadReader`] as the stream, decoded segments travel
/// worker → reassembly buffer → bytesort inverse with no intermediate
/// copy into a caller-owned buffer.
///
/// # Errors
///
/// Same failure modes as [`read_frame`].
pub fn read_frame_borrowed<R: BufRead>(
    r: &mut R,
    inverse: &mut BytesortInverse,
    scratch: &mut Vec<u8>,
    stats: &mut FrameReadStats,
) -> Result<bool> {
    let n = match try_read_varint(r)? {
        Some(n) => check_frame_addrs(n)?,
        None => return Ok(false),
    };
    inverse.begin(n);
    for _ in 0..COLUMNS {
        let buf = r.fill_buf()?;
        if buf.len() >= n {
            // The whole column is visible in the decoded segment buffer:
            // hand it over in place.
            inverse.push_column(&buf[..n])?;
            r.consume(n);
            stats.borrowed_bytes += n as u64;
        } else {
            // The column straddles a segment boundary (or the stream is
            // truncated): stitch it together through the reused scratch.
            // resize alone suffices — shrinking is free and only growth
            // zero-fills, so a warm scratch pays no redundant memset.
            // bounded: n was checked against FRAME_MAX_ADDRS above.
            scratch.resize(n, 0);
            r.read_exact(scratch)?;
            inverse.push_column(scratch)?;
            stats.copied_bytes += n as u64;
        }
    }
    inverse.finish()?;
    stats.frames += 1;
    Ok(true)
}

/// Reads a varint, mapping clean EOF (before the first byte) to `None`.
fn try_read_varint<R: Read>(r: &mut R) -> Result<Option<u64>> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    if first[0] & 0x80 == 0 {
        return Ok(Some(first[0] as u64));
    }
    let mut value = (first[0] & 0x7F) as u64;
    let mut shift = 7u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        value |= ((byte[0] & 0x7F) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(Some(value));
        }
        shift += 7;
        if shift > 63 {
            return Err(AtcError::Format("varint longer than 10 bytes".into()));
        }
    }
}

/// The plain-text `meta` header.
#[derive(Debug, Clone, PartialEq)]
pub struct Meta {
    /// Format version.
    pub version: u32,
    /// `"lossless"` or `"lossy"`.
    pub mode: String,
    /// Back-end codec name (see [`atc_codec::codec_by_name`]).
    pub codec: String,
    /// Bytesort buffer size `B` in addresses.
    pub buffer: u64,
    /// Interval length `L` (lossy mode; 0 in lossless mode).
    pub interval_len: u64,
    /// Similarity threshold ε (lossy mode; 0 in lossless mode).
    pub threshold: f64,
    /// Total number of addresses in the trace.
    pub count: u64,
    /// Number of stored chunks.
    pub chunks: u64,
    /// Number of segments recorded in the trace's [`SEEK_FILE`] sidecar
    /// (`None` = no sidecar: lossy traces, and lossless archives written
    /// before seek support — readers fall back to linear decode).
    pub seek_segments: Option<u64>,
}

impl Meta {
    /// Serializes as `key=value` lines.
    pub fn to_text(&self) -> String {
        let mut text = format!(
            "version={}\nmode={}\ncodec={}\nbuffer={}\ninterval_len={}\nthreshold={}\ncount={}\nchunks={}\n",
            self.version,
            self.mode,
            self.codec,
            self.buffer,
            self.interval_len,
            self.threshold,
            self.count,
            self.chunks
        );
        if let Some(n) = self.seek_segments {
            text.push_str(&format!("seek_segments={n}\n"));
        }
        text
    }

    /// Parses the `meta` file contents.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on missing or malformed keys.
    pub fn parse(text: &str) -> Result<Self> {
        let mut map = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| AtcError::Format(format!("malformed meta line {line:?}")))?;
            map.insert(k.to_string(), v.to_string());
        }
        let get = |k: &str| {
            map.get(k)
                .cloned()
                .ok_or_else(|| AtcError::Format(format!("meta key {k:?} missing")))
        };
        let parse_u64 = |k: &str| -> Result<u64> {
            get(k)?
                .parse()
                .map_err(|_| AtcError::Format(format!("meta key {k:?} is not an integer")))
        };
        Ok(Meta {
            version: parse_u64("version")? as u32,
            mode: get("mode")?,
            codec: get("codec")?,
            buffer: parse_u64("buffer")?,
            interval_len: parse_u64("interval_len")?,
            threshold: get("threshold")?
                .parse()
                .map_err(|_| AtcError::Format("meta key \"threshold\" is not a number".into()))?,
            count: parse_u64("count")?,
            chunks: parse_u64("chunks")?,
            // Optional: absent in archives written before seek support
            // (old parsers ignore unknown keys, so this is symmetric).
            seek_segments: map
                .get("seek_segments")
                .map(|v| {
                    v.parse().map_err(|_| {
                        AtcError::Format("meta key \"seek_segments\" is not an integer".into())
                    })
                })
                .transpose()?,
        })
    }
}

/// Magic prefix of an encoded [`SeekTable`] (the [`SEEK_FILE`] sidecar).
const SEEK_MAGIC: &[u8; 8] = b"ATCSEEK1";

/// The per-stream seek index: one [`SegmentRecord`] per sealed codec
/// segment, in stream order, mapping raw (decoded) byte ranges to the
/// file range holding their compressed form.
///
/// Written as the [`SEEK_FILE`] sidecar next to `data.atc` — for free,
/// since the stream writers already know every segment's offsets as they
/// seal it — and used by readers to jump to any frame in O(log segments)
/// instead of decoding from frame 0. The sidecar is an *optimization*,
/// not part of the trace's integrity story: readers tolerate its absence
/// (old archives) and fall back to linear decode.
///
/// Encoded layout: `"ATCSEEK1"` magic, `varint(segment_count)`, then per
/// segment `varint(compressed_len) varint(raw_len)`, and a little-endian
/// CRC-32 of all preceding bytes. File offsets and raw starts are prefix
/// sums from zero, so they are derived at decode time rather than stored.
///
/// # Examples
///
/// ```
/// use atc_codec::SegmentRecord;
/// use atc_core::format::SeekTable;
///
/// let table = SeekTable::from_records(vec![
///     SegmentRecord { file_offset: 0, compressed_len: 100, raw_len: 4096 },
///     SegmentRecord { file_offset: 100, compressed_len: 80, raw_len: 1000 },
/// ]).unwrap();
/// assert_eq!(table.locate(4095), Some(0));
/// assert_eq!(table.locate(4096), Some(1));
/// assert_eq!(table.locate(5096), None); // past the end
/// assert_eq!(SeekTable::decode(&table.encode()).unwrap(), table);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeekTable {
    segments: Vec<SegmentRecord>,
    /// Raw byte offset where each segment starts (prefix sums of
    /// `raw_len`), kept alongside for binary search.
    raw_starts: Vec<u64>,
}

impl SeekTable {
    /// Builds a table from the records a stream writer handed back
    /// ([`atc_codec::CodecWriter::finish_with_segments`]).
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] if the records are not contiguous
    /// from file offset 0 or contain a zero-raw-length segment — either
    /// means they do not describe one writer's stream.
    pub fn from_records(segments: Vec<SegmentRecord>) -> Result<Self> {
        // bounded: sized by the caller's in-memory records, not by wire
        // input — decode() is the path that reads untrusted bytes.
        let mut raw_starts = Vec::with_capacity(segments.len());
        let mut file_offset = 0u64;
        let mut raw_start = 0u64;
        for (i, s) in segments.iter().enumerate() {
            if s.file_offset != file_offset {
                return Err(AtcError::Format(format!(
                    "seek table: segment {i} starts at file offset {}, expected {file_offset}",
                    s.file_offset
                )));
            }
            if s.raw_len == 0 || s.compressed_len == 0 {
                return Err(AtcError::Format(format!(
                    "seek table: segment {i} has a zero length"
                )));
            }
            raw_starts.push(raw_start);
            file_offset += s.compressed_len;
            raw_start += s.raw_len;
        }
        Ok(Self {
            segments,
            raw_starts,
        })
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True when the stream sealed no segments (an empty trace).
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The per-segment records, stream order.
    pub fn segments(&self) -> &[SegmentRecord] {
        &self.segments
    }

    /// Raw byte offset at which segment `index` starts.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn raw_start(&self, index: usize) -> u64 {
        self.raw_starts[index]
    }

    /// Total decoded bytes across all segments.
    pub fn total_raw_bytes(&self) -> u64 {
        self.raw_starts.last().map_or(0, |&s| s) + self.segments.last().map_or(0, |s| s.raw_len)
    }

    /// Index of the segment containing raw (decoded) byte `raw_offset`,
    /// or `None` when the offset is at or past the end of the stream.
    /// O(log segments).
    pub fn locate(&self, raw_offset: u64) -> Option<usize> {
        if raw_offset >= self.total_raw_bytes() {
            return None;
        }
        Some(self.raw_starts.partition_point(|&s| s <= raw_offset) - 1)
    }

    /// Serializes the table (see the type docs for the layout).
    pub fn encode(&self) -> Vec<u8> {
        // bounded: sized by this table's own in-memory segments — the
        // untrusted direction is decode(), which checks its counts.
        let mut out = Vec::with_capacity(12 + self.segments.len() * 4);
        out.extend_from_slice(SEEK_MAGIC);
        // atclint: allow(library-unwrap) -- infallible: io::Write on a
        // Vec<u8> never errors (the three expects below are the same
        // writer; covered by the file-level reasoning here).
        varint::write_u64(&mut out, self.segments.len() as u64).expect("vec write");
        for s in &self.segments {
            // atclint: allow(library-unwrap) -- infallible: vec write.
            varint::write_u64(&mut out, s.compressed_len).expect("vec write");
            // atclint: allow(library-unwrap) -- infallible: vec write.
            varint::write_u64(&mut out, s.raw_len).expect("vec write");
        }
        let crc = atc_codec::crc::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses [`SeekTable::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on bad magic, CRC mismatch, truncated
    /// or trailing bytes, zero-length segments, or an absurd segment
    /// count. A failed parse means the sidecar is unusable, not that the
    /// trace is — callers fall back to linear decode.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let bad = |what: &str| AtcError::Format(format!("seek table: {what}"));
        if bytes.len() < SEEK_MAGIC.len() + 4 {
            return Err(bad("truncated"));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        // atclint: allow(library-unwrap) -- infallible: split_at above
        // guarantees crc_bytes is exactly 4 bytes.
        let crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if atc_codec::crc::crc32(body) != crc {
            return Err(bad("checksum mismatch"));
        }
        let mut cur = body;
        if &cur[..SEEK_MAGIC.len()] != SEEK_MAGIC {
            return Err(bad("bad magic"));
        }
        cur = &cur[SEEK_MAGIC.len()..];
        let count =
            varint::read_u64(&mut cur).map_err(|_| bad("truncated segment count"))? as usize;
        // 2 bytes minimum per encoded segment: reject absurd counts
        // before reserving memory for them.
        if count > body.len() / 2 {
            return Err(bad("segment count exceeds encoded size"));
        }
        // bounded: count was checked against the encoded size above.
        let mut segments = Vec::with_capacity(count);
        let mut file_offset = 0u64;
        for _ in 0..count {
            let compressed_len =
                varint::read_u64(&mut cur).map_err(|_| bad("truncated compressed length"))?;
            let raw_len = varint::read_u64(&mut cur).map_err(|_| bad("truncated raw length"))?;
            if compressed_len == 0 || raw_len == 0 {
                return Err(bad("zero-length segment"));
            }
            segments.push(SegmentRecord {
                file_offset,
                compressed_len,
                raw_len,
            });
            file_offset += compressed_len;
        }
        if !cur.is_empty() {
            return Err(bad("trailing bytes"));
        }
        Self::from_records(segments)
    }
}

/// Name of the plain-text manifest file at the root of a sharded store.
pub const STORE_MANIFEST_FILE: &str = "store-manifest";

/// Store-manifest format version written by the current tool.
///
/// Version 2 added the optional [`InterleaveTrack`] section; version-1
/// manifests (no track) remain readable — readers fall back to shard
/// concatenation for non-round-robin policies, exactly the pre-track
/// behavior (see `docs/ARCHITECTURE.md`, "The sharded store", for the
/// merge-mode table).
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Lower-case hex encoding (the manifest is a plain-text file, so binary
/// sections ride as hex lines).
fn hex_encode(bytes: &[u8]) -> String {
    // bounded: sized by the caller's in-memory bytes (encode direction).
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        // atclint: allow(library-unwrap) -- infallible: both nibbles are
        // masked to 0..=15, always a valid base-16 digit.
        out.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        // atclint: allow(library-unwrap) -- infallible: ditto.
        out.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    out
}

/// Inverse of [`hex_encode`].
fn hex_decode(text: &str) -> Result<Vec<u8>> {
    let text = text.trim();
    if !text.len().is_multiple_of(2) {
        return Err(AtcError::Format("hex section has odd length".into()));
    }
    let digit = |c: char| {
        c.to_digit(16)
            .ok_or_else(|| AtcError::Format(format!("invalid hex digit {c:?}")))
    };
    // bounded: half the input's own length — cannot exceed it.
    let mut out = Vec::with_capacity(text.len() / 2);
    let mut chars = text.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        out.push(((digit(hi)? << 4) | digit(lo)?) as u8);
    }
    Ok(out)
}

/// The compressed record of a store writer's per-address routing
/// decisions: consecutive addresses routed to the same shard collapse to
/// one run, and the run list `(shard_id, run_len)…` is varint-encoded
/// (the same LEB128 as every other on-disk integer) into the manifest's
/// `interleave=` section.
///
/// With this track a [`StoreReader`](../../atc_store/struct.StoreReader.html)
/// replays the *global* arrival order exactly for **every**
/// `ShardPolicy`, not just round-robin: the merge loop takes `run_len`
/// values from `shard_id`, run by run. Round-robin needs no recorded
/// track — its interleaving is the degenerate constant-run rotation
/// `(0,1) (1,1) … (N-1,1) (0,1) …`, which the reader synthesizes — so
/// writers only record the track for data-dependent policies
/// (`addr-range`, `thread-id`).
///
/// Encoded layout: `varint(run_count)` followed by `run_count` pairs
/// `varint(shard_id) varint(run_len)`.
///
/// # Examples
///
/// ```
/// use atc_core::format::InterleaveTrack;
///
/// let mut t = InterleaveTrack::default();
/// for shard in [0u32, 0, 1, 1, 1, 0] {
///     t.record(shard);
/// }
/// assert_eq!(t.runs(), &[(0, 2), (1, 3), (0, 1)]);
/// let back = InterleaveTrack::decode(&t.encode()).unwrap();
/// assert_eq!(back, t);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InterleaveTrack {
    /// `(shard_id, run_len)` pairs in arrival order.
    runs: Vec<(u32, u64)>,
}

impl InterleaveTrack {
    /// Appends one routing decision, merging it into the last run when
    /// the shard repeats (the RLE step — this is the only way runs are
    /// built, so zero-length runs never exist in a recorded track).
    pub fn record(&mut self, shard: u32) {
        match self.runs.last_mut() {
            Some((s, len)) if *s == shard => *len += 1,
            _ => self.runs.push((shard, 1)),
        }
    }

    /// The recorded `(shard_id, run_len)` runs, arrival order.
    pub fn runs(&self) -> &[(u32, u64)] {
        &self.runs
    }

    /// Total addresses covered by the track (the sum of all run lengths).
    pub fn addresses(&self) -> u64 {
        self.runs.iter().map(|&(_, len)| len).sum()
    }

    /// Length in bytes of [`InterleaveTrack::encode`]'s output, without
    /// materializing it (diagnostics like `atcstore stat` print this for
    /// tracks that may hold millions of runs).
    pub fn encoded_len(&self) -> usize {
        fn varint_len(v: u64) -> usize {
            ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
        }
        varint_len(self.runs.len() as u64)
            + self
                .runs
                .iter()
                .map(|&(shard, len)| varint_len(shard as u64) + varint_len(len))
                .sum::<usize>()
    }

    /// Serializes the track (varint run count, then varint pairs).
    pub fn encode(&self) -> Vec<u8> {
        // bounded: sized by this track's own in-memory runs — the
        // untrusted direction is decode(), which checks its counts.
        let mut out = Vec::with_capacity(2 + self.runs.len() * 3);
        // atclint: allow(library-unwrap) -- infallible: io::Write on a
        // Vec<u8> never errors.
        varint::write_u64(&mut out, self.runs.len() as u64).expect("vec write");
        for &(shard, len) in &self.runs {
            // atclint: allow(library-unwrap) -- infallible: vec write.
            varint::write_u64(&mut out, shard as u64).expect("vec write");
            // atclint: allow(library-unwrap) -- infallible: vec write.
            varint::write_u64(&mut out, len).expect("vec write");
        }
        out
    }

    /// Parses [`InterleaveTrack::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on truncated input, trailing bytes,
    /// zero-length runs, or shard ids beyond `u32`.
    pub fn decode(bytes: &[u8]) -> Result<Self> {
        let mut cur = bytes;
        let bad = |what: &str| AtcError::Format(format!("interleave track: {what}"));
        let run_count =
            varint::read_u64(&mut cur).map_err(|_| bad("truncated run count"))? as usize;
        // 2 bytes minimum per encoded run: reject absurd counts before
        // reserving memory for them.
        if run_count > bytes.len() / 2 {
            return Err(bad("run count exceeds encoded size"));
        }
        // bounded: run_count was checked against the encoded size above.
        let mut runs = Vec::with_capacity(run_count);
        for _ in 0..run_count {
            let shard = varint::read_u64(&mut cur).map_err(|_| bad("truncated shard id"))?;
            let shard = u32::try_from(shard).map_err(|_| bad("shard id exceeds u32"))?;
            let len = varint::read_u64(&mut cur).map_err(|_| bad("truncated run length"))?;
            if len == 0 {
                return Err(bad("zero-length run"));
            }
            runs.push((shard, len));
        }
        if !cur.is_empty() {
            return Err(bad("trailing bytes"));
        }
        Ok(Self { runs })
    }

    /// Checks the track against the manifest's per-shard counts: every
    /// run must name a known shard and each shard's run lengths must sum
    /// to exactly its recorded address count.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] describing the first disagreement.
    pub fn validate(&self, shard_counts: &[u64]) -> Result<()> {
        // bounded: one counter per shard the caller's manifest already
        // holds in memory — not a wire-declared length.
        let mut sums = vec![0u64; shard_counts.len()];
        for &(shard, len) in &self.runs {
            let slot = sums.get_mut(shard as usize).ok_or_else(|| {
                AtcError::Format(format!(
                    "interleave track names shard {shard}, store has {}",
                    shard_counts.len()
                ))
            })?;
            *slot += len;
        }
        for (i, (&got, &expect)) in sums.iter().zip(shard_counts).enumerate() {
            if got != expect {
                return Err(AtcError::Format(format!(
                    "interleave track routes {got} addresses to shard {i}, \
                     manifest says {expect}"
                )));
            }
        }
        Ok(())
    }
}

/// Directory name for shard `index` inside a store root.
pub fn shard_dir_name(index: usize) -> String {
    format!("shard-{index:03}")
}

/// The plain-text `store-manifest` header of a sharded multi-trace store:
/// the multi-directory analogue of [`Meta`].
///
/// A store is a root directory holding one complete ATC trace directory
/// per shard ([`shard_dir_name`]) plus this manifest, which records how
/// addresses were routed so a reader can reassemble the stream:
///
/// ```text
/// store.atc/
///   store-manifest    this header (+ optional interleave= hex section)
///   shard-000/        a complete ATC trace directory (meta, data.atc | chunks)
///   shard-001/
///   ...
/// ```
///
/// Version ≥ 2 manifests may carry an `interleave=` section — the
/// RLE+varint [`InterleaveTrack`] of the writer's routing decisions —
/// which lets the reader replay the exact global arrival order under
/// *any* policy. Manifests without it (version 1, or round-robin at any
/// version) still read: round-robin merges by synthesized rotation, the
/// data-dependent policies by shard concatenation. The full merge-mode
/// table lives in `docs/ARCHITECTURE.md` ("The sharded store").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Manifest format version (see [`STORE_FORMAT_VERSION`]).
    pub version: u32,
    /// Shard-routing policy name, e.g. `"round-robin"`, `"addr-range:12"`,
    /// `"thread-id"` (parsed by the store layer).
    pub policy: String,
    /// Total number of addresses across all shards.
    pub count: u64,
    /// Per-shard address counts, shard 0 first; its length is the shard
    /// count.
    pub shard_counts: Vec<u64>,
    /// Recorded routing interleave (version ≥ 2, data-dependent policies
    /// only): drives exact global-order merged read-back. `None` in old
    /// manifests and for round-robin, whose rotation the reader
    /// synthesizes.
    pub interleave: Option<InterleaveTrack>,
}

impl StoreManifest {
    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_counts.len()
    }

    /// Serializes as `key=value` lines (the interleave section, when
    /// present, rides as one hex line so the file stays plain text).
    pub fn to_text(&self) -> String {
        let counts: Vec<String> = self.shard_counts.iter().map(u64::to_string).collect();
        let mut text = format!(
            "version={}\npolicy={}\ncount={}\nshard_counts={}\n",
            self.version,
            self.policy,
            self.count,
            counts.join(",")
        );
        if let Some(track) = &self.interleave {
            text.push_str("interleave=");
            text.push_str(&hex_encode(&track.encode()));
            text.push('\n');
        }
        text
    }

    /// Parses the `store-manifest` file contents.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on missing or malformed keys, or if
    /// the per-shard counts do not sum to `count`.
    pub fn parse(text: &str) -> Result<Self> {
        let mut map = std::collections::HashMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (k, v) = line
                .split_once('=')
                .ok_or_else(|| AtcError::Format(format!("malformed manifest line {line:?}")))?;
            map.insert(k.to_string(), v.to_string());
        }
        let get = |k: &str| {
            map.get(k)
                .cloned()
                .ok_or_else(|| AtcError::Format(format!("manifest key {k:?} missing")))
        };
        let version: u64 = get("version")?
            .parse()
            .map_err(|_| AtcError::Format("manifest key \"version\" is not an integer".into()))?;
        let count: u64 = get("count")?
            .parse()
            .map_err(|_| AtcError::Format("manifest key \"count\" is not an integer".into()))?;
        let counts_text = get("shard_counts")?;
        let shard_counts: Vec<u64> = if counts_text.is_empty() {
            Vec::new()
        } else {
            counts_text
                .split(',')
                .map(|t| {
                    t.trim().parse().map_err(|_| {
                        AtcError::Format(format!("manifest shard count {t:?} is not an integer"))
                    })
                })
                .collect::<Result<_>>()?
        };
        if shard_counts.is_empty() {
            return Err(AtcError::Format("manifest lists no shards".into()));
        }
        let sum: u64 = shard_counts.iter().sum();
        if sum != count {
            return Err(AtcError::Format(format!(
                "manifest shard counts sum to {sum}, count says {count}"
            )));
        }
        if version > STORE_FORMAT_VERSION as u64 {
            return Err(AtcError::Format(format!(
                "manifest version {version} is newer than this tool's \
                 {STORE_FORMAT_VERSION}"
            )));
        }
        // Absent in version-1 manifests (and for round-robin at any
        // version): readers fall back to their track-less merge.
        let interleave = match map.get("interleave") {
            Some(hex) => {
                let track = InterleaveTrack::decode(&hex_decode(hex)?)?;
                track.validate(&shard_counts)?;
                Some(track)
            }
            None => None,
        };
        Ok(StoreManifest {
            version: version as u32,
            policy: get("policy")?,
            count,
            shard_counts,
            interleave,
        })
    }
}

// ---------------------------------------------------------------------------
// Network protocol (`atcd`)
// ---------------------------------------------------------------------------
//
// The trace service speaks a small length-prefixed binary protocol over
// TCP. A connection opens with a magic exchange (server banner first,
// then the client's copy), after which both directions carry *frames*:
//
// ```text
// varint(len) ++ body          len = body length in bytes, body[0] = tag
// ```
//
// The first request on a connection must be [`NetRequest::Hello`]; the
// server answers [`NetResponse::Hello`] and then serves requests until
// the client closes the socket. Range and shard queries answer with zero
// or more [`NetResponse::Data`] frames followed by one
// [`NetResponse::Done`]; every failure is a [`NetResponse::Error`].
//
// A declared frame length above [`NET_MAX_FRAME`] is a protocol error:
// readers reject it *before* allocating, so a hostile length cannot
// balloon server or client memory.

/// Magic banner exchanged at the start of every `atcd` connection.
pub const NET_MAGIC: [u8; 7] = *b"ATCNET1";

/// Protocol version carried by the `Hello` exchange.
pub const NET_PROTOCOL_VERSION: u32 = 1;

/// Hard cap on any declared frame length (body bytes). Data frames are
/// sized by the server's send window, which is far below this; anything
/// larger is a malformed or hostile frame and is rejected unread.
pub const NET_MAX_FRAME: u64 = 8 << 20;

const NET_REQ_HELLO: u8 = 0x01;
const NET_REQ_STAT: u8 = 0x02;
const NET_REQ_READ_RANGE: u8 = 0x03;
const NET_REQ_STREAM_SHARD: u8 = 0x04;

const NET_RESP_HELLO: u8 = 0x81;
const NET_RESP_STAT: u8 = 0x82;
const NET_RESP_DATA: u8 = 0x83;
const NET_RESP_DONE: u8 = 0x84;
const NET_RESP_ERROR: u8 = 0xFF;

/// Longest `Error` message the encoder will emit (longer ones truncate).
const NET_MAX_ERROR_LEN: usize = 4096;

/// Writes one protocol frame: `varint(body.len()) ++ body`.
///
/// # Errors
///
/// Propagates I/O errors from `w`; refuses bodies above [`NET_MAX_FRAME`].
pub fn write_net_frame<W: Write>(w: &mut W, body: &[u8]) -> Result<()> {
    if body.len() as u64 > NET_MAX_FRAME {
        return Err(AtcError::Format(format!(
            "refusing to send a {} byte frame (cap {NET_MAX_FRAME})",
            body.len()
        )));
    }
    varint::write_u64(w, body.len() as u64)?;
    w.write_all(body)?;
    Ok(())
}

/// Reads one protocol frame body. `Ok(None)` on clean end of stream
/// (EOF before the first length byte).
///
/// # Errors
///
/// Returns [`AtcError::Format`] when the declared length exceeds
/// [`NET_MAX_FRAME`] or the body is empty, and [`AtcError::Io`] on
/// truncated input.
pub fn read_net_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>> {
    let mut first = [0u8; 1];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = if first[0] & 0x80 == 0 {
        u64::from(first[0])
    } else {
        // Continue the varint whose first byte is already consumed.
        let mut value = u64::from(first[0] & 0x7F);
        let mut shift = 7u32;
        loop {
            let mut byte = [0u8; 1];
            r.read_exact(&mut byte)?;
            value |= u64::from(byte[0] & 0x7F) << shift;
            if byte[0] & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                return Err(AtcError::Format("frame length varint overflows".into()));
            }
        }
        value
    };
    net_check_frame_len(len)?;
    // bounded: len was checked against NET_MAX_FRAME just above.
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Validates a declared frame length before anything is allocated.
///
/// # Errors
///
/// Returns [`AtcError::Format`] for empty frames and for lengths above
/// [`NET_MAX_FRAME`].
pub fn net_check_frame_len(len: u64) -> Result<()> {
    if len == 0 {
        return Err(AtcError::Format("empty protocol frame".into()));
    }
    if len > NET_MAX_FRAME {
        return Err(AtcError::Format(format!(
            "declared frame length {len} exceeds the {NET_MAX_FRAME} byte cap"
        )));
    }
    Ok(())
}

/// A client-to-server request record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetRequest {
    /// Opens the session; must be the first request on a connection.
    Hello {
        /// Client protocol version (see [`NET_PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Asks for the store's manifest summary and cache counters.
    StatStore,
    /// Asks for global merged positions `start..end` (half-open).
    ReadRange {
        /// First merged position wanted.
        start: u64,
        /// One past the last merged position wanted.
        end: u64,
    },
    /// Streams shard `shard`'s sub-stream starting at its value `from`.
    StreamShard {
        /// Shard index within the store.
        shard: u32,
        /// First shard-local value position wanted.
        from: u64,
    },
}

impl NetRequest {
    /// Serializes the request as one frame into `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write<W: Write>(&self, w: &mut W) -> Result<()> {
        let mut body = Vec::with_capacity(24);
        match self {
            NetRequest::Hello { version } => {
                body.push(NET_REQ_HELLO);
                varint::write_u64(&mut body, u64::from(*version))?;
            }
            NetRequest::StatStore => body.push(NET_REQ_STAT),
            NetRequest::ReadRange { start, end } => {
                body.push(NET_REQ_READ_RANGE);
                varint::write_u64(&mut body, *start)?;
                varint::write_u64(&mut body, *end)?;
            }
            NetRequest::StreamShard { shard, from } => {
                body.push(NET_REQ_STREAM_SHARD);
                varint::write_u64(&mut body, u64::from(*shard))?;
                varint::write_u64(&mut body, *from)?;
            }
        }
        write_net_frame(w, &body)
    }

    /// Parses a request from a frame body.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on unknown tags, truncated fields,
    /// out-of-range values, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self> {
        let bad = |what: &str| AtcError::Format(format!("net request: {what}"));
        let (&tag, mut cur) = body.split_first().ok_or_else(|| bad("empty frame"))?;
        let req = match tag {
            NET_REQ_HELLO => {
                let version = varint::read_u64(&mut cur).map_err(|_| bad("truncated hello"))?;
                NetRequest::Hello {
                    version: u32::try_from(version)
                        .map_err(|_| bad("hello version exceeds u32"))?,
                }
            }
            NET_REQ_STAT => NetRequest::StatStore,
            NET_REQ_READ_RANGE => NetRequest::ReadRange {
                start: varint::read_u64(&mut cur).map_err(|_| bad("truncated range start"))?,
                end: varint::read_u64(&mut cur).map_err(|_| bad("truncated range end"))?,
            },
            NET_REQ_STREAM_SHARD => NetRequest::StreamShard {
                shard: u32::try_from(
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated shard index"))?,
                )
                .map_err(|_| bad("shard index exceeds u32"))?,
                from: varint::read_u64(&mut cur).map_err(|_| bad("truncated shard offset"))?,
            },
            other => return Err(bad(&format!("unknown request tag {other:#04x}"))),
        };
        if !cur.is_empty() {
            return Err(bad(&format!("{} trailing bytes", cur.len())));
        }
        Ok(req)
    }
}

/// The manifest-summary payload of [`NetResponse::Stat`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetStat {
    /// Store manifest version.
    pub manifest_version: u32,
    /// Shard-routing policy name from the manifest.
    pub policy: String,
    /// Total merged addresses in the store.
    pub count: u64,
    /// Per-shard address counts (length = shard count).
    pub shard_counts: Vec<u64>,
    /// Whether the merged read-back replays exact arrival order.
    pub exact_merge: bool,
    /// Segment-cache hits accumulated since the server started.
    pub cache_hits: u64,
    /// Segment-cache misses accumulated since the server started.
    pub cache_misses: u64,
}

/// A server-to-client response record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetResponse {
    /// Session accepted; carries the server's protocol version.
    Hello {
        /// Server protocol version (see [`NET_PROTOCOL_VERSION`]).
        version: u32,
    },
    /// Manifest summary + cache counters (answers `StatStore`).
    Stat(NetStat),
    /// One window of payload values, little-endian `u64`s.
    Data(Vec<u64>),
    /// Terminates a `Data` stream; `values` totals the preceding frames.
    Done {
        /// Number of values sent across the whole response.
        values: u64,
    },
    /// The request failed; the connection may or may not survive.
    Error {
        /// Human-readable failure description.
        message: String,
    },
}

impl NetResponse {
    /// Serializes the response as one frame into `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; a `Data` frame larger than
    /// [`NET_MAX_FRAME`] is refused (chunk before encoding).
    pub fn write<W: Write>(&self, w: &mut W) -> Result<()> {
        match self {
            NetResponse::Hello { version } => {
                let mut body = Vec::with_capacity(8);
                body.push(NET_RESP_HELLO);
                varint::write_u64(&mut body, u64::from(*version))?;
                write_net_frame(w, &body)
            }
            NetResponse::Stat(stat) => {
                // bounded: sized by the server's own policy string (a
                // short name, never wire input) plus a fixed header.
                let mut body = Vec::with_capacity(64 + stat.policy.len());
                body.push(NET_RESP_STAT);
                varint::write_u64(&mut body, u64::from(stat.manifest_version))?;
                varint::write_u64(&mut body, stat.count)?;
                body.push(u8::from(stat.exact_merge));
                varint::write_u64(&mut body, stat.shard_counts.len() as u64)?;
                for &c in &stat.shard_counts {
                    varint::write_u64(&mut body, c)?;
                }
                varint::write_u64(&mut body, stat.cache_hits)?;
                varint::write_u64(&mut body, stat.cache_misses)?;
                varint::write_u64(&mut body, stat.policy.len() as u64)?;
                body.extend_from_slice(stat.policy.as_bytes());
                write_net_frame(w, &body)
            }
            NetResponse::Data(values) => Self::write_values_frame(w, values),
            NetResponse::Done { values } => {
                let mut body = Vec::with_capacity(12);
                body.push(NET_RESP_DONE);
                varint::write_u64(&mut body, *values)?;
                write_net_frame(w, &body)
            }
            NetResponse::Error { message } => {
                let trimmed = if message.len() > NET_MAX_ERROR_LEN {
                    let mut end = NET_MAX_ERROR_LEN;
                    while !message.is_char_boundary(end) {
                        end -= 1;
                    }
                    &message[..end]
                } else {
                    message.as_str()
                };
                // bounded: trimmed was capped at NET_MAX_ERROR_LEN above.
                let mut body = Vec::with_capacity(1 + trimmed.len());
                body.push(NET_RESP_ERROR);
                body.extend_from_slice(trimmed.as_bytes());
                write_net_frame(w, &body)
            }
        }
    }

    /// Writes one `Data` frame straight from a value slice — the server's
    /// hot path, which never materializes an intermediate byte buffer
    /// beyond the frame itself.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`; refuses slices whose encoding
    /// would exceed [`NET_MAX_FRAME`].
    pub fn write_values_frame<W: Write>(w: &mut W, values: &[u64]) -> Result<()> {
        let body_len = 1 + values.len() as u64 * 8;
        net_check_frame_len(body_len.min(NET_MAX_FRAME + 1))?;
        if body_len > NET_MAX_FRAME {
            return Err(AtcError::Format(format!(
                "data frame of {} values exceeds the frame cap",
                values.len()
            )));
        }
        varint::write_u64(w, body_len)?;
        w.write_all(&[NET_RESP_DATA])?;
        for v in values {
            w.write_all(&v.to_le_bytes())?;
        }
        Ok(())
    }

    /// Parses a response from a frame body.
    ///
    /// # Errors
    ///
    /// Returns [`AtcError::Format`] on unknown tags, truncated fields,
    /// misaligned data payloads, non-UTF-8 error text, or trailing bytes.
    pub fn decode(body: &[u8]) -> Result<Self> {
        let bad = |what: &str| AtcError::Format(format!("net response: {what}"));
        let (&tag, mut cur) = body.split_first().ok_or_else(|| bad("empty frame"))?;
        let resp = match tag {
            NET_RESP_HELLO => NetResponse::Hello {
                version: u32::try_from(
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated hello"))?,
                )
                .map_err(|_| bad("hello version exceeds u32"))?,
            },
            NET_RESP_STAT => {
                let manifest_version = u32::try_from(
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated stat version"))?,
                )
                .map_err(|_| bad("manifest version exceeds u32"))?;
                let count = varint::read_u64(&mut cur).map_err(|_| bad("truncated count"))?;
                let mut flag = [0u8; 1];
                cur.read_exact(&mut flag)
                    .map_err(|_| bad("truncated merge flag"))?;
                let shards =
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated shard count"))?;
                if shards > NET_MAX_FRAME {
                    return Err(bad("absurd shard count"));
                }
                // bounded: the declared count is range-checked above and
                // the reservation is additionally clamped to 64Ki slots;
                // beyond that the Vec grows only as varints actually parse.
                let mut shard_counts = Vec::with_capacity(shards.min(1 << 16) as usize);
                for _ in 0..shards {
                    shard_counts.push(
                        varint::read_u64(&mut cur).map_err(|_| bad("truncated shard counts"))?,
                    );
                }
                let cache_hits =
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated cache hits"))?;
                let cache_misses =
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated cache misses"))?;
                let policy_len =
                    varint::read_u64(&mut cur).map_err(|_| bad("truncated policy length"))?;
                if policy_len != cur.len() as u64 {
                    return Err(bad("policy length disagrees with frame"));
                }
                let policy = std::str::from_utf8(cur)
                    .map_err(|_| bad("policy is not UTF-8"))?
                    .to_string();
                cur = &[];
                NetResponse::Stat(NetStat {
                    manifest_version,
                    policy,
                    count,
                    shard_counts,
                    exact_merge: flag[0] != 0,
                    cache_hits,
                    cache_misses,
                })
            }
            NET_RESP_DATA => {
                if cur.len() % 8 != 0 {
                    return Err(bad(&format!(
                        "data payload of {} bytes is not a whole number of values",
                        cur.len()
                    )));
                }
                let values = cur
                    .chunks_exact(8)
                    // atclint: allow(library-unwrap) -- infallible:
                    // chunks_exact(8) yields only 8-byte slices.
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                cur = &[];
                NetResponse::Data(values)
            }
            NET_RESP_DONE => NetResponse::Done {
                values: varint::read_u64(&mut cur).map_err(|_| bad("truncated done count"))?,
            },
            NET_RESP_ERROR => {
                let message = std::str::from_utf8(cur)
                    .map_err(|_| bad("error text is not UTF-8"))?
                    .to_string();
                cur = &[];
                NetResponse::Error { message }
            }
            other => return Err(bad(&format!("unknown response tag {other:#04x}"))),
        };
        if !cur.is_empty() {
            return Err(bad(&format!("{} trailing bytes", cur.len())));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let addrs: Vec<u64> = (0..777u64).map(|i| i * 997).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        write_frame(&mut buf, &addrs[..10]).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), addrs);
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), &addrs[..10]);
        assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn empty_frame() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        let mut cur = &buf[..];
        assert_eq!(read_frame(&mut cur).unwrap().unwrap(), Vec::<u64>::new());
    }

    #[test]
    fn forged_frame_length_is_rejected_before_allocation() {
        // A forged varint declaring 2^40 addresses must be refused by the
        // length check, not by an attempted ~24 TiB allocation.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 1u64 << 40).unwrap();
        buf.extend_from_slice(&[0u8; 64]);
        let mut cur = &buf[..];
        match read_frame(&mut cur) {
            Err(AtcError::Format(msg)) => assert!(msg.contains("cap"), "{msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        // Exactly at the cap the count itself is acceptable (the read then
        // fails only because the columns are missing, i.e. truncation).
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, FRAME_MAX_ADDRS).unwrap();
        let mut cur = &buf[..];
        assert!(matches!(read_frame(&mut cur), Err(AtcError::Io(_))));
    }

    #[test]
    fn oversized_frame_is_refused_at_write() {
        // Faking the length via a zero-copy slice would need 128 MiB of
        // real addresses; assert on the check with a length-1 slice is not
        // possible, so exercise the boundary arithmetic directly instead.
        assert!(check_frame_addrs(FRAME_MAX_ADDRS).is_ok());
        assert!(check_frame_addrs(FRAME_MAX_ADDRS + 1).is_err());
    }

    #[test]
    fn truncated_frame_is_error() {
        let addrs: Vec<u64> = (0..100u64).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        buf.truncate(buf.len() - 5);
        let mut cur = &buf[..];
        assert!(read_frame(&mut cur).is_err());
    }

    #[test]
    fn record_roundtrip_chunk() {
        let rec = IntervalRecord::NewChunk {
            chunk_id: 42,
            len: 1_000_000,
        };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        let mut cur = &buf[..];
        assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
        assert!(IntervalRecord::read(&mut cur).unwrap().is_none());
    }

    #[test]
    fn record_roundtrip_imitate() {
        let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
        let mut table = [0u8; 256];
        for (i, t) in table.iter_mut().enumerate() {
            *t = (i as u8).wrapping_add(1);
        }
        translations[2] = Some(Translation::from_table(table).unwrap());
        translations[5] = Some(Translation::identity());
        let rec = IntervalRecord::Imitate {
            chunk_id: 7,
            translations,
        };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        // 1 tag + 1 id + 1 mask + 2*256 tables
        assert_eq!(buf.len(), 3 + 512);
        let mut cur = &buf[..];
        assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [0xEEu8];
        let mut cur = &buf[..];
        assert!(IntervalRecord::read(&mut cur).is_err());
    }

    #[test]
    fn non_permutation_table_rejected() {
        let mut buf = vec![TAG_IMITATE, 1, 0b0000_0001];
        buf.extend_from_slice(&[7u8; 256]); // constant table: not a permutation
        let mut cur = &buf[..];
        assert!(IntervalRecord::read(&mut cur).is_err());
    }

    #[test]
    fn borrowed_frame_read_matches_copying_read() {
        let addrs: Vec<u64> = (0..777u64).map(|i| i * 997).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        write_frame(&mut buf, &addrs[..10]).unwrap();
        write_frame(&mut buf, &[]).unwrap();

        // A `&[u8]` is a BufRead whose fill_buf exposes everything at
        // once: every column must ride the borrowed path.
        let mut cur = &buf[..];
        let mut inv = BytesortInverse::default();
        let mut scratch = Vec::new();
        let mut stats = FrameReadStats::default();
        assert!(read_frame_borrowed(&mut cur, &mut inv, &mut scratch, &mut stats).unwrap());
        assert_eq!(inv.finish().unwrap(), &addrs[..]);
        assert!(read_frame_borrowed(&mut cur, &mut inv, &mut scratch, &mut stats).unwrap());
        assert_eq!(inv.finish().unwrap(), &addrs[..10]);
        assert!(read_frame_borrowed(&mut cur, &mut inv, &mut scratch, &mut stats).unwrap());
        assert_eq!(inv.finish().unwrap(), &[] as &[u64]);
        assert!(!read_frame_borrowed(&mut cur, &mut inv, &mut scratch, &mut stats).unwrap());
        assert_eq!(stats.frames, 3);
        assert_eq!(stats.borrowed_bytes, (777 + 10) * 8);
        assert_eq!(stats.copied_bytes, 0);

        // A tiny BufReader window forces every column through the
        // stitching path; the decoded frames must be identical.
        let mut small = std::io::BufReader::with_capacity(7, &buf[..]);
        let mut stats = FrameReadStats::default();
        assert!(read_frame_borrowed(&mut small, &mut inv, &mut scratch, &mut stats).unwrap());
        assert_eq!(inv.finish().unwrap(), &addrs[..]);
        assert!(stats.copied_bytes > 0);
    }

    #[test]
    fn borrowed_frame_read_detects_truncation() {
        let addrs: Vec<u64> = (0..100u64).collect();
        let mut buf = Vec::new();
        write_frame(&mut buf, &addrs).unwrap();
        buf.truncate(buf.len() - 5);
        let mut cur = &buf[..];
        let mut inv = BytesortInverse::default();
        let mut scratch = Vec::new();
        let mut stats = FrameReadStats::default();
        assert!(read_frame_borrowed(&mut cur, &mut inv, &mut scratch, &mut stats).is_err());
    }

    #[test]
    fn store_manifest_roundtrip() {
        let m = StoreManifest {
            version: FORMAT_VERSION,
            policy: "addr-range:12".into(),
            count: 60,
            shard_counts: vec![10, 20, 30],
            interleave: None,
        };
        let back = StoreManifest::parse(&m.to_text()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.shards(), 3);
    }

    #[test]
    fn store_manifest_roundtrips_interleave_track() {
        let mut track = InterleaveTrack::default();
        for shard in [0u32, 0, 0, 2, 2, 1, 0] {
            track.record(shard);
        }
        let m = StoreManifest {
            version: STORE_FORMAT_VERSION,
            policy: "addr-range:12".into(),
            count: 7,
            shard_counts: vec![4, 1, 2],
            interleave: Some(track.clone()),
        };
        let text = m.to_text();
        assert!(text.contains("interleave="), "track rides as a hex line");
        let back = StoreManifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.interleave.unwrap().runs(), track.runs());
    }

    #[test]
    fn store_manifest_rejects_bad_input() {
        assert!(StoreManifest::parse("version=1\n").is_err(), "missing keys");
        let no_shards = "version=1\npolicy=round-robin\ncount=0\nshard_counts=\n";
        assert!(StoreManifest::parse(no_shards).is_err(), "no shards");
        let bad_sum = "version=1\npolicy=round-robin\ncount=5\nshard_counts=1,2\n";
        assert!(StoreManifest::parse(bad_sum).is_err(), "counts don't sum");
        let future = "version=99\npolicy=round-robin\ncount=3\nshard_counts=1,2\n";
        assert!(StoreManifest::parse(future).is_err(), "future version");
        let bad_hex = "version=2\npolicy=thread-id\ncount=3\nshard_counts=1,2\ninterleave=zz\n";
        assert!(StoreManifest::parse(bad_hex).is_err(), "bad hex");
        // Track routes 3 addresses to shard 0; shard_counts disagree.
        let mut t = InterleaveTrack::default();
        for _ in 0..3 {
            t.record(0);
        }
        let lying = format!(
            "version=2\npolicy=thread-id\ncount=3\nshard_counts=1,2\ninterleave={}\n",
            hex_encode(&t.encode())
        );
        assert!(
            StoreManifest::parse(&lying).is_err(),
            "track/count disagreement"
        );
    }

    #[test]
    fn interleave_track_records_and_roundtrips() {
        let mut t = InterleaveTrack::default();
        assert_eq!(t.addresses(), 0);
        assert_eq!(InterleaveTrack::decode(&t.encode()).unwrap(), t);
        for shard in [3u32, 3, 3, 0, 1, 1, 3] {
            t.record(shard);
        }
        assert_eq!(t.runs(), &[(3, 3), (0, 1), (1, 2), (3, 1)]);
        assert_eq!(t.addresses(), 7);
        assert_eq!(InterleaveTrack::decode(&t.encode()).unwrap(), t);
        assert_eq!(t.encoded_len(), t.encode().len());
        // Multi-byte varints (shard 300, run length 5 M) count correctly.
        let mut wide = InterleaveTrack::default();
        for _ in 0..5_000_000u64 {
            wide.record(300);
        }
        wide.record(0);
        assert_eq!(wide.encoded_len(), wide.encode().len());
        assert_eq!(InterleaveTrack::default().encoded_len(), 1);
        assert!(t.validate(&[1, 2, 0, 4]).is_ok());
        assert!(t.validate(&[1, 2, 0]).is_err(), "unknown shard id");
        assert!(t.validate(&[2, 2, 0, 4]).is_err(), "per-shard sum mismatch");
    }

    #[test]
    fn interleave_track_decode_rejects_malformed() {
        let mut t = InterleaveTrack::default();
        t.record(1);
        t.record(2);
        let good = t.encode();
        assert!(InterleaveTrack::decode(&good[..good.len() - 1]).is_err());
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(InterleaveTrack::decode(&trailing).is_err());
        // varint(1 run), shard 0, run length 0.
        assert!(InterleaveTrack::decode(&[1, 0, 0]).is_err(), "zero run");
        // Claimed run count far beyond the bytes backing it.
        let mut absurd = Vec::new();
        varint::write_u64(&mut absurd, u64::MAX).unwrap();
        assert!(InterleaveTrack::decode(&absurd).is_err());
    }

    #[test]
    fn hex_roundtrip() {
        let bytes: Vec<u8> = (0..=255u8).collect();
        assert_eq!(hex_decode(&hex_encode(&bytes)).unwrap(), bytes);
        assert_eq!(hex_encode(&[]), "");
        assert_eq!(hex_decode("").unwrap(), Vec::<u8>::new());
        assert!(hex_decode("abc").is_err(), "odd length");
        assert!(hex_decode("zz").is_err(), "non-hex digit");
    }

    #[test]
    fn shard_names_sortable() {
        assert_eq!(shard_dir_name(0), "shard-000");
        assert_eq!(shard_dir_name(999), "shard-999");
        assert!(shard_dir_name(1) < shard_dir_name(2));
    }

    #[test]
    fn meta_roundtrip() {
        let m = Meta {
            version: FORMAT_VERSION,
            mode: "lossy".into(),
            codec: "bzip".into(),
            buffer: 1_000_000,
            interval_len: 10_000_000,
            threshold: 0.1,
            count: 123_456_789,
            chunks: 17,
            seek_segments: None,
        };
        let text = m.to_text();
        assert!(
            !text.contains("seek_segments"),
            "sidecar-less meta stays byte-identical to the old format"
        );
        assert_eq!(Meta::parse(&text).unwrap(), m);
        let with_seek = Meta {
            seek_segments: Some(42),
            ..m
        };
        assert_eq!(Meta::parse(&with_seek.to_text()).unwrap(), with_seek);
        assert!(Meta::parse("version=1\nmode=lossless\ncodec=bzip\nbuffer=1\ninterval_len=0\nthreshold=0\ncount=0\nchunks=0\nseek_segments=x\n").is_err());
    }

    #[test]
    fn seek_table_roundtrips_and_locates() {
        let recs = vec![
            SegmentRecord {
                file_offset: 0,
                compressed_len: 1000,
                raw_len: 4096,
            },
            SegmentRecord {
                file_offset: 1000,
                compressed_len: 7,
                raw_len: 4096,
            },
            SegmentRecord {
                file_offset: 1007,
                compressed_len: 300,
                raw_len: 1809,
            },
        ];
        let t = SeekTable::from_records(recs.clone()).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.segments(), &recs[..]);
        assert_eq!(t.total_raw_bytes(), 4096 + 4096 + 1809);
        assert_eq!(t.raw_start(0), 0);
        assert_eq!(t.raw_start(1), 4096);
        assert_eq!(t.raw_start(2), 8192);
        assert_eq!(t.locate(0), Some(0));
        assert_eq!(t.locate(4095), Some(0));
        assert_eq!(t.locate(4096), Some(1));
        assert_eq!(t.locate(8192), Some(2));
        assert_eq!(t.locate(10_000), Some(2));
        assert_eq!(t.locate(10_001), None);
        assert_eq!(SeekTable::decode(&t.encode()).unwrap(), t);

        let empty = SeekTable::default();
        assert!(empty.is_empty());
        assert_eq!(empty.total_raw_bytes(), 0);
        assert_eq!(empty.locate(0), None);
        assert_eq!(SeekTable::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn seek_table_rejects_malformed() {
        let t = SeekTable::from_records(vec![SegmentRecord {
            file_offset: 0,
            compressed_len: 10,
            raw_len: 100,
        }])
        .unwrap();
        let good = t.encode();
        assert!(SeekTable::decode(&good[..good.len() - 1]).is_err(), "short");
        let mut flipped = good.clone();
        flipped[9] ^= 1;
        assert!(SeekTable::decode(&flipped).is_err(), "crc catches edits");
        let mut trailing = good.clone();
        let crc_at = trailing.len() - 4;
        trailing.insert(crc_at, 0);
        assert!(SeekTable::decode(&trailing).is_err(), "trailing bytes");
        let mut bad_magic = good.clone();
        bad_magic[0] = b'X';
        assert!(SeekTable::decode(&bad_magic).is_err(), "bad magic");
        assert!(SeekTable::decode(b"").is_err(), "empty input");

        // Builder-side validation: gaps and zero lengths are rejected.
        assert!(SeekTable::from_records(vec![SegmentRecord {
            file_offset: 5,
            compressed_len: 10,
            raw_len: 100,
        }])
        .is_err());
        assert!(SeekTable::from_records(vec![SegmentRecord {
            file_offset: 0,
            compressed_len: 10,
            raw_len: 0,
        }])
        .is_err());
    }

    #[test]
    fn meta_missing_key() {
        assert!(Meta::parse("version=1\n").is_err());
        assert!(Meta::parse("not a line\n").is_err());
    }

    #[test]
    fn chunk_names_sortable() {
        assert_eq!(chunk_file_name(0), "chunk-000000.atc");
        assert_eq!(chunk_file_name(999_999), "chunk-999999.atc");
        assert!(chunk_file_name(1) < chunk_file_name(2));
    }

    fn req_roundtrip(req: &NetRequest) -> NetRequest {
        let mut buf = Vec::new();
        req.write(&mut buf).unwrap();
        let mut cur = buf.as_slice();
        let body = read_net_frame(&mut cur).unwrap().unwrap();
        assert!(cur.is_empty(), "one frame, nothing after");
        NetRequest::decode(&body).unwrap()
    }

    fn resp_roundtrip(resp: &NetResponse) -> NetResponse {
        let mut buf = Vec::new();
        resp.write(&mut buf).unwrap();
        let mut cur = buf.as_slice();
        let body = read_net_frame(&mut cur).unwrap().unwrap();
        assert!(cur.is_empty(), "one frame, nothing after");
        NetResponse::decode(&body).unwrap()
    }

    #[test]
    fn net_request_roundtrip() {
        for req in [
            NetRequest::Hello {
                version: NET_PROTOCOL_VERSION,
            },
            NetRequest::StatStore,
            NetRequest::ReadRange { start: 0, end: 0 },
            NetRequest::ReadRange {
                start: 12_345,
                end: u64::MAX,
            },
            NetRequest::StreamShard {
                shard: u32::MAX,
                from: 1 << 40,
            },
        ] {
            assert_eq!(req_roundtrip(&req), req);
        }
    }

    #[test]
    fn net_response_roundtrip() {
        for resp in [
            NetResponse::Hello {
                version: NET_PROTOCOL_VERSION,
            },
            NetResponse::Stat(NetStat {
                manifest_version: 1,
                policy: "addr-range:6".into(),
                count: 1 << 33,
                shard_counts: vec![3, 0, 1 << 33],
                exact_merge: true,
                cache_hits: 17,
                cache_misses: 4,
            }),
            NetResponse::Data(vec![]),
            NetResponse::Data(vec![0, u64::MAX, 0xdead_beef]),
            NetResponse::Done { values: 987 },
            NetResponse::Error {
                message: "no such shard".into(),
            },
        ] {
            assert_eq!(resp_roundtrip(&resp), resp);
        }
    }

    #[test]
    fn net_frame_clean_eof_vs_truncation() {
        // EOF before any length byte: a clean close.
        assert!(read_net_frame(&mut &[][..]).unwrap().is_none());
        // A declared length with a short body: an error, not a clean close.
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, 10).unwrap();
        buf.extend_from_slice(&[1, 2, 3]);
        assert!(read_net_frame(&mut buf.as_slice()).is_err());
        // Truncated mid-varint likewise.
        assert!(read_net_frame(&mut &[0x80u8][..]).is_err());
    }

    #[test]
    fn net_frame_rejects_oversized_and_empty_lengths() {
        let mut buf = Vec::new();
        varint::write_u64(&mut buf, NET_MAX_FRAME + 1).unwrap();
        let err = read_net_frame(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
        let mut zero = Vec::new();
        varint::write_u64(&mut zero, 0).unwrap();
        assert!(read_net_frame(&mut zero.as_slice()).is_err());
        // The writer refuses to produce an oversized frame too.
        let big = vec![0u8; NET_MAX_FRAME as usize + 1];
        assert!(write_net_frame(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn net_decode_rejects_malformed_bodies() {
        // Unknown tags, both directions.
        assert!(NetRequest::decode(&[0x7E]).is_err());
        assert!(NetResponse::decode(&[0x42]).is_err());
        // Empty bodies.
        assert!(NetRequest::decode(&[]).is_err());
        assert!(NetResponse::decode(&[]).is_err());
        // Truncated fields.
        assert!(NetRequest::decode(&[NET_REQ_READ_RANGE, 0x05]).is_err());
        assert!(NetResponse::decode(&[NET_RESP_DONE]).is_err());
        // Trailing bytes after a complete record.
        assert!(NetRequest::decode(&[NET_REQ_STAT, 0x00]).is_err());
        let mut done = vec![NET_RESP_DONE];
        varint::write_u64(&mut done, 3).unwrap();
        done.push(0xEE);
        assert!(NetResponse::decode(&done).is_err());
        // Data payload not a multiple of 8.
        assert!(NetResponse::decode(&[NET_RESP_DATA, 1, 2, 3]).is_err());
        // Error text must be UTF-8.
        assert!(NetResponse::decode(&[NET_RESP_ERROR, 0xFF, 0xFE]).is_err());
    }

    #[test]
    fn net_error_messages_truncate() {
        let resp = NetResponse::Error {
            message: "x".repeat(10_000),
        };
        match resp_roundtrip(&resp) {
            NetResponse::Error { message } => assert_eq!(message.len(), 4096),
            other => panic!("expected Error, got {other:?}"),
        }
    }

    #[test]
    fn net_data_frame_matches_write_values_frame() {
        let values = [5u64, 6, 7];
        let mut via_enum = Vec::new();
        NetResponse::Data(values.to_vec())
            .write(&mut via_enum)
            .unwrap();
        let mut via_slice = Vec::new();
        NetResponse::write_values_frame(&mut via_slice, &values).unwrap();
        assert_eq!(via_enum, via_slice);
    }
}
