//! Sorted byte-histograms, interval distance, and byte translations (§5.1).
//!
//! An interval of `L` addresses is characterised by eight byte-histograms
//! `h[j]` (`h[j][i]` = number of addresses whose byte *j* equals *i*). The
//! *sorted* histogram `h'[j]` is `h[j]` sorted in decreasing order by a
//! stable sort; the permutation `p[j]` performing the sort maps sorted rank
//! to byte value (`p[j][0]` is the most frequent byte of order *j*).
//!
//! Two intervals are compared by
//! `D(A,B) = max_j d(h'_A[j], h'_B[j])` with
//! `d(h_a, h_b) = (1/L) Σ_i |h_a(i) − h_b(i)| ∈ [0, 2]`,
//! and an interval *looks like* a previous one when `D < ε`.
//!
//! When chunk `A` imitates interval `B`, the byte translation
//! `t[j][p_A[j][i]] = p_B[j][i]` remaps each byte so the most frequent byte
//! of `A` becomes the most frequent byte of `B`, and so on — this is what
//! defeats the *myopic interval problem*.
//!
//! # Examples
//!
//! ```
//! use atc_core::hist::ByteHistograms;
//!
//! // Two intervals with identical structure in disjoint regions ...
//! let a: Vec<u64> = (0..256).map(|i| 0xF200 + i).collect();
//! let b: Vec<u64> = (0..256).map(|i| 0xF300 + i).collect();
//! let ha = ByteHistograms::from_addrs(&a);
//! let hb = ByteHistograms::from_addrs(&b);
//! // ... are at distance zero after sorting (the paper's §5.1 example).
//! assert_eq!(ha.sorted().distance(&hb.sorted()), 0.0);
//! ```

/// Number of byte columns.
pub const COLUMNS: usize = 8;

/// Raw (unsorted) byte-histograms of an interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ByteHistograms {
    counts: [[u32; 256]; COLUMNS],
    len: u64,
}

impl ByteHistograms {
    /// Computes the eight byte-histograms of `addrs`.
    pub fn from_addrs(addrs: &[u64]) -> Self {
        let mut counts = [[0u32; 256]; COLUMNS];
        for &a in addrs {
            for (j, col) in counts.iter_mut().enumerate() {
                col[((a >> (8 * j)) & 0xFF) as usize] += 1;
            }
        }
        Self {
            counts,
            len: addrs.len() as u64,
        }
    }

    /// Number of addresses histogrammed.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if built from an empty interval.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The raw histogram of byte order `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 8`.
    pub fn column(&self, j: usize) -> &[u32; 256] {
        &self.counts[j]
    }

    /// Distance between the raw histograms of byte order `j` of `self` and
    /// `other`: `(1/L) Σ_i |h_a(i) − h_b(i)|`.
    ///
    /// Used to decide, per byte order, whether a translation is necessary
    /// at imitation time.
    pub fn column_distance(&self, other: &Self, j: usize) -> f64 {
        hist_l1(&self.counts[j], &other.counts[j]) / self.len.max(other.len).max(1) as f64
    }

    /// Sorts every column, producing the interval signature.
    pub fn sorted(&self) -> SortedHistograms {
        let mut sorted = [[0u32; 256]; COLUMNS];
        let mut perm = [[0u8; 256]; COLUMNS];
        for j in 0..COLUMNS {
            // Stable descending sort: ties keep smaller byte value first
            // (the paper's p[j](i1) < p[j](i2) tie rule).
            let mut idx: [u16; 256] = std::array::from_fn(|i| i as u16);
            idx.sort_by_key(|&i| std::cmp::Reverse(self.counts[j][i as usize]));
            for (rank, &byte) in idx.iter().enumerate() {
                sorted[j][rank] = self.counts[j][byte as usize];
                perm[j][rank] = byte as u8;
            }
        }
        SortedHistograms {
            sorted,
            perm,
            len: self.len,
        }
    }
}

/// L1 distance between two 256-bin histograms.
fn hist_l1(a: &[u32; 256], b: &[u32; 256]) -> f64 {
    let mut sum = 0u64;
    for i in 0..256 {
        sum += a[i].abs_diff(b[i]) as u64;
    }
    sum as f64
}

/// Sorted byte-histograms: the interval signature stored in the chunk table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedHistograms {
    sorted: [[u32; 256]; COLUMNS],
    /// `perm[j][rank]` = byte value at this sorted rank (the paper's `p[j]`).
    perm: [[u8; 256]; COLUMNS],
    len: u64,
}

impl SortedHistograms {
    /// Number of addresses in the underlying interval.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if built from an empty interval.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The paper's `p[j]` permutation: sorted rank → byte value.
    ///
    /// # Panics
    ///
    /// Panics if `j >= 8`.
    pub fn permutation(&self, j: usize) -> &[u8; 256] {
        &self.perm[j]
    }

    /// Distance `d(h'_a[j], h'_b[j])` between sorted histograms of order `j`.
    pub fn column_distance(&self, other: &Self, j: usize) -> f64 {
        hist_l1(&self.sorted[j], &other.sorted[j]) / self.len.max(other.len).max(1) as f64
    }

    /// The paper's interval distance `D = max_j d_j` (equation 2).
    ///
    /// Always in `[0, 2]`.
    pub fn distance(&self, other: &Self) -> f64 {
        (0..COLUMNS)
            .map(|j| self.column_distance(other, j))
            .fold(0.0, f64::max)
    }
}

/// A byte translation `t[j]`: a permutation of `[0, 255]` remapping chunk
/// bytes onto interval bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    table: [u8; 256],
}

impl Translation {
    /// Builds `t` such that `t[p_a[i]] = p_b[i]` (the paper's definition):
    /// the i-th most frequent byte of the chunk maps to the i-th most
    /// frequent byte of the interval.
    pub fn between(pa: &[u8; 256], pb: &[u8; 256]) -> Self {
        let mut table = [0u8; 256];
        for i in 0..256 {
            table[pa[i] as usize] = pb[i];
        }
        Self { table }
    }

    /// The identity translation.
    pub fn identity() -> Self {
        Self {
            table: std::array::from_fn(|i| i as u8),
        }
    }

    /// Creates a translation from a raw table.
    ///
    /// Returns `None` if `table` is not a permutation of `[0, 255]`.
    pub fn from_table(table: [u8; 256]) -> Option<Self> {
        let mut seen = [false; 256];
        for &b in &table {
            if seen[b as usize] {
                return None;
            }
            seen[b as usize] = true;
        }
        Some(Self { table })
    }

    /// The raw 256-byte table (serialised verbatim in the interval trace,
    /// "completely described with 8 × 256 bytes" per §5.2).
    pub fn table(&self) -> &[u8; 256] {
        &self.table
    }

    /// Translates one byte.
    #[inline]
    pub fn map(&self, byte: u8) -> u8 {
        self.table[byte as usize]
    }

    /// True if this is the identity mapping.
    pub fn is_identity(&self) -> bool {
        self.table.iter().enumerate().all(|(i, &b)| i as u8 == b)
    }
}

/// Applies per-column translations to an address: byte `j` is remapped by
/// `translations[j]` when present.
pub fn translate_addr(addr: u64, translations: &[Option<Translation>; COLUMNS]) -> u64 {
    let mut out = 0u64;
    for (j, t) in translations.iter().enumerate() {
        let byte = ((addr >> (8 * j)) & 0xFF) as u8;
        let mapped = match t {
            Some(t) => t.map(byte),
            None => byte,
        };
        out |= (mapped as u64) << (8 * j);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_counts() {
        let h = ByteHistograms::from_addrs(&[0x0102, 0x0103, 0x0104]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.column(1)[0x01], 3);
        assert_eq!(h.column(0)[0x02], 1);
        assert_eq!(h.column(0)[0x03], 1);
        assert_eq!(h.column(0)[0x04], 1);
        assert_eq!(h.column(7)[0x00], 3);
    }

    #[test]
    fn distance_is_metric_like() {
        let a = ByteHistograms::from_addrs(&(0..100u64).collect::<Vec<_>>()).sorted();
        let b = ByteHistograms::from_addrs(&(50..150u64).collect::<Vec<_>>()).sorted();
        let c =
            ByteHistograms::from_addrs(&(0..100u64).map(|i| i * 3).collect::<Vec<_>>()).sorted();
        // Identity.
        assert_eq!(a.distance(&a), 0.0);
        // Symmetry.
        assert_eq!(a.distance(&b), b.distance(&a));
        // Bounds.
        for (x, y) in [(&a, &b), (&a, &c), (&b, &c)] {
            let d = x.distance(y);
            assert!((0.0..=2.0).contains(&d), "d={d}");
        }
    }

    #[test]
    fn disjoint_regions_max_distance() {
        // Completely different byte values in column 0 -> distance 2 on raw
        // histograms but 0 on sorted (same shape).
        let a = ByteHistograms::from_addrs(&vec![0x11u64; 100]);
        let b = ByteHistograms::from_addrs(&vec![0x22u64; 100]);
        assert_eq!(a.column_distance(&b, 0), 2.0);
        assert_eq!(a.sorted().distance(&b.sorted()), 0.0);
    }

    #[test]
    fn paper_example_f2_to_f3() {
        // §5.1: A = F200..F2FF, B = F300..F3FF. D(A,B) = 0 and the byte-1
        // translation maps F2 -> F3 and fixes everything else's order.
        let a: Vec<u64> = (0..256).map(|i| 0xF200 + i).collect();
        let b: Vec<u64> = (0..256).map(|i| 0xF300 + i).collect();
        let ha = ByteHistograms::from_addrs(&a);
        let hb = ByteHistograms::from_addrs(&b);
        let sa = ha.sorted();
        let sb = hb.sorted();
        assert_eq!(sa.distance(&sb), 0.0);
        // Column 1 raw distance is 2 (completely different byte values), so
        // translation is needed there.
        assert_eq!(ha.column_distance(&hb, 1), 2.0);
        // Column 0 raw distance is 0: bytes 00..FF appear once each in both.
        assert_eq!(ha.column_distance(&hb, 0), 0.0);
        // p_A[1][0] must be F2 (most frequent byte of order 1 in A).
        assert_eq!(sa.permutation(1)[0], 0xF2);
        assert_eq!(sb.permutation(1)[0], 0xF3);
        let t = Translation::between(sa.permutation(1), sb.permutation(1));
        assert_eq!(t.map(0xF2), 0xF3);
        // Translating A's addresses reproduces B exactly on byte 1.
        let mut translations: [Option<Translation>; COLUMNS] = Default::default();
        translations[1] = Some(t);
        let translated: Vec<u64> = a
            .iter()
            .map(|&x| translate_addr(x, &translations))
            .collect();
        assert_eq!(translated, b);
    }

    #[test]
    fn translation_is_permutation() {
        let a: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let b: Vec<u64> = (0..1000u64).map(|i| i.wrapping_mul(0x85EB_CA6B)).collect();
        let sa = ByteHistograms::from_addrs(&a).sorted();
        let sb = ByteHistograms::from_addrs(&b).sorted();
        for j in 0..COLUMNS {
            let t = Translation::between(sa.permutation(j), sb.permutation(j));
            assert!(Translation::from_table(*t.table()).is_some(), "column {j}");
        }
    }

    #[test]
    fn ties_broken_by_byte_value() {
        // All bytes appear equally often: permutation must be the identity.
        let addrs: Vec<u64> = (0..256u64).collect();
        let s = ByteHistograms::from_addrs(&addrs).sorted();
        for i in 0..256 {
            assert_eq!(s.permutation(0)[i], i as u8);
        }
    }

    #[test]
    fn identity_translation() {
        let t = Translation::identity();
        assert!(t.is_identity());
        for b in 0..=255u8 {
            assert_eq!(t.map(b), b);
        }
        let mut bad = [0u8; 256];
        bad[1] = 0; // duplicate 0
        assert!(Translation::from_table(bad).is_none());
    }

    #[test]
    fn empty_interval() {
        let h = ByteHistograms::from_addrs(&[]);
        assert!(h.is_empty());
        let s = h.sorted();
        assert_eq!(s.distance(&s), 0.0);
    }

    #[test]
    fn translate_addr_untouched_columns() {
        let translations: [Option<Translation>; COLUMNS] = Default::default();
        assert_eq!(translate_addr(0xDEAD_BEEF, &translations), 0xDEAD_BEEF);
    }
}
