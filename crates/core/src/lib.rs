//! # atc-core — the ATC address-trace compressor
//!
//! Implementation of the two contributions of Pierre Michaud's ISPASS 2009
//! paper *Online compression of cache-filtered address traces*, combined in
//! a streaming compressor with the original tool's four-call shape:
//!
//! * **Bytesort** ([`bytesort`]) — a reversible transformation on buffers
//!   of 64-bit addresses that exposes cross-region regularity to byte-level
//!   compressors (§4 of the paper).
//! * **Sorted byte-histograms** ([`hist`]) — interval signatures, the
//!   `D(A,B)` distance, and byte translations that defeat the
//!   myopic-interval problem (§5.1).
//! * **Lossy phase compression** ([`lossy`]) — single-pass online interval
//!   classification with a FIFO chunk table (§5.2).
//! * **The ATC container** ([`AtcWriter`] / [`AtcReader`], [`mod@format`]) —
//!   the directory format (chunk files + interval trace + header) with a
//!   pluggable byte-level back end from [`atc_codec`].
//!
//! # Examples
//!
//! Lossy-compress a trace whose intervals repeat (the paper's Figure 8
//! scenario — a stationary trace collapses to one chunk):
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use atc_core::{AtcOptions, AtcReader, AtcWriter, LossyConfig, Mode};
//!
//! let dir = std::env::temp_dir().join("atc-lib-doc");
//! # let _ = std::fs::remove_dir_all(&dir);
//! let cfg = LossyConfig { interval_len: 1000, ..LossyConfig::default() };
//! let mut w = AtcWriter::with_options(&dir, Mode::Lossy(cfg), AtcOptions::default())?;
//! for lap in 0..10u64 {
//!     let _ = lap;
//!     for i in 0..1000u64 {
//!         w.code(0x4000_0000 + i * 64)?;
//!     }
//! }
//! let stats = w.finish()?;
//! assert_eq!(stats.chunks, 1);
//! assert_eq!(stats.imitations, 9);
//!
//! let mut r = AtcReader::open(&dir)?;
//! assert_eq!(r.decode_all()?.len(), 10_000);
//! # std::fs::remove_dir_all(&dir)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bytesort;
mod error;
pub mod format;
pub mod hist;
pub mod lossy;
mod reader;
mod verify;
mod writer;

pub use error::{AtcError, Result};
pub use format::{FrameReadStats, StoreManifest};
pub use lossy::{Classification, LossyConfig, PhaseClassifier};
pub use reader::{AtcReader, ReadOptions, Values, DEFAULT_CHUNK_CACHE};
pub use verify::{verify, VerifyReport};
pub use writer::{AtcOptions, AtcStats, AtcWriter, Mode};
