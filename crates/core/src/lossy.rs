//! Online phase classification for lossy compression (§5.2).
//!
//! The trace is cut into intervals of `L` addresses. Each finished interval
//! is compared — via the sorted byte-histogram distance of
//! [`crate::hist`] — against the histograms of previously stored *chunks*.
//! If the best match is within threshold ε the interval is *imitated*
//! (recorded as a chunk id plus byte translations); otherwise the interval
//! becomes a new chunk, losslessly bytesort-compressed on disk, and its
//! histograms enter the chunk table. The table is capacity-bounded: when
//! full, the *oldest* chunk's entry is evicted (the chunk file itself stays
//! on disk, since already-written interval records may reference it).
//!
//! # Examples
//!
//! ```
//! use atc_core::lossy::{Classification, LossyConfig, PhaseClassifier};
//!
//! let mut cls = PhaseClassifier::new(LossyConfig::default());
//! let interval_a: Vec<u64> = (0..1000).map(|i| 0xF200_0000 + i).collect();
//! let interval_b: Vec<u64> = (0..1000).map(|i| 0xF300_0000 + i).collect();
//!
//! // First interval always becomes a chunk.
//! assert!(matches!(cls.classify(&interval_a, 0), Classification::NewChunk));
//! // A shifted copy imitates it via byte translation.
//! assert!(matches!(cls.classify(&interval_b, 1), Classification::Imitate { chunk_id: 0, .. }));
//! ```

use std::collections::VecDeque;

use crate::hist::{ByteHistograms, SortedHistograms, Translation, COLUMNS};

/// Configuration of the lossy compression scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct LossyConfig {
    /// Interval length `L` in addresses (the paper uses 10 M).
    pub interval_len: usize,
    /// Similarity threshold ε (the paper finds 0.1 is a good default).
    pub threshold: f64,
    /// Capacity of the in-memory chunk histogram table.
    pub max_chunks: usize,
    /// Apply byte translations when imitating (disable to reproduce the
    /// Figure 4 ablation, which shows the myopic-interval distortion).
    pub byte_translation: bool,
}

impl Default for LossyConfig {
    /// The paper's parameters: `L` = 10 M addresses, ε = 0.1, translations
    /// on. The table capacity is not specified in the paper; 4096 entries
    /// (≈ 33 MB of histograms) is far more than any trace in the evaluation
    /// creates.
    fn default() -> Self {
        Self {
            interval_len: 10_000_000,
            threshold: 0.1,
            max_chunks: 4096,
            byte_translation: true,
        }
    }
}

impl LossyConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message if `interval_len`, `max_chunks`, or `threshold`
    /// is out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval_len == 0 {
            return Err("interval_len must be positive".into());
        }
        if self.max_chunks == 0 {
            return Err("max_chunks must be positive".into());
        }
        if !(0.0..=2.0).contains(&self.threshold) {
            return Err(format!(
                "threshold {} outside the distance range [0, 2]",
                self.threshold
            ));
        }
        Ok(())
    }
}

/// Outcome of classifying one interval.
#[derive(Debug, Clone)]
pub enum Classification {
    /// No stored chunk is within ε: store this interval as a new chunk.
    NewChunk,
    /// A stored chunk matches: imitate it.
    Imitate {
        /// Id of the best-matching chunk.
        chunk_id: u64,
        /// Distance `D` to that chunk (for diagnostics).
        distance: f64,
        /// Per-column translations (`None` where the raw histograms already
        /// match within ε).
        translations: Box<[Option<Translation>; COLUMNS]>,
    },
}

/// One chunk's signature in the table.
#[derive(Debug, Clone)]
struct ChunkEntry {
    id: u64,
    hists: ByteHistograms,
    sorted: SortedHistograms,
}

/// The online phase classifier: chunk histogram table + matching logic.
#[derive(Debug)]
pub struct PhaseClassifier {
    config: LossyConfig,
    /// FIFO of stored chunk signatures (front = oldest).
    table: VecDeque<ChunkEntry>,
}

impl PhaseClassifier {
    /// Creates a classifier.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`LossyConfig::validate`]).
    pub fn new(config: LossyConfig) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid lossy configuration: {e}");
        }
        Self {
            config,
            table: VecDeque::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LossyConfig {
        &self.config
    }

    /// Number of chunk signatures currently in the table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Classifies a finished interval.
    ///
    /// `next_chunk_id` is the id the interval will get *if* it becomes a new
    /// chunk; on `NewChunk` the classifier records the signature under that
    /// id (evicting the oldest entry when the table is full).
    pub fn classify(&mut self, interval: &[u64], next_chunk_id: u64) -> Classification {
        let hists = ByteHistograms::from_addrs(interval);
        let sorted = hists.sorted();

        // Find the chunk with the smallest distance (§5.2: "when several
        // chunks match the current interval, we imitate the interval using
        // the chunk having the smallest distance").
        let mut best: Option<(usize, f64)> = None;
        for (i, entry) in self.table.iter().enumerate() {
            let d = entry.sorted.distance(&sorted);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }

        if let Some((i, d)) = best {
            if d < self.config.threshold {
                let entry = &self.table[i];
                let translations = if self.config.byte_translation {
                    self.build_translations(entry, &hists, &sorted)
                } else {
                    Box::default()
                };
                return Classification::Imitate {
                    chunk_id: entry.id,
                    distance: d,
                    translations,
                };
            }
        }

        self.insert(next_chunk_id, hists, sorted);
        Classification::NewChunk
    }

    /// Builds per-column translations from chunk `entry` to the interval:
    /// translate byte order `j` only when the *raw* histograms differ by
    /// more than ε (the paper's "only for values of j for which this is
    /// necessary").
    fn build_translations(
        &self,
        entry: &ChunkEntry,
        hists: &ByteHistograms,
        sorted: &SortedHistograms,
    ) -> Box<[Option<Translation>; COLUMNS]> {
        let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
        for j in 0..COLUMNS {
            if entry.hists.column_distance(hists, j) > self.config.threshold {
                let t = Translation::between(entry.sorted.permutation(j), sorted.permutation(j));
                if !t.is_identity() {
                    translations[j] = Some(t);
                }
            }
        }
        translations
    }

    fn insert(&mut self, id: u64, hists: ByteHistograms, sorted: SortedHistograms) {
        if self.table.len() == self.config.max_chunks {
            self.table.pop_front(); // evict the oldest chunk's histograms
        }
        self.table.push_back(ChunkEntry { id, hists, sorted });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::translate_addr;

    fn cfg(max_chunks: usize) -> LossyConfig {
        LossyConfig {
            interval_len: 1000,
            threshold: 0.1,
            max_chunks,
            byte_translation: true,
        }
    }

    #[test]
    fn first_interval_is_chunk() {
        let mut c = PhaseClassifier::new(cfg(8));
        let iv: Vec<u64> = (0..100).collect();
        assert!(matches!(c.classify(&iv, 0), Classification::NewChunk));
        assert_eq!(c.table_len(), 1);
    }

    #[test]
    fn identical_interval_imitates_without_translation() {
        let mut c = PhaseClassifier::new(cfg(8));
        let iv: Vec<u64> = (0..1000).map(|i| i * 64).collect();
        c.classify(&iv, 0);
        match c.classify(&iv, 1) {
            Classification::Imitate {
                chunk_id,
                distance,
                translations,
            } => {
                assert_eq!(chunk_id, 0);
                assert_eq!(distance, 0.0);
                assert!(translations.iter().all(Option::is_none));
            }
            other => panic!("expected imitation, got {other:?}"),
        }
        // No new table entry on imitation.
        assert_eq!(c.table_len(), 1);
    }

    #[test]
    fn shifted_region_translates_back_exactly() {
        // The paper's perfect-imitation example: B = A shifted by one byte
        // value in column 1.
        let a: Vec<u64> = (0..256).map(|i| 0xF200 + i).collect();
        let b: Vec<u64> = (0..256).map(|i| 0xF300 + i).collect();
        let mut c = PhaseClassifier::new(cfg(8));
        c.classify(&a, 0);
        match c.classify(&b, 1) {
            Classification::Imitate { translations, .. } => {
                let translated: Vec<u64> = a
                    .iter()
                    .map(|&x| translate_addr(x, &translations))
                    .collect();
                assert_eq!(translated, b, "imitation must be perfect here");
            }
            other => panic!("expected imitation, got {other:?}"),
        }
    }

    #[test]
    fn different_structure_creates_chunk() {
        let mut c = PhaseClassifier::new(cfg(8));
        let stream: Vec<u64> = (0..1000).map(|i| i * 64).collect();
        let constant: Vec<u64> = vec![42; 1000];
        c.classify(&stream, 0);
        assert!(matches!(c.classify(&constant, 1), Classification::NewChunk));
        assert_eq!(c.table_len(), 2);
    }

    #[test]
    fn best_match_wins() {
        let mut c = PhaseClassifier::new(cfg(8));
        // Chunk 0: uniform ramp over 1000 blocks; chunk 1: 500 blocks
        // visited twice (different sorted-histogram shape).
        let wide: Vec<u64> = (0..1000).collect();
        let narrow: Vec<u64> = (0..500).flat_map(|i| [i, i]).collect();
        c.classify(&wide, 0);
        c.classify(&narrow, 1);
        // The same narrow shape in a disjoint region (identical sorted
        // histograms, different raw ones) must imitate chunk 1, not chunk 0.
        let narrow2: Vec<u64> = (0..500)
            .flat_map(|i| [i + (7 << 32), i + (7 << 32)])
            .collect();
        match c.classify(&narrow2, 2) {
            Classification::Imitate { chunk_id, .. } => assert_eq!(chunk_id, 1),
            other => panic!("expected imitation, got {other:?}"),
        }
    }

    #[test]
    fn fifo_eviction() {
        let mut c = PhaseClassifier::new(cfg(2));
        // Three structurally distinct signatures.
        let constant: Vec<u64> = vec![0x0101_0101; 1000];
        let doubled: Vec<u64> = (0..500).flat_map(|i| [i, i]).collect();
        let ramp: Vec<u64> = (0..1000).collect();
        c.classify(&constant, 0);
        c.classify(&doubled, 1);
        c.classify(&ramp, 2); // table full: evicts chunk 0's signature
        assert_eq!(c.table_len(), 2);
        // The constant pattern was evicted: seeing it again makes a chunk.
        assert!(matches!(c.classify(&constant, 3), Classification::NewChunk));
        // The ramp signature is still resident: it imitates chunk 2.
        let ramp_shifted: Vec<u64> = (0..1000).map(|i| i + (3 << 40)).collect();
        match c.classify(&ramp_shifted, 4) {
            Classification::Imitate { chunk_id, .. } => assert_eq!(chunk_id, 2),
            other => panic!("expected imitation, got {other:?}"),
        }
    }

    #[test]
    fn translation_disabled_for_figure4() {
        let mut c = PhaseClassifier::new(LossyConfig {
            byte_translation: false,
            ..cfg(8)
        });
        let a: Vec<u64> = (0..256).map(|i| 0xF200 + i).collect();
        let b: Vec<u64> = (0..256).map(|i| 0xF300 + i).collect();
        c.classify(&a, 0);
        match c.classify(&b, 1) {
            Classification::Imitate { translations, .. } => {
                assert!(translations.iter().all(Option::is_none));
            }
            other => panic!("expected imitation, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(LossyConfig {
            interval_len: 0,
            ..LossyConfig::default()
        }
        .validate()
        .is_err());
        assert!(LossyConfig {
            threshold: 3.0,
            ..LossyConfig::default()
        }
        .validate()
        .is_err());
        assert!(LossyConfig::default().validate().is_ok());
    }
}
