//! Streaming ATC decompression (the original tool's `atc_open('d') /
//! atc_decode / atc_close`).

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use atc_cache::{trace_id, SegmentCache};
use atc_codec::{codec_by_name, varint, Codec, CodecReader, ReadaheadReader, SegmentRecord};
use atc_engine::Engine;

use crate::bytesort::BytesortInverse;
use crate::error::{AtcError, Result};
use crate::format::{self, FrameReadStats, IntervalRecord, Meta};
use crate::hist::{translate_addr, Translation, COLUMNS};

/// Default number of decompressed chunks kept in memory.
///
/// Runs of imitations of the same chunk then decode at translate speed
/// without re-reading the chunk file.
pub const DEFAULT_CHUNK_CACHE: usize = 8;

/// Tuning knobs for [`AtcReader::open_with`].
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Decompressed chunks kept in memory (see [`DEFAULT_CHUNK_CACHE`]).
    pub chunk_cache: usize,
    /// Decompression parallelism. `0`/`1` decode on the calling thread
    /// (the original behavior); `n > 1` reads payload streams through a
    /// free-running readahead pipeline: up to `n` framed segments decode
    /// concurrently as engine tasks (no batch barrier), and an ordered
    /// reassembly stage hands segments to `decode`/`decode_all` in
    /// stream order, overlapping decompression with the consumer. Works
    /// on any trace — the on-disk format does not record thread counts.
    pub threads: usize,
    /// Explicit execution engine for the decode tasks. `None` (the
    /// default) uses the process-wide engine, grown to at least
    /// `threads` workers; tests and multi-stream containers (the sharded
    /// store) inject one so many readers share a worker set and isolated
    /// counters.
    pub engine: Option<Engine>,
    /// Decoded-segment cache for lossless traces that carry a seek
    /// sidecar. When set (usually to [`SegmentCache::global`]), payload
    /// segments are decoded at most once per process while cached —
    /// every reader of a hot trace reuses the others' decode work, and
    /// [`AtcReader::seek`] lands on already-decoded segments for free.
    /// Traces without a sidecar ignore this and read linearly.
    pub segment_cache: Option<Arc<SegmentCache>>,
}

impl Default for ReadOptions {
    fn default() -> Self {
        Self {
            chunk_cache: DEFAULT_CHUNK_CACHE,
            threads: 1,
            engine: None,
            segment_cache: None,
        }
    }
}

/// A payload stream: decoded inline, through the readahead pipeline, or
/// segment-at-a-time through the process-wide [`SegmentCache`].
#[derive(Debug)]
enum SegmentStream {
    Serial(CodecReader<BufReader<File>>),
    Readahead(ReadaheadReader),
    Cached(CachedSegmentStream),
}

impl SegmentStream {
    /// Opens a payload stream; open failures keep their `io::Error` (so
    /// callers can still distinguish e.g. `NotFound`) — wrap with context
    /// at the call site where useful.
    fn open(
        path: &Path,
        codec: &Arc<dyn Codec>,
        threads: usize,
        engine: Option<&Engine>,
    ) -> std::io::Result<Self> {
        let file = BufReader::new(File::open(path)?);
        Ok(if threads > 1 {
            let reader = match engine {
                Some(e) => {
                    ReadaheadReader::with_engine(file, Arc::clone(codec), threads, e.clone())
                }
                None => ReadaheadReader::new(file, Arc::clone(codec), threads),
            };
            Self::Readahead(reader)
        } else {
            Self::Serial(CodecReader::new(file, Arc::clone(codec)))
        })
    }
}

impl SegmentStream {
    /// Compressed segments this stream decoded since it was built (i.e.
    /// since open or the last seek). `None` for the readahead pipeline,
    /// which does not track per-stream decode counts. Cache *hits* are
    /// not decodes — a warm [`SegmentCache`] read reports 0.
    fn segments_decoded(&self) -> Option<u64> {
        match self {
            Self::Serial(r) => Some(r.segments_decoded()),
            Self::Readahead(_) => None,
            Self::Cached(r) => Some(r.decoded),
        }
    }
}

impl Read for SegmentStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Self::Serial(r) => r.read(buf),
            Self::Readahead(r) => r.read(buf),
            Self::Cached(r) => r.read(buf),
        }
    }
}

impl BufRead for SegmentStream {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        match self {
            Self::Serial(r) => r.fill_buf(),
            Self::Readahead(r) => r.fill_buf(),
            Self::Cached(r) => r.fill_buf(),
        }
    }

    fn consume(&mut self, amt: usize) {
        match self {
            Self::Serial(r) => r.consume(amt),
            Self::Readahead(r) => r.consume(amt),
            Self::Cached(r) => r.consume(amt),
        }
    }
}

/// A payload stream that decodes one segment at a time, sharing decoded
/// bytes through a [`SegmentCache`]. Segment boundaries come from the
/// seek sidecar, so the stream can start (and `seek_to_raw` restart) at
/// any raw offset by decoding at most the one segment containing it.
#[derive(Debug)]
struct CachedSegmentStream {
    file: File,
    codec: Arc<dyn Codec>,
    table: format::SeekTable,
    trace: u64,
    cache: Arc<SegmentCache>,
    /// Decoded bytes of the segment currently being consumed.
    current: Arc<Vec<u8>>,
    /// Read position within `current`.
    pos: usize,
    /// Index of the next segment to load once `current` is drained.
    next_seg: usize,
    /// Segments actually decompressed (cache misses) by this stream.
    decoded: u64,
}

impl CachedSegmentStream {
    fn new(
        file: File,
        codec: Arc<dyn Codec>,
        table: format::SeekTable,
        trace: u64,
        cache: Arc<SegmentCache>,
    ) -> Self {
        Self {
            file,
            codec,
            table,
            trace,
            cache,
            current: Arc::new(Vec::new()),
            pos: 0,
            next_seg: 0,
            decoded: 0,
        }
    }

    /// Fetches segment `idx` from the cache, decoding (and caching) it on
    /// a miss.
    fn load_segment(&mut self, idx: usize) -> std::io::Result<Arc<Vec<u8>>> {
        let key = (self.trace, idx as u64);
        if let Some(bytes) = self.cache.get(key) {
            return Ok(bytes);
        }
        let rec = self.table.segments()[idx];
        let framed = usize::try_from(rec.compressed_len)
            .map_err(|_| invalid_data(format!("segment {idx} length overflows usize")))?;
        let mut buf = vec![0u8; framed];
        self.file.seek(SeekFrom::Start(rec.file_offset))?;
        self.file.read_exact(&mut buf)?;
        let mut cur = &buf[..];
        let payload = varint::read_u64(&mut cur)? as usize;
        if payload != cur.len() {
            return Err(invalid_data(format!(
                "segment {idx} frames {payload} payload bytes but the sidecar spans {}",
                cur.len()
            )));
        }
        let mut raw = Vec::with_capacity(rec.raw_len as usize);
        self.codec
            .decompress_into(cur, &mut raw)
            .map_err(|e| invalid_data(format!("segment {idx}: {e}")))?;
        if raw.len() as u64 != rec.raw_len {
            return Err(invalid_data(format!(
                "segment {idx} decoded to {} bytes, sidecar says {}",
                raw.len(),
                rec.raw_len
            )));
        }
        self.decoded += 1;
        let raw = Arc::new(raw);
        self.cache.insert(key, Arc::clone(&raw));
        Ok(raw)
    }

    /// Repositions the stream to `raw_offset` bytes into the decoded
    /// payload, loading at most the one segment containing it.
    fn seek_to_raw(&mut self, raw_offset: u64) -> std::io::Result<()> {
        if raw_offset >= self.table.total_raw_bytes() {
            self.current = Arc::new(Vec::new());
            self.pos = 0;
            self.next_seg = self.table.len();
            return Ok(());
        }
        let idx = self
            .table
            .locate(raw_offset)
            // atclint: allow(library-unwrap) -- infallible: the early
            // return above handles raw_offset >= total_raw_bytes, and
            // locate() covers every offset below that.
            .expect("raw_offset below total_raw_bytes always lands in a segment");
        self.current = self.load_segment(idx)?;
        self.pos = (raw_offset - self.table.raw_start(idx)) as usize;
        self.next_seg = idx + 1;
        Ok(())
    }
}

fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Read for CachedSegmentStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = {
            let avail = self.fill_buf()?;
            let n = avail.len().min(buf.len());
            buf[..n].copy_from_slice(&avail[..n]);
            n
        };
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for CachedSegmentStream {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        while self.pos >= self.current.len() {
            if self.next_seg >= self.table.len() {
                return Ok(&[]);
            }
            let idx = self.next_seg;
            self.current = self.load_segment(idx)?;
            self.pos = 0;
            self.next_seg = idx + 1;
        }
        Ok(&self.current[self.pos..])
    }

    fn consume(&mut self, amt: usize) {
        self.pos = (self.pos + amt).min(self.current.len());
    }
}

/// A streaming ATC decompressor over a trace directory.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::{AtcReader, AtcWriter, Mode};
///
/// let dir = std::env::temp_dir().join("atc-reader-doc");
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut w = AtcWriter::create(&dir, Mode::Lossless)?;
/// w.code_all([64, 128, 192])?;
/// w.finish()?;
///
/// let mut r = AtcReader::open(&dir)?;
/// assert_eq!(r.decode()?, Some(64));
/// assert_eq!(r.decode()?, Some(128));
/// assert_eq!(r.decode()?, Some(192));
/// assert_eq!(r.decode()?, None);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AtcReader {
    meta: Meta,
    dir: PathBuf,
    codec: Arc<dyn Codec>,
    state: State,
    /// Decoded values not yet handed out.
    pending: VecDeque<u64>,
    produced: u64,
    /// Streaming bytesort decoder for the zero-copy frame path; its
    /// output buffer is what lossless [`AtcReader::next_frame`] hands out.
    inverse: BytesortInverse,
    /// Frame buffer for [`AtcReader::next_frame`] when the frame cannot
    /// be borrowed (lossy intervals, values buffered by `decode`).
    frame: Vec<u64>,
    /// Scratch for columns that straddle a segment boundary.
    col_scratch: Vec<u8>,
    frame_stats: FrameReadStats,
    /// First error's message; once set, every later `decode`/`next_frame`
    /// fails. The serial codec stream does not latch on its own (the
    /// readahead pipeline does), and after a failed segment the byte
    /// stream has a hole, so anything "decoded" past it would be garbage
    /// that happens to parse — fail fast at every thread count instead.
    poisoned: Option<String>,
    /// Retained [`ReadOptions`] so [`AtcReader::seek`]'s linear fallback
    /// can rebuild the payload stream the way it was opened.
    threads: usize,
    engine: Option<Engine>,
    segment_cache: Option<Arc<SegmentCache>>,
    /// Set by [`AtcReader::decode_all_flat`]: the payload was consumed
    /// out of band, so the streaming paths must report end of trace
    /// instead of re-decoding the (unconsumed) underlying stream.
    exhausted: bool,
    /// The missing-sidecar fallback warns once per reader, not per call.
    warned_linear: bool,
}

#[derive(Debug)]
enum State {
    Lossless {
        stream: SegmentStream,
    },
    Lossy {
        info: CodecReader<BufReader<File>>,
        cache: ChunkCache,
    },
}

impl AtcReader {
    /// Opens a trace directory written by [`crate::AtcWriter`].
    ///
    /// # Errors
    ///
    /// Fails if the directory, `meta` file, or payload files are missing or
    /// malformed, or the recorded codec is unknown.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self> {
        Self::open_with(dir, ReadOptions::default())
    }

    /// Opens a trace directory with an explicit chunk-cache capacity.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcReader::open`].
    pub fn with_chunk_cache<P: AsRef<Path>>(dir: P, chunk_cache: usize) -> Result<Self> {
        Self::open_with(
            dir,
            ReadOptions {
                chunk_cache,
                ..ReadOptions::default()
            },
        )
    }

    /// Opens a trace directory with explicit [`ReadOptions`] (chunk cache
    /// capacity and decompression thread count).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcReader::open`].
    pub fn open_with<P: AsRef<Path>>(dir: P, options: ReadOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let meta_text = std::fs::read_to_string(dir.join(format::META_FILE)).map_err(|e| {
            AtcError::Format(format!(
                "cannot read {}/{}: {e}",
                dir.display(),
                format::META_FILE
            ))
        })?;
        let meta = Meta::parse(&meta_text)?;
        let codec: Arc<dyn Codec> = Arc::from(
            codec_by_name(&meta.codec)
                .ok_or_else(|| AtcError::Format(format!("unknown codec {:?}", meta.codec)))?,
        );
        let threads = options.threads.max(1);
        let engine = options.engine.clone();
        let segment_cache = options.segment_cache.clone();
        let state = match meta.mode.as_str() {
            "lossless" => State::Lossless {
                stream: match segment_cache
                    .as_ref()
                    .and_then(|cache| Some((cache, load_seek_table(&dir, &meta)?)))
                {
                    Some((cache, table)) => SegmentStream::Cached(CachedSegmentStream::new(
                        File::open(dir.join(format::DATA_FILE))?,
                        Arc::clone(&codec),
                        table,
                        trace_id(&dir),
                        Arc::clone(cache),
                    )),
                    // No cache requested, or no usable sidecar to cut
                    // segments with: plain streaming decode.
                    None => SegmentStream::open(
                        &dir.join(format::DATA_FILE),
                        &codec,
                        threads,
                        engine.as_ref(),
                    )?,
                },
            },
            "lossy" => {
                let file = BufReader::new(File::open(dir.join(format::INFO_FILE))?);
                State::Lossy {
                    // The interval trace is tiny — always decoded inline;
                    // `threads` accelerates the chunk-file loads instead.
                    info: CodecReader::new(file, Arc::clone(&codec)),
                    cache: ChunkCache::new(options.chunk_cache.max(1), threads, engine.clone()),
                }
            }
            other => {
                return Err(AtcError::Format(format!("unknown mode {other:?}")));
            }
        };
        Ok(Self {
            meta,
            dir,
            codec,
            state,
            pending: VecDeque::new(),
            produced: 0,
            inverse: BytesortInverse::default(),
            frame: Vec::new(),
            col_scratch: Vec::new(),
            frame_stats: FrameReadStats::default(),
            poisoned: None,
            threads,
            engine,
            segment_cache,
            exhausted: false,
            warned_linear: false,
        })
    }

    /// The trace header.
    pub fn meta(&self) -> &Meta {
        &self.meta
    }

    /// Decodes the next value; `Ok(None)` at end of trace (the original
    /// `atc_decode` returning 0).
    ///
    /// # Errors
    ///
    /// Propagates I/O, codec, and format errors.
    pub fn decode(&mut self) -> Result<Option<u64>> {
        self.check_poisoned()?;
        let result = self.decode_inner();
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    fn decode_inner(&mut self) -> Result<Option<u64>> {
        loop {
            if let Some(v) = self.pending.pop_front() {
                self.produced += 1;
                return Ok(Some(v));
            }
            if !self.refill()? {
                self.check_complete()?;
                return Ok(None);
            }
        }
    }

    /// Decodes the next whole frame — one bytesort buffer (lossless mode)
    /// or one interval (lossy mode) — and hands it out as a borrowed
    /// slice, valid until the next call on this reader.
    ///
    /// This is the zero-copy bulk path: in lossless mode, columns are fed
    /// to the bytesort inverse straight out of the stream's decoded
    /// segment buffer (the readahead reassembly buffer when
    /// [`ReadOptions::threads`] > 1) instead of first being copied through
    /// `Read::read` into an owned buffer — [`AtcReader::frame_stats`]
    /// counts borrowed vs copied column bytes. Lossy intervals are
    /// materialized through the chunk cache as before (translations must
    /// rewrite the bytes anyway).
    ///
    /// `next_frame` and [`AtcReader::decode`] may be interleaved: values
    /// already buffered by `decode` are drained (as one frame) before the
    /// next on-disk frame is parsed. The concatenation of all frames is
    /// exactly the `decode` value sequence; `Ok(None)` means clean end of
    /// trace. Errors (including a mid-stream integrity failure) latch
    /// exactly like the `decode` path: every later call keeps failing
    /// rather than decaying into a clean end of trace.
    ///
    /// # Errors
    ///
    /// Propagates I/O, codec, and format errors.
    pub fn next_frame(&mut self) -> Result<Option<&[u64]>> {
        self.check_poisoned()?;
        match self.next_frame_inner() {
            Ok(Some(FrameSlot::Inverse)) => Ok(Some(self.inverse.finish()?)),
            Ok(Some(FrameSlot::Buffer)) => Ok(Some(&self.frame)),
            Ok(None) => Ok(None),
            Err(e) => {
                self.poisoned = Some(e.to_string());
                Err(e)
            }
        }
    }

    /// Decodes the next frame, reporting *where* it landed (so the
    /// borrowed slice can be produced after error handling releases
    /// `&mut self`).
    fn next_frame_inner(&mut self) -> Result<Option<FrameSlot>> {
        if !self.pending.is_empty() {
            // Interleaved with decode(): hand out its buffered tail as a
            // frame so the value sequence stays exact.
            self.frame.clear();
            self.frame.extend(self.pending.drain(..));
            self.produced += self.frame.len() as u64;
            self.frame_stats.frames += 1;
            return Ok(Some(FrameSlot::Buffer));
        }
        if self.exhausted {
            self.check_complete()?;
            return Ok(None);
        }
        match &mut self.state {
            State::Lossless { stream } => {
                if format::read_frame_borrowed(
                    stream,
                    &mut self.inverse,
                    &mut self.col_scratch,
                    &mut self.frame_stats,
                )? {
                    self.produced += self.inverse.finish()?.len() as u64;
                    Ok(Some(FrameSlot::Inverse))
                } else {
                    self.check_complete()?;
                    Ok(None)
                }
            }
            State::Lossy { info, cache } => {
                let Some(record) = IntervalRecord::read(info)? else {
                    self.check_complete()?;
                    return Ok(None);
                };
                self.frame.clear();
                materialize_interval(&self.dir, &self.codec, cache, record, &mut self.frame)?;
                self.produced += self.frame.len() as u64;
                self.frame_stats.frames += 1;
                Ok(Some(FrameSlot::Buffer))
            }
        }
    }

    /// Accounting for the [`AtcReader::next_frame`] path: frames decoded
    /// and column bytes borrowed in place vs copied through scratch.
    pub fn frame_stats(&self) -> FrameReadStats {
        self.frame_stats
    }

    /// Fails if an earlier `decode`/`next_frame` call errored.
    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(msg) => Err(AtcError::Format(format!(
                "reader poisoned by earlier error: {msg}"
            ))),
            None => Ok(()),
        }
    }

    /// Fails if the stream ended before `meta.count` addresses.
    fn check_complete(&self) -> Result<()> {
        if self.produced != self.meta.count {
            return Err(AtcError::Format(format!(
                "trace ended after {} of {} addresses",
                self.produced, self.meta.count
            )));
        }
        Ok(())
    }

    /// Decodes the remainder of the trace into a vector.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`AtcReader::decode`].
    pub fn decode_all(&mut self) -> Result<Vec<u64>> {
        // The header's count is untrusted until the trace is fully read,
        // so cap the header-driven preallocation.
        let remaining = self.meta.count.saturating_sub(self.produced);
        let mut out = Vec::with_capacity(remaining.min(1 << 24) as usize);
        while let Some(v) = self.decode()? {
            out.push(v);
        }
        Ok(out)
    }

    /// Adapts the reader into an iterator of `Result<u64>`.
    pub fn values(&mut self) -> Values<'_> {
        Values { reader: self }
    }

    /// Repositions the reader so the next value decoded is the first
    /// address of frame `frame_no` (address number `frame_no ×
    /// meta.buffer`), in O(log segments) when the trace carries a seek
    /// sidecar: the target segment is found by binary search and at most
    /// that one segment is decoded before the target — never the
    /// megabytes in front of it. Traces written before the sidecar
    /// existed still work: the reader warns once on stderr and falls
    /// back to a linear decode-and-discard up to the target.
    ///
    /// Seeking is frame-granular because frames are the compression
    /// unit; callers wanting address granularity seek to
    /// `addr / meta.buffer` and discard `addr % meta.buffer` values.
    /// Seeking to the one-past-the-end frame is allowed and behaves like
    /// a fully drained reader. After a seek the payload decodes on the
    /// calling thread ([`ReadOptions::threads`] accelerates linear
    /// scans, which a seek is not); the [`ReadOptions::segment_cache`],
    /// when configured, is consulted so repeated seeks into hot
    /// segments skip even the one decode.
    ///
    /// # Errors
    ///
    /// Fails on lossy traces (their intervals are not frame-addressable
    /// on disk), on targets past the end of the trace, and on the usual
    /// I/O/codec/format errors. Errors latch like every other path.
    pub fn seek(&mut self, frame_no: u64) -> Result<()> {
        self.check_poisoned()?;
        let result = self.seek_inner(frame_no);
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    fn seek_inner(&mut self, frame_no: u64) -> Result<()> {
        if !matches!(self.state, State::Lossless { .. }) {
            return Err(AtcError::Format(
                "seek requires a lossless trace: lossy intervals are not frame-addressable".into(),
            ));
        }
        let buffer = self.meta.buffer;
        if buffer == 0 {
            return Err(AtcError::Format(
                "meta records buffer=0: cannot seek".into(),
            ));
        }
        let past_end = || {
            AtcError::Format(format!(
                "seek target frame {frame_no} is past the end of the trace \
                 ({} addresses in frames of {buffer})",
                self.meta.count
            ))
        };
        let total_frames = self.meta.count.div_ceil(buffer);
        if frame_no > total_frames {
            return Err(past_end());
        }
        let target_value = frame_no
            .checked_mul(buffer)
            .ok_or_else(past_end)?
            .min(self.meta.count);
        // Every frame before the target is full (exactly `buffer`
        // addresses), so its raw frame bytes are a fixed
        // varint-header-plus-columns size and the target's raw offset is
        // one multiplication — no index of frame offsets is needed. The
        // one-past-the-end frame accounts for a partial tail frame.
        let frame_raw = varint_len(buffer)
            .checked_add(buffer.checked_mul(8).ok_or_else(past_end)?)
            .ok_or_else(past_end)?;
        let target_raw = if frame_no == total_frames {
            let rem = self.meta.count % buffer;
            let tail = if rem > 0 {
                varint_len(rem) + 8 * rem
            } else {
                0
            };
            (self.meta.count / buffer)
                .checked_mul(frame_raw)
                .and_then(|v| v.checked_add(tail))
                .ok_or_else(past_end)?
        } else {
            frame_no.checked_mul(frame_raw).ok_or_else(past_end)?
        };

        self.pending.clear();
        self.exhausted = false;
        let table = load_seek_table(&self.dir, &self.meta);
        if table.is_none() {
            self.warn_linear_fallback();
        }
        let threads = self.threads;
        let engine = self.engine.clone();
        let data_path = self.dir.join(format::DATA_FILE);
        let State::Lossless { stream } = &mut self.state else {
            unreachable!("checked above");
        };
        match table {
            Some(table) => {
                if target_raw > table.total_raw_bytes() {
                    return Err(AtcError::Format(format!(
                        "seek sidecar spans {} raw bytes but frame {frame_no} starts at {target_raw}",
                        table.total_raw_bytes()
                    )));
                }
                if let Some(cache) = &self.segment_cache {
                    let mut cached = CachedSegmentStream::new(
                        File::open(&data_path)?,
                        Arc::clone(&self.codec),
                        table,
                        trace_id(&self.dir),
                        Arc::clone(cache),
                    );
                    cached.seek_to_raw(target_raw)?;
                    *stream = SegmentStream::Cached(cached);
                } else {
                    let mut file = File::open(&data_path)?;
                    let (file_offset, in_segment) = match table.locate(target_raw) {
                        Some(idx) => (
                            table.segments()[idx].file_offset,
                            target_raw - table.raw_start(idx),
                        ),
                        // Exactly at end of payload: park on the
                        // end-of-stream marker after the last segment.
                        None => {
                            let end = table
                                .segments()
                                .last()
                                .map_or(0, |s| s.file_offset + s.compressed_len);
                            (end, 0)
                        }
                    };
                    file.seek(SeekFrom::Start(file_offset))?;
                    let mut reader =
                        CodecReader::new(BufReader::new(file), Arc::clone(&self.codec));
                    skip_raw(&mut reader, in_segment)?;
                    *stream = SegmentStream::Serial(reader);
                }
            }
            None => {
                let mut fresh =
                    SegmentStream::open(&data_path, &self.codec, threads, engine.as_ref())?;
                skip_raw(&mut fresh, target_raw)?;
                *stream = fresh;
            }
        }
        self.produced = target_value;
        Ok(())
    }

    /// Decodes the whole trace by fanning every compressed segment out
    /// over the engine as one scope — no readahead window, no ordered
    /// reassembly stage: the seek sidecar says where each segment's
    /// decoded bytes land, so every worker decompresses straight into
    /// its disjoint slice of one flat buffer and the frames are parsed
    /// from it sequentially afterwards.
    ///
    /// Requires a fresh reader (nothing decoded yet) and a lossless
    /// trace with a seek sidecar; anything else falls back to
    /// [`AtcReader::decode_all`] (warning once on stderr when the
    /// fallback is a missing sidecar). Uses [`ReadOptions::engine`] if
    /// one was injected, else the process-wide engine grown to
    /// [`ReadOptions::threads`] workers.
    ///
    /// # Errors
    ///
    /// Propagates I/O, codec, and format errors; errors latch.
    pub fn decode_all_flat(&mut self) -> Result<Vec<u64>> {
        self.check_poisoned()?;
        if !matches!(self.state, State::Lossless { .. })
            || self.produced != 0
            || !self.pending.is_empty()
            || self.exhausted
        {
            return self.decode_all();
        }
        let Some(table) = load_seek_table(&self.dir, &self.meta) else {
            self.warn_linear_fallback();
            return self.decode_all();
        };
        let result = self.decode_all_flat_inner(&table);
        if let Err(e) = &result {
            self.poisoned = Some(e.to_string());
        }
        result
    }

    fn decode_all_flat_inner(&mut self, table: &format::SeekTable) -> Result<Vec<u64>> {
        let data = std::fs::read(self.dir.join(format::DATA_FILE))?;
        let raw_total = usize::try_from(table.total_raw_bytes())
            .map_err(|_| AtcError::Format("sidecar raw size overflows usize".into()))?;
        let mut raw = vec![0u8; raw_total];
        // Carve the flat buffer into per-segment output slices: the
        // sidecar's raw lengths are contiguous from zero by construction.
        let mut slices = Vec::with_capacity(table.len());
        let mut rest = raw.as_mut_slice();
        for seg in table.segments() {
            let raw_len = usize::try_from(seg.raw_len)
                .map_err(|_| AtcError::Format("segment raw size overflows usize".into()))?;
            let (head, tail) = rest.split_at_mut(raw_len);
            slices.push(head);
            rest = tail;
        }
        let errors: Vec<Mutex<Option<String>>> =
            table.segments().iter().map(|_| Mutex::new(None)).collect();
        let engine = match &self.engine {
            Some(e) => e.clone(),
            None => Engine::global_with(self.threads),
        };
        let codec = &self.codec;
        let data = &data;
        engine.scope(|scope| {
            for ((seg, out), slot) in table.segments().iter().zip(slices).zip(&errors) {
                let codec = Arc::clone(codec);
                let seg = *seg;
                scope.spawn(move || {
                    if let Err(msg) = decode_segment_into(&codec, data, &seg, out) {
                        *slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(msg);
                    }
                });
            }
        });
        for slot in &errors {
            if let Some(msg) = slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                return Err(AtcError::Format(msg));
            }
        }
        let mut cur: &[u8] = &raw;
        let mut out = Vec::with_capacity(self.meta.count.min(1 << 24) as usize);
        while let Some(frame) = format::read_frame(&mut cur)? {
            out.extend(frame);
        }
        self.produced = out.len() as u64;
        self.exhausted = true;
        self.check_complete()?;
        Ok(out)
    }

    /// Compressed segments decoded by the current payload stream (since
    /// open or the last [`AtcReader::seek`]): `None` for lossy traces
    /// and the readahead pipeline, which do not track it. This is the
    /// observable behind seek's O(1)-decode promise — after a seek,
    /// reading one frame costs at most one segment decode (zero when
    /// the segment cache is warm).
    pub fn segments_decoded(&self) -> Option<u64> {
        match &self.state {
            State::Lossless { stream } => stream.segments_decoded(),
            State::Lossy { .. } => None,
        }
    }

    /// Warns (once per reader) that random access degraded to a linear
    /// decode because the trace has no usable seek sidecar.
    fn warn_linear_fallback(&mut self) {
        if !self.warned_linear {
            self.warned_linear = true;
            eprintln!(
                "atc: warning: {} has no usable seek sidecar ({}); falling back to linear decode",
                self.dir.display(),
                format::SEEK_FILE
            );
        }
    }

    fn refill(&mut self) -> Result<bool> {
        if self.exhausted {
            return Ok(false);
        }
        match &mut self.state {
            State::Lossless { stream } => match format::read_frame(stream)? {
                Some(addrs) => {
                    self.pending.extend(addrs);
                    Ok(true)
                }
                None => Ok(false),
            },
            State::Lossy { info, cache } => {
                let Some(record) = IntervalRecord::read(info)? else {
                    return Ok(false);
                };
                materialize_interval(&self.dir, &self.codec, cache, record, &mut self.pending)?;
                Ok(true)
            }
        }
    }
}

/// Loads and validates the trace's seek sidecar; `None` means "no usable
/// sidecar" (absent, unreadable, malformed, or disagreeing with `meta`) —
/// the caller falls back to linear decoding, it is never a hard error.
fn load_seek_table(dir: &Path, meta: &Meta) -> Option<format::SeekTable> {
    let bytes = std::fs::read(dir.join(format::SEEK_FILE)).ok()?;
    let table = format::SeekTable::decode(&bytes).ok()?;
    if let Some(n) = meta.seek_segments {
        if n != table.len() as u64 {
            return None;
        }
    }
    Some(table)
}

/// Encoded length of `varint(value)` in bytes (LEB128, 7 bits per byte).
fn varint_len(value: u64) -> u64 {
    u64::from((64 - value.leading_zeros()).max(1)).div_ceil(7)
}

/// Reads and discards exactly `n` decoded bytes (positioning within a
/// segment, or the whole linear-fallback skip).
fn skip_raw<R: Read>(r: &mut R, n: u64) -> Result<()> {
    let skipped = std::io::copy(&mut r.by_ref().take(n), &mut std::io::sink())?;
    if skipped != n {
        return Err(AtcError::Format(format!(
            "payload ended after {skipped} of the {n} bytes before the seek target"
        )));
    }
    Ok(())
}

/// Decompresses one sidecar-described segment of `data` into its slice of
/// the flat output buffer (the [`AtcReader::decode_all_flat`] worker).
/// Returns the error as a message so workers on different threads can
/// report through a plain slot.
fn decode_segment_into(
    codec: &Arc<dyn Codec>,
    data: &[u8],
    seg: &SegmentRecord,
    out: &mut [u8],
) -> std::result::Result<(), String> {
    let start = usize::try_from(seg.file_offset).map_err(|_| "segment offset overflow")?;
    let len = usize::try_from(seg.compressed_len).map_err(|_| "segment length overflow")?;
    let mut cur = data
        .get(start..start.checked_add(len).ok_or("segment extent overflow")?)
        .ok_or_else(|| {
            format!(
                "sidecar segment at {start}+{len} runs past the {}-byte payload file",
                data.len()
            )
        })?;
    let payload = varint::read_u64(&mut cur).map_err(|e| e.to_string())? as usize;
    if payload != cur.len() {
        return Err(format!(
            "segment frames {payload} payload bytes but the sidecar spans {}",
            cur.len()
        ));
    }
    let mut raw = Vec::with_capacity(out.len());
    codec
        .decompress_into(cur, &mut raw)
        .map_err(|e| e.to_string())?;
    if raw.len() != out.len() {
        return Err(format!(
            "segment decoded to {} bytes, sidecar says {}",
            raw.len(),
            out.len()
        ));
    }
    out.copy_from_slice(&raw);
    Ok(())
}

/// Decodes one interval record into `out`: loads its chunk (through the
/// cache) and applies the recorded translations. Shared by the value
/// ([`AtcReader::decode`]) and frame ([`AtcReader::next_frame`]) paths so
/// the chunk-length validation and translation handling cannot drift
/// apart.
fn materialize_interval<C: Extend<u64>>(
    dir: &Path,
    codec: &Arc<dyn Codec>,
    cache: &mut ChunkCache,
    record: IntervalRecord,
    out: &mut C,
) -> Result<()> {
    match record {
        IntervalRecord::NewChunk { chunk_id, len } => {
            let addrs = cache.load(dir, codec, chunk_id)?;
            if addrs.len() as u64 != len {
                return Err(AtcError::Format(format!(
                    "chunk {chunk_id} holds {} addresses, record says {len}",
                    addrs.len()
                )));
            }
            out.extend(addrs.iter().copied());
        }
        IntervalRecord::Imitate {
            chunk_id,
            translations,
        } => {
            let addrs = cache.load(dir, codec, chunk_id)?;
            if translations.iter().all(Option::is_none) {
                out.extend(addrs.iter().copied());
            } else {
                let t: &[Option<Translation>; COLUMNS] = &translations;
                out.extend(addrs.iter().map(|&a| translate_addr(a, t)));
            }
        }
    }
    Ok(())
}

/// Where [`AtcReader::next_frame`] left the decoded frame.
enum FrameSlot {
    /// In the bytesort inverse's output buffer (borrowed lossless path).
    Inverse,
    /// In the reader's own frame buffer (lossy / interleave path).
    Buffer,
}

/// Iterator over decoded values (see [`AtcReader::values`]).
#[derive(Debug)]
pub struct Values<'r> {
    reader: &'r mut AtcReader,
}

impl Iterator for Values<'_> {
    type Item = Result<u64>;

    fn next(&mut self) -> Option<Self::Item> {
        self.reader.decode().transpose()
    }
}

/// LRU cache of decompressed chunks.
#[derive(Debug)]
struct ChunkCache {
    capacity: usize,
    /// Decompression parallelism for chunk loads (1 = inline).
    threads: usize,
    /// Engine the chunk-load readahead tasks run on (None = global).
    engine: Option<Engine>,
    /// Most recently used last.
    entries: Vec<(u64, Arc<Vec<u64>>)>,
}

impl ChunkCache {
    fn new(capacity: usize, threads: usize, engine: Option<Engine>) -> Self {
        Self {
            capacity,
            threads,
            engine,
            entries: Vec::new(),
        }
    }

    fn load(&mut self, dir: &Path, codec: &Arc<dyn Codec>, id: u64) -> Result<Arc<Vec<u64>>> {
        if let Some(i) = self.entries.iter().position(|(eid, _)| *eid == id) {
            let entry = self.entries.remove(i);
            let addrs = Arc::clone(&entry.1);
            self.entries.push(entry);
            return Ok(addrs);
        }
        let path = dir.join(format::chunk_file_name(id));
        let mut stream = SegmentStream::open(&path, codec, self.threads, self.engine.as_ref())
            .map_err(|e| {
                AtcError::Format(format!("cannot open chunk file {}: {e}", path.display()))
            })?;
        let mut addrs = Vec::new();
        while let Some(frame) = format::read_frame(&mut stream)? {
            addrs.extend(frame);
        }
        let addrs = Arc::new(addrs);
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push((id, Arc::clone(&addrs)));
        Ok(addrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyConfig;
    use crate::writer::{AtcOptions, AtcWriter, Mode};

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-reader-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lossless_roundtrip_multi_buffer() {
        let dir = tmp("lossless");
        let addrs: Vec<u64> = (0..2500u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "bzip".into(),
                buffer: 1000, // 3 frames: 1000 + 1000 + 500,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();

        let mut r = AtcReader::open(&dir).unwrap();
        assert_eq!(r.meta().mode, "lossless");
        assert_eq!(r.decode_all().unwrap(), addrs);
        assert_eq!(r.decode().unwrap(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_identical_intervals_roundtrip_exactly() {
        let dir = tmp("lossy-exact");
        let interval: Vec<u64> = (0..200u64).map(|i| i * 64).collect();
        let cfg = LossyConfig {
            interval_len: 200,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 128,
                threads: 1,
            },
        )
        .unwrap();
        for _ in 0..4 {
            w.code_all(interval.iter().copied()).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.chunks, 1);

        let mut r = AtcReader::open(&dir).unwrap();
        let out = r.decode_all().unwrap();
        assert_eq!(out.len(), 800);
        for lap in 0..4 {
            assert_eq!(&out[lap * 200..(lap + 1) * 200], &interval[..], "lap {lap}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_translation_reproduces_shifted_regions() {
        let dir = tmp("lossy-shift");
        // Four intervals, each a sweep of a different region: the paper's
        // perfect-imitation case.
        let cfg = LossyConfig {
            interval_len: 256,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 256,
                threads: 1,
            },
        )
        .unwrap();
        let mut expected = Vec::new();
        for region in [0xF2u64, 0xF3, 0xA1, 0xB7] {
            let interval: Vec<u64> = (0..256u64).map(|i| (region << 8) + i).collect();
            w.code_all(interval.iter().copied()).unwrap();
            expected.extend(interval);
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.chunks, 1, "one chunk imitated by all others");
        assert_eq!(stats.imitations, 3);

        let mut r = AtcReader::open(&dir).unwrap();
        assert_eq!(r.decode_all().unwrap(), expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_partial_final_interval() {
        let dir = tmp("lossy-partial");
        let cfg = LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 50,
                threads: 1,
            },
        )
        .unwrap();
        let addrs: Vec<u64> = (0..250u64).collect(); // 2.5 intervals
        w.code_all(addrs.iter().copied()).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.intervals, 3);

        let mut r = AtcReader::open(&dir).unwrap();
        let out = r.decode_all().unwrap();
        assert_eq!(out.len(), 250);
        // The final partial interval is stored losslessly.
        assert_eq!(&out[200..], &addrs[200..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn values_iterator() {
        let dir = tmp("values");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all([1u64, 2, 3]).unwrap();
        w.finish().unwrap();
        let mut r = AtcReader::open(&dir).unwrap();
        let vals: Vec<u64> = r.values().map(|v| v.unwrap()).collect();
        assert_eq!(vals, vec![1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_fails() {
        assert!(AtcReader::open("/nonexistent/atc/dir").is_err());
    }

    #[test]
    fn threaded_lossless_writer_is_byte_identical_and_readable() {
        let addrs: Vec<u64> = (0..30_000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9))
            .collect();
        let write = |threads: usize| {
            let dir = tmp(&format!("mt-lossless-{threads}"));
            let mut w = AtcWriter::with_options(
                &dir,
                Mode::Lossless,
                AtcOptions {
                    codec: "bzip".into(),
                    buffer: 1000,
                    threads,
                },
            )
            .unwrap();
            w.code_all(addrs.iter().copied()).unwrap();
            w.finish().unwrap();
            dir
        };
        let serial_dir = write(1);
        let serial_data = std::fs::read(serial_dir.join(format::DATA_FILE)).unwrap();
        for threads in [2usize, 4, 8] {
            let dir = write(threads);
            let data = std::fs::read(dir.join(format::DATA_FILE)).unwrap();
            assert_eq!(data, serial_data, "threads={threads}");
            // Cross-read: serial reader on threaded output and vice versa.
            let mut serial_read = AtcReader::open(&dir).unwrap();
            assert_eq!(serial_read.decode_all().unwrap(), addrs);
            let mut threaded_read = AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            assert_eq!(threaded_read.decode_all().unwrap(), addrs);
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&serial_dir).unwrap();
    }

    #[test]
    fn threaded_lossy_roundtrip_matches_serial() {
        let cfg = || LossyConfig {
            interval_len: 500,
            ..LossyConfig::default()
        };
        // Distinct regions per lap force several stored chunks, exercising
        // the background chunk pool.
        let mut addrs = Vec::new();
        for lap in 0..20u64 {
            for i in 0..500u64 {
                addrs.push(((lap % 5) << 32) + i * 64 + (lap / 5));
            }
        }
        let write = |threads: usize| {
            let dir = tmp(&format!("mt-lossy-{threads}"));
            let mut w = AtcWriter::with_options(
                &dir,
                Mode::Lossy(cfg()),
                AtcOptions {
                    codec: "bzip".into(),
                    buffer: 200,
                    threads,
                },
            )
            .unwrap();
            w.code_all(addrs.iter().copied()).unwrap();
            let stats = w.finish().unwrap();
            (dir, stats)
        };
        let (serial_dir, serial_stats) = write(1);
        let mut serial_out = AtcReader::open(&serial_dir).unwrap();
        let expect = serial_out.decode_all().unwrap();
        assert_eq!(expect.len(), addrs.len());
        for threads in [2usize, 4] {
            let (dir, stats) = write(threads);
            assert_eq!(stats.chunks, serial_stats.chunks, "threads={threads}");
            assert_eq!(stats.imitations, serial_stats.imitations);
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            assert_eq!(r.decode_all().unwrap(), expect, "threads={threads}");
            std::fs::remove_dir_all(&dir).unwrap();
        }
        std::fs::remove_dir_all(&serial_dir).unwrap();
    }

    #[test]
    fn next_frame_agrees_with_decode_lossless() {
        let addrs: Vec<u64> = (0..25_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let dir = tmp("frames-lossless");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "bzip".into(),
                buffer: 1000,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();

        for threads in [1usize, 4] {
            let open = || {
                AtcReader::open_with(
                    &dir,
                    ReadOptions {
                        threads,
                        ..ReadOptions::default()
                    },
                )
                .unwrap()
            };
            let mut by_decode = open();
            let expect = by_decode.decode_all().unwrap();
            let mut by_frames = open();
            let mut got = Vec::new();
            let mut frames = 0u64;
            while let Some(frame) = by_frames.next_frame().unwrap() {
                got.extend_from_slice(frame);
                frames += 1;
            }
            assert_eq!(got, expect, "threads={threads}");
            assert_eq!(got, addrs, "threads={threads}");
            assert_eq!(frames, 25, "threads={threads}");
            // Clean end of trace is sticky, not an error.
            assert!(by_frames.next_frame().unwrap().is_none());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_frame_borrows_segments_without_copy() {
        // 10k addresses in 512-address frames = ~80 KiB of column bytes:
        // well inside one 1 MiB codec segment, so every column must ride
        // the borrowed path — the counter test pinning that next_frame
        // eliminates the per-segment copy the read() path pays.
        let addrs: Vec<u64> = (0..10_000u64).map(|i| i * 64).collect();
        let dir = tmp("frames-zero-copy");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "bzip".into(),
                buffer: 512,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();

        for threads in [1usize, 2] {
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            let mut got = Vec::new();
            while let Some(frame) = r.next_frame().unwrap() {
                got.extend_from_slice(frame);
            }
            assert_eq!(got, addrs, "threads={threads}");
            let stats = r.frame_stats();
            assert_eq!(stats.frames, 20, "threads={threads}");
            assert_eq!(stats.borrowed_bytes, 10_000 * 8, "threads={threads}");
            assert_eq!(stats.copied_bytes, 0, "threads={threads}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_frame_agrees_with_decode_lossy() {
        let dir = tmp("frames-lossy");
        let cfg = LossyConfig {
            interval_len: 256,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 128,
                threads: 1,
            },
        )
        .unwrap();
        for region in [0xF2u64, 0xF3, 0xA1, 0xB7] {
            w.code_all((0..256u64).map(|i| (region << 8) + i)).unwrap();
        }
        w.code_all((0..100u64).map(|i| i * 8)).unwrap(); // partial tail
        w.finish().unwrap();

        let mut by_decode = AtcReader::open(&dir).unwrap();
        let expect = by_decode.decode_all().unwrap();
        let mut by_frames = AtcReader::open(&dir).unwrap();
        let mut got = Vec::new();
        let mut sizes = Vec::new();
        while let Some(frame) = by_frames.next_frame().unwrap() {
            sizes.push(frame.len());
            got.extend_from_slice(frame);
        }
        assert_eq!(got, expect);
        assert_eq!(
            sizes,
            vec![256, 256, 256, 256, 100],
            "one frame per interval"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_frame_interleaves_with_decode() {
        let addrs: Vec<u64> = (0..3000u64).map(|i| i * 13).collect();
        let dir = tmp("frames-interleave");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "store".into(),
                buffer: 1000,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();

        let mut r = AtcReader::open(&dir).unwrap();
        let mut got = Vec::new();
        // Pull a few values through decode (buffering a frame), then
        // switch to frames: the buffered tail must come out first.
        for _ in 0..5 {
            got.push(r.decode().unwrap().unwrap());
        }
        while let Some(frame) = r.next_frame().unwrap() {
            got.extend_from_slice(frame);
        }
        assert_eq!(got, addrs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn next_frame_latches_mid_stream_errors() {
        // Corrupt the *middle* of data.atc so framing still parses but a
        // later segment fails its integrity check: next_frame must
        // deliver the early frames, then fail, then keep failing — at
        // every thread count (the readahead latch regression shape).
        // 300k addresses = 2.4 MB raw = 3 codec segments, so the flipped
        // bit lands mid-stream with good frames before and after it.
        let addrs: Vec<u64> = (0..300_000u64).map(|i| i.wrapping_mul(0x517C)).collect();
        let dir = tmp("frames-latch");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "lz".into(),
                buffer: 1000,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();
        let data_path = dir.join(format::DATA_FILE);
        let mut data = std::fs::read(&data_path).unwrap();
        let flip = data.len() - data.len() / 4;
        data[flip] ^= 0x40;
        std::fs::write(&data_path, &data).unwrap();

        for threads in [1usize, 2, 4] {
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            let mut got = Vec::new();
            let err = loop {
                match r.next_frame() {
                    Ok(Some(frame)) => got.extend_from_slice(frame),
                    Ok(None) => panic!("corruption must not decay into clean EOF"),
                    Err(e) => break e,
                }
            };
            let _ = err;
            // Everything delivered before the failure is intact and
            // frame-aligned.
            assert!(got.len() < addrs.len(), "threads={threads}");
            assert_eq!(got.len() % 1000, 0, "threads={threads}");
            assert_eq!(got, addrs[..got.len()], "threads={threads}");
            // The error latches: later calls must keep failing.
            for _ in 0..3 {
                assert!(r.next_frame().is_err(), "threads={threads}");
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Writes a multi-segment lossless trace: small segments force many
    /// sidecar entries so seeks have something to skip.
    fn write_segmented(dir: &PathBuf, addrs: &[u64], codec: &str, buffer: usize) {
        let mut w = AtcWriter::with_options(
            dir,
            Mode::Lossless,
            AtcOptions {
                codec: codec.into(),
                buffer,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();
    }

    #[test]
    fn seek_matches_linear_decode_at_every_offset() {
        // ~470 KB raw in 1 MiB segments would be one segment; lz at
        // buffer 700 over 60k addresses still spans multiple segments
        // because DEFAULT_SEGMENT_SIZE cuts on raw bytes (480 KB < 1 MiB:
        // single segment). Use enough data for several segments.
        let addrs: Vec<u64> = (0..300_000u64).map(|i| i.wrapping_mul(0x9E37)).collect();
        let dir = tmp("seek-offsets");
        write_segmented(&dir, &addrs, "lz", 700);
        let mut linear = AtcReader::open(&dir).unwrap();
        let expect = linear.decode_all().unwrap();

        let mut r = AtcReader::open(&dir).unwrap();
        let frames = addrs.len().div_ceil(700) as u64;
        for frame_no in [0u64, 1, frames / 2, frames - 1, frames] {
            r.seek(frame_no).unwrap();
            let rest = r.decode_all().unwrap();
            let at = ((frame_no * 700) as usize).min(expect.len());
            assert_eq!(rest, &expect[at..], "frame {frame_no}");
        }
        // Past-the-end seeks fail cleanly (and latch).
        assert!(r.seek(frames + 1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seek_decodes_at_most_one_segment_before_target() {
        let addrs: Vec<u64> = (0..500_000u64).map(|i| i * 64).collect();
        let dir = tmp("seek-one-segment");
        write_segmented(&dir, &addrs, "lz", 1000);
        let mut r = AtcReader::open(&dir).unwrap();
        let table = load_seek_table(&dir, r.meta()).expect("sidecar written");
        assert!(table.len() >= 3, "need a multi-segment trace");

        // Seek deep into the trace: only the segment holding the target
        // may be decoded, not the ones in front of it.
        r.seek(400).unwrap();
        assert_eq!(r.segments_decoded(), Some(1));
        assert_eq!(r.decode().unwrap(), Some(addrs[400 * 1000]));
        assert!(
            r.segments_decoded().unwrap() <= 2,
            "target frame spans at most 2 segments"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seek_falls_back_linearly_without_sidecar() {
        let addrs: Vec<u64> = (0..120_000u64).map(|i| i.wrapping_mul(13)).collect();
        let dir = tmp("seek-fallback");
        write_segmented(&dir, &addrs, "lz", 1000);
        std::fs::remove_file(dir.join(format::SEEK_FILE)).unwrap();
        for threads in [1usize, 4] {
            let mut r = AtcReader::open_with(
                &dir,
                ReadOptions {
                    threads,
                    ..ReadOptions::default()
                },
            )
            .unwrap();
            r.seek(57).unwrap();
            let rest = r.decode_all().unwrap();
            assert_eq!(rest, &addrs[57_000..], "threads={threads}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seek_rejects_lossy_traces() {
        let dir = tmp("seek-lossy");
        let cfg = LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 50,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all((0..250u64).map(|i| i * 8)).unwrap();
        w.finish().unwrap();
        let mut r = AtcReader::open(&dir).unwrap();
        assert!(r.seek(1).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cached_reads_are_byte_identical_and_record_hits() {
        let addrs: Vec<u64> = (0..200_000u64).map(|i| i.wrapping_mul(0x517C)).collect();
        let dir = tmp("cached-reads");
        write_segmented(&dir, &addrs, "lz", 1000);
        let cache = Arc::new(SegmentCache::new(64 << 20));
        let with_cache = || ReadOptions {
            segment_cache: Some(Arc::clone(&cache)),
            ..ReadOptions::default()
        };

        // Cold pass decodes and populates; warm pass must read the very
        // same bytes out of the cache without decoding anything.
        let mut cold = AtcReader::open_with(&dir, with_cache()).unwrap();
        assert_eq!(cold.decode_all().unwrap(), addrs);
        let decoded_cold = cold.segments_decoded().unwrap();
        assert!(decoded_cold >= 2, "multi-segment trace");
        assert_eq!(cache.stats().hits, 0);

        let mut warm = AtcReader::open_with(&dir, with_cache()).unwrap();
        assert_eq!(warm.decode_all().unwrap(), addrs);
        assert_eq!(warm.segments_decoded(), Some(0), "every segment was cached");
        assert_eq!(cache.stats().hits, decoded_cold);

        // Warm seeks decode nothing either.
        let mut seeker = AtcReader::open_with(&dir, with_cache()).unwrap();
        seeker.seek(150).unwrap();
        assert_eq!(seeker.decode().unwrap(), Some(addrs[150_000]));
        assert_eq!(seeker.segments_decoded(), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn decode_all_flat_matches_streaming() {
        let addrs: Vec<u64> = (0..250_000u64).map(|i| i.wrapping_mul(0xABCD)).collect();
        let dir = tmp("flat-decode");
        for codec in ["lz", "bzip", "store"] {
            write_segmented(&dir, &addrs, codec, 900);
            let mut streaming = AtcReader::open(&dir).unwrap();
            let expect = streaming.decode_all().unwrap();
            for threads in [1usize, 4] {
                let mut flat = AtcReader::open_with(
                    &dir,
                    ReadOptions {
                        threads,
                        ..ReadOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(flat.decode_all_flat().unwrap(), expect, "{codec}/{threads}");
                // The reader is drained, not rewound.
                assert_eq!(flat.decode().unwrap(), None, "{codec}/{threads}");
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn decode_all_flat_falls_back_without_sidecar() {
        let addrs: Vec<u64> = (0..50_000u64).map(|i| i * 3).collect();
        let dir = tmp("flat-fallback");
        write_segmented(&dir, &addrs, "lz", 500);
        std::fs::remove_file(dir.join(format::SEEK_FILE)).unwrap();
        let mut r = AtcReader::open(&dir).unwrap();
        assert_eq!(r.decode_all_flat().unwrap(), addrs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seek_then_next_frame_continues_borrowed_path() {
        let addrs: Vec<u64> = (0..100_000u64).map(|i| i * 7).collect();
        let dir = tmp("seek-frames");
        write_segmented(&dir, &addrs, "lz", 1000);
        let mut r = AtcReader::open(&dir).unwrap();
        r.seek(42).unwrap();
        let mut got = Vec::new();
        while let Some(frame) = r.next_frame().unwrap() {
            got.extend_from_slice(frame);
        }
        assert_eq!(got, &addrs[42_000..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_count_detected() {
        let dir = tmp("truncated");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all((0..10u64).map(|i| i * 64)).unwrap();
        w.finish().unwrap();
        // Tamper: claim more addresses than stored.
        let meta_path = dir.join("meta");
        let text = std::fs::read_to_string(&meta_path).unwrap();
        std::fs::write(&meta_path, text.replace("count=10", "count=11")).unwrap();
        let mut r = AtcReader::open(&dir).unwrap();
        assert!(r.decode_all().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
