//! Container integrity verification.
//!
//! [`verify`] walks an ATC trace directory end to end — header, interval
//! trace, every referenced chunk, every checksum — without materializing
//! the decoded trace, and reports what it found. Useful before shipping
//! multi-gigabyte trace archives (the paper's use case stores traces for
//! "hours of real execution").

use std::collections::BTreeSet;
use std::fs::File;
use std::io::BufReader;
use std::path::Path;
use std::sync::Arc;

use atc_codec::{codec_by_name, Codec, CodecReader};

use crate::error::{AtcError, Result};
use crate::format::{self, IntervalRecord, Meta};

/// What [`verify`] found in a healthy container.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Parsed header.
    pub mode: String,
    /// Total addresses recoverable from the container.
    pub addresses: u64,
    /// Number of interval records (lossy mode; 0 in lossless mode).
    pub intervals: u64,
    /// Chunk files present and referenced.
    pub chunks: u64,
    /// Chunk files present on disk but referenced by no interval record
    /// (harmless, but a sign of a bug or tampering).
    pub orphan_chunks: Vec<String>,
}

/// Verifies an ATC trace directory.
///
/// Checks performed:
///
/// * `meta` parses and names a known codec;
/// * every payload stream decompresses with valid per-block checksums;
/// * lossy mode: every interval record is well-formed, every referenced
///   chunk file exists, decodes, and has the length its `NewChunk` record
///   declared;
/// * the total address count matches `meta`.
///
/// # Errors
///
/// Returns the first [`AtcError`] encountered; a returned report means the
/// container decodes cleanly end to end.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::{verify, AtcWriter, Mode};
///
/// let dir = std::env::temp_dir().join("atc-verify-doc");
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut w = AtcWriter::create(&dir, Mode::Lossless)?;
/// w.code_all((0..100u64).map(|i| i * 64))?;
/// w.finish()?;
/// let report = verify(&dir)?;
/// assert_eq!(report.addresses, 100);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
pub fn verify<P: AsRef<Path>>(dir: P) -> Result<VerifyReport> {
    let dir = dir.as_ref();
    let meta_text = std::fs::read_to_string(dir.join(format::META_FILE))
        .map_err(|e| AtcError::Format(format!("cannot read meta: {e}")))?;
    let meta = Meta::parse(&meta_text)?;
    let codec: Arc<dyn Codec> = Arc::from(
        codec_by_name(&meta.codec)
            .ok_or_else(|| AtcError::Format(format!("unknown codec {:?}", meta.codec)))?,
    );

    let report = match meta.mode.as_str() {
        "lossless" => verify_lossless(dir, &meta, &codec)?,
        "lossy" => verify_lossy(dir, &meta, &codec)?,
        other => return Err(AtcError::Format(format!("unknown mode {other:?}"))),
    };
    if report.addresses != meta.count {
        return Err(AtcError::Format(format!(
            "container holds {} addresses, meta declares {}",
            report.addresses, meta.count
        )));
    }
    Ok(report)
}

fn verify_lossless(dir: &Path, meta: &Meta, codec: &Arc<dyn Codec>) -> Result<VerifyReport> {
    let file = BufReader::new(File::open(dir.join(format::DATA_FILE))?);
    let mut stream = CodecReader::new(file, Arc::clone(codec));
    let mut addresses = 0u64;
    while let Some(frame) = format::read_frame(&mut stream)? {
        addresses += frame.len() as u64;
    }
    Ok(VerifyReport {
        mode: meta.mode.clone(),
        addresses,
        intervals: 0,
        chunks: 0,
        orphan_chunks: Vec::new(),
    })
}

fn verify_lossy(dir: &Path, meta: &Meta, codec: &Arc<dyn Codec>) -> Result<VerifyReport> {
    let file = BufReader::new(File::open(dir.join(format::INFO_FILE))?);
    let mut info = CodecReader::new(file, Arc::clone(codec));

    // First pass over records: collect references and declared lengths.
    let mut declared: Vec<(u64, u64)> = Vec::new(); // (chunk_id, len)
    let mut referenced: BTreeSet<u64> = BTreeSet::new();
    let mut intervals = 0u64;
    let mut addresses = 0u64;
    let mut imitated: Vec<u64> = Vec::new();
    while let Some(rec) = IntervalRecord::read(&mut info)? {
        intervals += 1;
        match rec {
            IntervalRecord::NewChunk { chunk_id, len } => {
                declared.push((chunk_id, len));
                referenced.insert(chunk_id);
                addresses += len;
            }
            IntervalRecord::Imitate { chunk_id, .. } => {
                referenced.insert(chunk_id);
                imitated.push(chunk_id);
            }
        }
    }

    // Decode every referenced chunk once, checking declared lengths.
    let mut actual_len: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for &id in &referenced {
        let path = dir.join(format::chunk_file_name(id));
        let file = BufReader::new(File::open(&path).map_err(|e| {
            AtcError::Format(format!(
                "referenced chunk file {} missing: {e}",
                path.display()
            ))
        })?);
        let mut stream = CodecReader::new(file, Arc::clone(codec));
        let mut n = 0u64;
        while let Some(frame) = format::read_frame(&mut stream)? {
            n += frame.len() as u64;
        }
        actual_len.insert(id, n);
    }
    for &(id, len) in &declared {
        let actual = actual_len.get(&id).copied().unwrap_or(0);
        if actual != len {
            return Err(AtcError::Format(format!(
                "chunk {id} holds {actual} addresses, record declares {len}"
            )));
        }
    }
    for id in imitated {
        addresses += actual_len.get(&id).copied().unwrap_or(0);
    }

    // Orphan scan: chunk files on disk that nothing references.
    let mut orphan_chunks = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(id_str) = name
            .strip_prefix("chunk-")
            .and_then(|s| s.strip_suffix(".atc"))
        {
            if let Ok(id) = id_str.parse::<u64>() {
                if !referenced.contains(&id) {
                    orphan_chunks.push(name);
                }
            }
        }
    }
    orphan_chunks.sort();

    Ok(VerifyReport {
        mode: meta.mode.clone(),
        addresses,
        intervals,
        chunks: referenced.len() as u64,
        orphan_chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lossy::LossyConfig;
    use crate::writer::{AtcOptions, AtcWriter, Mode};

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-verify-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn verifies_lossless() {
        let dir = tmp("ll");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all((0..5000u64).map(|i| i * 3)).unwrap();
        w.finish().unwrap();
        let r = verify(&dir).unwrap();
        assert_eq!(r.addresses, 5000);
        assert_eq!(r.mode, "lossless");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verifies_lossy_with_imitations() {
        let dir = tmp("ly");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(LossyConfig {
                interval_len: 200,
                ..LossyConfig::default()
            }),
            AtcOptions {
                codec: "bzip".into(),
                buffer: 50,
                threads: 1,
            },
        )
        .unwrap();
        for _ in 0..5 {
            w.code_all((0..200u64).map(|i| i * 64)).unwrap();
        }
        w.finish().unwrap();
        let r = verify(&dir).unwrap();
        assert_eq!(r.addresses, 1000);
        assert_eq!(r.intervals, 5);
        assert_eq!(r.chunks, 1);
        assert!(r.orphan_chunks.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_count_mismatch() {
        let dir = tmp("count");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all([1u64, 2, 3]).unwrap();
        w.finish().unwrap();
        let meta_path = dir.join("meta");
        let text = std::fs::read_to_string(&meta_path).unwrap();
        std::fs::write(&meta_path, text.replace("count=3", "count=4")).unwrap();
        assert!(verify(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reports_orphan_chunks() {
        let dir = tmp("orphan");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(LossyConfig {
                interval_len: 100,
                ..LossyConfig::default()
            }),
            AtcOptions {
                codec: "store".into(),
                buffer: 50,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all((0..100u64).map(|i| i * 64)).unwrap();
        w.finish().unwrap();
        // Drop in an unreferenced chunk file (valid name, plausible bytes).
        std::fs::copy(dir.join("chunk-000000.atc"), dir.join("chunk-000042.atc")).unwrap();
        let r = verify(&dir).unwrap();
        assert_eq!(r.orphan_chunks, vec!["chunk-000042.atc".to_string()]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn detects_missing_chunk() {
        let dir = tmp("missing");
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(LossyConfig {
                interval_len: 100,
                ..LossyConfig::default()
            }),
            AtcOptions {
                codec: "bzip".into(),
                buffer: 50,
                threads: 1,
            },
        )
        .unwrap();
        w.code_all((0..100u64).map(|i| i * 64)).unwrap();
        w.finish().unwrap();
        std::fs::remove_file(dir.join("chunk-000000.atc")).unwrap();
        assert!(verify(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
