//! Streaming ATC compression (the original tool's `atc_open('c'|'k') /
//! atc_code / atc_close`).

use std::fs::{self, File};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use atc_codec::{
    codec_by_name, Codec, CodecWriter, ParallelCodecWriter, StreamScratch, WorkerPool,
};

use crate::error::{AtcError, Result};
use crate::format::{self, IntervalRecord, Meta, FORMAT_VERSION};
use crate::lossy::{Classification, LossyConfig, PhaseClassifier};

/// Compression mode, mirroring the original tool's `'c'` / `'k'` open modes.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Lossless: bytesort + back-end codec only (`'c'`).
    Lossless,
    /// Lossy: phase-based interval imitation (`'k'`), with the given
    /// parameters. `Mode::Lossy(LossyConfig::default())` reproduces the
    /// paper's settings.
    Lossy(LossyConfig),
}

/// Tuning knobs shared by both modes.
#[derive(Debug, Clone)]
pub struct AtcOptions {
    /// Back-end codec name (`"bzip"`, `"lz"`, `"store"`); the analogue of
    /// the compressor command string passed to the original `atc_open`.
    pub codec: String,
    /// Bytesort buffer size `B` in addresses (the paper evaluates 1 M and
    /// 10 M).
    pub buffer: usize,
    /// Compression worker threads. `0`/`1` keep every byte on the producer
    /// thread (the original single-threaded behavior); `n > 1` hands full
    /// segments (lossless mode) or whole chunk files (lossy mode) to a
    /// bounded pool of `n` workers. The on-disk format is byte-identical
    /// at every thread count, so readers never need to know.
    pub threads: usize,
}

impl Default for AtcOptions {
    /// `bzip` back end with a 1 M-address buffer — the configuration the
    /// paper uses for lossy chunks ("all chunks are compressed with the
    /// bytesort method … using a buffer size of 1 million addresses") —
    /// and single-threaded compression.
    fn default() -> Self {
        Self {
            codec: "bzip".into(),
            buffer: 1_000_000,
            threads: 1,
        }
    }
}

/// Statistics returned by [`AtcWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtcStats {
    /// Addresses compressed.
    pub count: u64,
    /// Intervals processed (lossy mode; 0 in lossless mode).
    pub intervals: u64,
    /// Chunks stored on disk.
    pub chunks: u64,
    /// Intervals recorded as imitations.
    pub imitations: u64,
    /// Total size of the output directory in bytes.
    pub compressed_bytes: u64,
}

impl AtcStats {
    /// Average compressed bits per address (the paper's BPA metric).
    pub fn bits_per_address(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.count as f64
        }
    }

    /// Compression ratio versus raw 8-byte addresses.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            (self.count * 8) as f64 / self.compressed_bytes as f64
        }
    }
}

/// A streaming ATC compressor writing a trace directory.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::{AtcWriter, Mode};
///
/// let dir = std::env::temp_dir().join("atc-writer-doc");
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut w = AtcWriter::create(&dir, Mode::Lossless)?;
/// for a in 0..100u64 {
///     w.code(a * 64)?;
/// }
/// let stats = w.finish()?;
/// assert_eq!(stats.count, 100);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AtcWriter {
    dir: PathBuf,
    codec: Arc<dyn Codec>,
    codec_name: String,
    buffer: usize,
    count: u64,
    state: State,
}

#[derive(Debug)]
enum State {
    Lossless {
        out: ParallelCodecWriter<BufWriter<File>>,
        buf: Vec<u64>,
    },
    Lossy {
        classifier: PhaseClassifier,
        interval: Vec<u64>,
        info: CodecWriter<BufWriter<File>>,
        next_chunk_id: u64,
        intervals: u64,
        imitations: u64,
        /// Background chunk compression (None = compress on this thread).
        pool: Option<ChunkPool>,
    },
}

/// One pending chunk file: compress `addrs` into `path`.
struct ChunkJob {
    path: PathBuf,
    addrs: Vec<u64>,
    buffer: usize,
}

/// Bounded pool of workers compressing chunk files off the producer
/// thread (lossy mode with `AtcOptions::threads > 1`).
///
/// Thin wrapper over the codec layer's [`WorkerPool`]: chunk files are
/// independent of each other and of the interval trace, so they need no
/// ordering — only completion before `finish`. The first worker error
/// permanently poisons the pool: the original error surfaces on the
/// producer thread once, and every later submission or `finish` keeps
/// failing (so a failed trace can never be "finished" into a meta header
/// that references chunk files that were never written).
#[derive(Debug)]
struct ChunkPool {
    pool: WorkerPool<ChunkJob>,
    latch: Arc<Mutex<ErrorLatch>>,
}

/// Worker-error latch: `Failed(e)` until the error is handed out, then
/// `Poisoned` forever.
#[derive(Debug, Default)]
enum ErrorLatch {
    #[default]
    Ok,
    Failed(AtcError),
    Poisoned,
}

impl ErrorLatch {
    fn record(&mut self, e: AtcError) {
        if matches!(self, ErrorLatch::Ok) {
            *self = ErrorLatch::Failed(e);
        }
    }

    /// The original error on first call, a generic poisoned error after.
    fn surface(&mut self) -> Result<()> {
        match std::mem::replace(self, ErrorLatch::Poisoned) {
            ErrorLatch::Ok => {
                *self = ErrorLatch::Ok;
                Ok(())
            }
            ErrorLatch::Failed(e) => Err(e),
            ErrorLatch::Poisoned => Err(AtcError::Format(
                "chunk compression pool failed earlier; the trace is incomplete".into(),
            )),
        }
    }
}

impl ChunkPool {
    fn spawn(codec: &Arc<dyn Codec>, threads: usize) -> Self {
        let latch: Arc<Mutex<ErrorLatch>> = Arc::default();
        let codec = Arc::clone(codec);
        let worker_latch = Arc::clone(&latch);
        // Bound queued chunks to 2x threads: each job holds a whole
        // interval of addresses, so the queue is the dominant memory cost.
        // Each worker owns a StreamScratch threaded through every chunk
        // file it writes, so only its first chunk pays the segment-buffer
        // allocations.
        let pool = WorkerPool::spawn_with(threads, threads * 2, "atc-chunk", move || {
            let codec = Arc::clone(&codec);
            let worker_latch = Arc::clone(&worker_latch);
            let mut scratch = StreamScratch::default();
            move |job: ChunkJob| {
                if !matches!(
                    *worker_latch.lock().expect("error latch poisoned"),
                    ErrorLatch::Ok
                ) {
                    return; // drain cheaply once failed
                }
                if let Err(e) =
                    write_chunk_file_with(&codec, &job.path, &job.addrs, job.buffer, &mut scratch)
                {
                    worker_latch.lock().expect("error latch poisoned").record(e);
                }
            }
        });
        Self { pool, latch }
    }

    /// Surfaces a worker failure (the original error first, a poisoned
    /// error on every call after that).
    fn check(&self) -> Result<()> {
        self.latch.lock().expect("error latch poisoned").surface()
    }

    fn submit(&self, job: ChunkJob) -> Result<()> {
        self.check()?;
        self.pool
            .submit(job)
            .map_err(|_| AtcError::Format("chunk compression pool died".into()))
    }

    /// Closes the queue, waits for all chunk files to land, and surfaces
    /// any worker failure.
    fn finish(self) -> Result<()> {
        let Self { pool, latch } = self;
        pool.join()
            .map_err(|_| AtcError::Format("chunk worker panicked".into()))?;
        let result = latch.lock().expect("error latch poisoned").surface();
        result
    }
}

/// Compresses one chunk file (inline path, no scratch carried over).
fn write_chunk_file(
    codec: &Arc<dyn Codec>,
    path: &Path,
    addrs: &[u64],
    buffer: usize,
) -> Result<()> {
    let mut scratch = StreamScratch::default();
    write_chunk_file_with(codec, path, addrs, buffer, &mut scratch)
}

/// Compresses one chunk file, cycling `scratch` through the stream so a
/// worker writing many chunks reuses its segment buffers (shared by the
/// inline path and the pool workers).
fn write_chunk_file_with(
    codec: &Arc<dyn Codec>,
    path: &Path,
    addrs: &[u64],
    buffer: usize,
    scratch: &mut StreamScratch,
) -> Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut out = CodecWriter::with_scratch(
        file,
        Arc::clone(codec),
        atc_codec::DEFAULT_SEGMENT_SIZE,
        std::mem::take(scratch),
    );
    for chunk in addrs.chunks(buffer) {
        format::write_frame(&mut out, chunk)?;
    }
    // On success the stream's buffers come back for the next chunk; on
    // error they are dropped with the failed stream (the pool is poisoned
    // at that point anyway).
    let (_, reclaimed) = out.finish_with_scratch()?;
    *scratch = reclaimed;
    Ok(())
}

impl AtcWriter {
    /// Creates a trace directory with default options.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, already contains a trace,
    /// or the options are invalid.
    pub fn create<P: AsRef<Path>>(dir: P, mode: Mode) -> Result<Self> {
        Self::with_options(dir, mode, AtcOptions::default())
    }

    /// Creates a trace directory with explicit options.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, already contains a trace,
    /// the codec name is unknown, `buffer` is zero, or the lossy
    /// configuration is invalid.
    pub fn with_options<P: AsRef<Path>>(dir: P, mode: Mode, options: AtcOptions) -> Result<Self> {
        if options.buffer == 0 {
            return Err(AtcError::Format("buffer size must be positive".into()));
        }
        let codec: Arc<dyn Codec> = Arc::from(
            codec_by_name(&options.codec)
                .ok_or_else(|| AtcError::Format(format!("unknown codec {:?}", options.codec)))?,
        );
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(format::META_FILE).exists() {
            return Err(AtcError::Format(format!(
                "directory {} already contains an ATC trace",
                dir.display()
            )));
        }

        let threads = options.threads.max(1);
        let state = match mode {
            Mode::Lossless => {
                let file = BufWriter::new(File::create(dir.join(format::DATA_FILE))?);
                // threads <= 1 runs inline on this thread — exactly the
                // serial CodecWriter path and byte-identical output.
                State::Lossless {
                    out: ParallelCodecWriter::new(file, Arc::clone(&codec), threads),
                    buf: Vec::with_capacity(options.buffer.min(1 << 24)),
                }
            }
            Mode::Lossy(cfg) => {
                cfg.validate().map_err(AtcError::Format)?;
                let file = BufWriter::new(File::create(dir.join(format::INFO_FILE))?);
                State::Lossy {
                    interval: Vec::with_capacity(cfg.interval_len.min(1 << 24)),
                    classifier: PhaseClassifier::new(cfg),
                    info: CodecWriter::new(file, Arc::clone(&codec)),
                    next_chunk_id: 0,
                    intervals: 0,
                    imitations: 0,
                    pool: (threads > 1).then(|| ChunkPool::spawn(&codec, threads)),
                }
            }
        };
        Ok(Self {
            dir,
            codec,
            codec_name: options.codec,
            buffer: options.buffer,
            count: 0,
            state,
        })
    }

    /// Compresses one 64-bit value (the original `atc_code`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors.
    pub fn code(&mut self, value: u64) -> Result<()> {
        self.count += 1;
        let interval_len = self.interval_len();
        let buffer = self.buffer;
        match &mut self.state {
            State::Lossless { out, buf } => {
                buf.push(value);
                if buf.len() == buffer {
                    format::write_frame(out, buf)?;
                    buf.clear();
                }
                Ok(())
            }
            State::Lossy { interval, .. } => {
                interval.push(value);
                if interval.len() == interval_len {
                    self.end_interval()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Compresses every value from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`AtcWriter::code`].
    pub fn code_all<I: IntoIterator<Item = u64>>(&mut self, values: I) -> Result<()> {
        for v in values {
            self.code(v)?;
        }
        Ok(())
    }

    /// Number of addresses accepted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    fn interval_len(&self) -> usize {
        match &self.state {
            State::Lossy { classifier, .. } => classifier.config().interval_len,
            State::Lossless { .. } => usize::MAX,
        }
    }

    /// Finishes the interval currently buffered (lossy mode only).
    fn end_interval(&mut self) -> Result<()> {
        // Take the interval buffer out of the state to appease borrows.
        let State::Lossy {
            classifier,
            interval,
            info,
            next_chunk_id,
            intervals,
            imitations,
            pool,
        } = &mut self.state
        else {
            unreachable!("end_interval is only called in lossy mode");
        };
        if interval.is_empty() {
            return Ok(());
        }
        *intervals += 1;
        let full = interval.len() == classifier.config().interval_len;
        let classification = if full {
            classifier.classify(interval, *next_chunk_id)
        } else {
            // Final partial interval: always stored (imitating with a chunk
            // of different length would change the trace length).
            Classification::NewChunk
        };
        match classification {
            Classification::NewChunk => {
                let id = *next_chunk_id;
                *next_chunk_id += 1;
                let len = interval.len() as u64;
                let path = self.dir.join(format::chunk_file_name(id));
                if let Some(pool) = pool {
                    // Hand the whole chunk to the background pool; the
                    // interval record can be written immediately (chunk
                    // files need no ordering, only completion by finish).
                    // The replacement buffer is pre-sized so the next
                    // interval does not regrow from zero capacity.
                    let capacity = classifier.config().interval_len.min(1 << 24);
                    let addrs = std::mem::replace(interval, Vec::with_capacity(capacity));
                    pool.submit(ChunkJob {
                        path,
                        addrs,
                        buffer: self.buffer,
                    })?;
                } else {
                    write_chunk_file(&self.codec, &path, interval, self.buffer)?;
                }
                IntervalRecord::NewChunk { chunk_id: id, len }.write(info)?;
            }
            Classification::Imitate {
                chunk_id,
                translations,
                ..
            } => {
                *imitations += 1;
                IntervalRecord::Imitate {
                    chunk_id,
                    translations,
                }
                .write(info)?;
            }
        }
        interval.clear();
        Ok(())
    }

    /// Flushes buffered data, writes the `meta` header, and returns the
    /// compression statistics (the original `atc_close`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors.
    pub fn finish(mut self) -> Result<AtcStats> {
        let (intervals, chunks, imitations, interval_len, threshold) = match &mut self.state {
            State::Lossless { .. } => (0, 0, 0, 0u64, 0.0),
            State::Lossy { .. } => {
                self.end_interval()?;
                let State::Lossy {
                    intervals,
                    next_chunk_id,
                    imitations,
                    classifier,
                    ..
                } = &self.state
                else {
                    unreachable!();
                };
                (
                    *intervals,
                    *next_chunk_id,
                    *imitations,
                    classifier.config().interval_len as u64,
                    classifier.config().threshold,
                )
            }
        };

        match self.state {
            State::Lossless { mut out, buf } => {
                if !buf.is_empty() {
                    format::write_frame(&mut out, &buf)?;
                }
                out.finish()?;
            }
            State::Lossy { info, pool, .. } => {
                info.finish()?;
                if let Some(pool) = pool {
                    // All chunk files must be on disk before the header
                    // is written and the directory size measured.
                    pool.finish()?;
                }
            }
        }

        let meta = Meta {
            version: FORMAT_VERSION,
            mode: if interval_len == 0 {
                "lossless"
            } else {
                "lossy"
            }
            .into(),
            codec: self.codec_name.clone(),
            buffer: self.buffer as u64,
            interval_len,
            threshold,
            count: self.count,
            chunks,
        };
        fs::write(self.dir.join(format::META_FILE), meta.to_text())?;

        let compressed_bytes = dir_size(&self.dir)?;
        Ok(AtcStats {
            count: self.count,
            intervals,
            chunks,
            imitations,
            compressed_bytes,
        })
    }
}

/// Total size in bytes of all files directly inside `dir`.
pub(crate) fn dir_size(dir: &Path) -> Result<u64> {
    let mut total = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            total += entry.metadata()?.len();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-writer-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lossless_creates_layout() {
        let dir = tmp("layout");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all((0..1000u64).map(|i| i * 64)).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 1000);
        assert!(dir.join("meta").exists());
        assert!(dir.join("data.atc").exists());
        assert!(stats.compressed_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_creates_chunks_and_info() {
        let dir = tmp("lossy");
        let cfg = LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 64,
                threads: 1,
            },
        )
        .unwrap();
        // 5 identical intervals: 1 chunk + 4 imitations.
        for _ in 0..5 {
            w.code_all((0..100u64).map(|i| i * 64)).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 500);
        assert_eq!(stats.intervals, 5);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.imitations, 4);
        assert!(dir.join("chunk-000000.atc").exists());
        assert!(dir.join("info.atc").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_double_create() {
        let dir = tmp("double");
        let w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.finish().unwrap();
        assert!(AtcWriter::create(&dir, Mode::Lossless).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_options() {
        let dir = tmp("badopt");
        assert!(AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "nope".into(),
                buffer: 10,
                threads: 1,
            }
        )
        .is_err());
        assert!(AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "store".into(),
                buffer: 0,
                threads: 1,
            }
        )
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_bpa() {
        let s = AtcStats {
            count: 1000,
            intervals: 0,
            chunks: 0,
            imitations: 0,
            compressed_bytes: 250,
        };
        assert!((s.bits_per_address() - 2.0).abs() < 1e-12);
        assert!((s.ratio() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let dir = tmp("empty");
        let w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.bits_per_address(), 0.0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
