//! Streaming ATC compression (the original tool's `atc_open('c'|'k') /
//! atc_code / atc_close`).

use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::BufWriter;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use atc_codec::{
    codec_by_name, ByteBudget, Codec, CodecWriter, ParallelCodecWriter, StreamScratch,
};
use atc_engine::{panic_message, Engine, WorkerLocal};

use crate::error::{AtcError, Result};
use crate::format::{self, IntervalRecord, Meta, FORMAT_VERSION};
use crate::lossy::{Classification, LossyConfig, PhaseClassifier};

/// Compression mode, mirroring the original tool's `'c'` / `'k'` open modes.
#[derive(Debug, Clone)]
pub enum Mode {
    /// Lossless: bytesort + back-end codec only (`'c'`).
    Lossless,
    /// Lossy: phase-based interval imitation (`'k'`), with the given
    /// parameters. `Mode::Lossy(LossyConfig::default())` reproduces the
    /// paper's settings.
    Lossy(LossyConfig),
}

/// Tuning knobs shared by both modes.
#[derive(Debug, Clone)]
pub struct AtcOptions {
    /// Back-end codec name (`"bzip"`, `"lz"`, `"store"`); the analogue of
    /// the compressor command string passed to the original `atc_open`.
    pub codec: String,
    /// Bytesort buffer size `B` in addresses (the paper evaluates 1 M and
    /// 10 M).
    pub buffer: usize,
    /// Compression parallelism. `0`/`1` keep every byte on the producer
    /// thread (the original single-threaded behavior); `n > 1` submits
    /// full segments (lossless mode) or interval classification + whole
    /// chunk files (lossy mode) as tasks to the shared work-stealing
    /// engine, growing the process-wide engine to at least `n` workers
    /// (tests inject an explicit engine through
    /// [`AtcWriter::with_options_engine`] instead). The on-disk format is
    /// byte-identical at every thread and worker count, so readers never
    /// need to know.
    pub threads: usize,
}

impl Default for AtcOptions {
    /// `bzip` back end with a 1 M-address buffer — the configuration the
    /// paper uses for lossy chunks ("all chunks are compressed with the
    /// bytesort method … using a buffer size of 1 million addresses") —
    /// and single-threaded compression.
    fn default() -> Self {
        Self {
            codec: "bzip".into(),
            buffer: 1_000_000,
            threads: 1,
        }
    }
}

/// Statistics returned by [`AtcWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtcStats {
    /// Addresses compressed.
    pub count: u64,
    /// Intervals processed (lossy mode; 0 in lossless mode).
    pub intervals: u64,
    /// Chunks stored on disk.
    pub chunks: u64,
    /// Intervals recorded as imitations.
    pub imitations: u64,
    /// Total size of the output directory in bytes.
    pub compressed_bytes: u64,
}

impl AtcStats {
    /// Average compressed bits per address (the paper's BPA metric).
    pub fn bits_per_address(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / self.count as f64
        }
    }

    /// Compression ratio versus raw 8-byte addresses.
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            0.0
        } else {
            (self.count * 8) as f64 / self.compressed_bytes as f64
        }
    }
}

/// A streaming ATC compressor writing a trace directory.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use atc_core::{AtcWriter, Mode};
///
/// let dir = std::env::temp_dir().join("atc-writer-doc");
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut w = AtcWriter::create(&dir, Mode::Lossless)?;
/// for a in 0..100u64 {
///     w.code(a * 64)?;
/// }
/// let stats = w.finish()?;
/// assert_eq!(stats.count, 100);
/// # std::fs::remove_dir_all(&dir)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AtcWriter {
    dir: PathBuf,
    codec: Arc<dyn Codec>,
    codec_name: String,
    buffer: usize,
    count: u64,
    state: State,
}

#[derive(Debug)]
enum State {
    Lossless {
        out: Box<ParallelCodecWriter<BufWriter<File>>>,
        buf: Vec<u64>,
    },
    Lossy {
        /// The interval currently being accumulated by the producer.
        interval: Vec<u64>,
        /// Interval length `L` (cached here so the hot `code` path never
        /// touches the classifier, which may live behind the pipeline).
        interval_len: usize,
        back: LossyBack,
    },
}

/// Where lossy classification runs.
#[derive(Debug)]
enum LossyBack {
    /// `threads <= 1`: classify and compress on the producer thread (the
    /// original single-threaded behavior).
    Inline(Box<LossyCore>),
    /// `threads > 1`: finished intervals queue to a serialized classifier
    /// *actor task* on the engine; chunk payloads fan out as independent
    /// chunk tasks. The producer thread only accumulates addresses.
    Engine(LossyPipeline),
}

/// Worker-error latch: `Failed(e)` until the error is handed out, then
/// `Poisoned` forever.
#[derive(Debug, Default)]
enum ErrorLatch {
    #[default]
    Ok,
    Failed(AtcError),
    Poisoned,
}

impl ErrorLatch {
    fn record(&mut self, e: AtcError) {
        if matches!(self, ErrorLatch::Ok) {
            *self = ErrorLatch::Failed(e);
        }
    }

    /// The original error on first call, a generic poisoned error after.
    fn surface(&mut self) -> Result<()> {
        match std::mem::replace(self, ErrorLatch::Poisoned) {
            ErrorLatch::Ok => {
                *self = ErrorLatch::Ok;
                Ok(())
            }
            ErrorLatch::Failed(e) => Err(e),
            ErrorLatch::Poisoned => Err(AtcError::Format(
                "lossy compression pipeline failed earlier; the trace is incomplete".into(),
            )),
        }
    }
}

/// Producer ↔ actor ↔ chunk-task handoff state.
#[derive(Debug, Default)]
struct LossyQueue {
    /// Finished intervals awaiting classification, in arrival order.
    intervals: VecDeque<Vec<u64>>,
    /// An actor task is scheduled or running.
    actor_live: bool,
    /// Chunk-compression tasks in flight.
    pending_chunks: usize,
    /// Recycled interval buffers for the producer.
    spare: Vec<Vec<u64>>,
    /// Mirror of the error latch, checkable without taking the actor lock.
    failed: bool,
}

/// Classifier-side state — the *one* copy of the classification and
/// record-writing logic, owned by the producer thread in inline mode
/// and by the serialized actor task in engine mode, so the two paths
/// cannot drift apart (their byte-identity is a format invariant).
#[derive(Debug)]
struct LossyCore {
    classifier: PhaseClassifier,
    /// `Some` until `finish` takes it to terminate the stream.
    info: Option<CodecWriter<BufWriter<File>>>,
    next_chunk_id: u64,
    intervals: u64,
    imitations: u64,
}

/// What [`LossyCore::classify_and_record`] decided about the payload.
enum Recorded {
    /// The interval became chunk `id`: compress `addrs` into its file.
    StoreChunk { id: u64, addrs: Vec<u64> },
    /// The interval was recorded as an imitation; `addrs` is free for
    /// reuse.
    Imitated { addrs: Vec<u64> },
}

impl LossyCore {
    /// Classifies one finished interval and writes its
    /// [`IntervalRecord`]; the caller decides how to store a chunk
    /// payload (inline write vs engine task).
    fn classify_and_record(&mut self, interval: Vec<u64>, interval_len: usize) -> Result<Recorded> {
        self.intervals += 1;
        let full = interval.len() == interval_len;
        let classification = if full {
            self.classifier.classify(&interval, self.next_chunk_id)
        } else {
            // Final partial interval: always stored (imitating with a
            // chunk of different length would change the trace length).
            Classification::NewChunk
        };
        // atclint: allow(library-unwrap) -- infallible: `info` is Some from
        // construction until finish() takes it, and no interval is submitted
        // after finish.
        let info = self.info.as_mut().expect("info stream lives until finish");
        match classification {
            Classification::NewChunk => {
                let id = self.next_chunk_id;
                self.next_chunk_id += 1;
                let len = interval.len() as u64;
                IntervalRecord::NewChunk { chunk_id: id, len }.write(info)?;
                Ok(Recorded::StoreChunk {
                    id,
                    addrs: interval,
                })
            }
            Classification::Imitate {
                chunk_id,
                translations,
                ..
            } => {
                self.imitations += 1;
                IntervalRecord::Imitate {
                    chunk_id,
                    translations,
                }
                .write(info)?;
                Ok(Recorded::Imitated { addrs: interval })
            }
        }
    }
}

/// Everything the engine-backed lossy pipeline shares across tasks.
#[derive(Debug)]
struct LossyShared {
    queue: Mutex<LossyQueue>,
    /// Signaled on every queue transition: the producer waits here for
    /// room, `finish` waits here for quiescence.
    changed: Condvar,
    /// Only the single live actor task (and `finish`, after quiescence)
    /// locks this, so classification never contends with the producer.
    actor: Mutex<LossyCore>,
    latch: Mutex<ErrorLatch>,
    /// Shared gate on queued/classifying/chunk-writing interval bytes
    /// (None = only this writer's interval-count cap bounds it).
    budget: Option<Arc<ByteBudget>>,
    // Immutable pipeline parameters.
    dir: PathBuf,
    codec: Arc<dyn Codec>,
    buffer: usize,
    interval_len: usize,
}

impl LossyShared {
    fn queue(&self) -> MutexGuard<'_, LossyQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fail(&self, e: AtcError) {
        self.latch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(e);
        self.queue().failed = true;
        // lock-held: not required — `failed` was set under the queue
        // mutex above, so a thread blocked in `changed.wait` (which
        // re-checks under that same mutex) either receives this notify
        // or has yet to take the lock and sees the flag directly.
        self.changed.notify_all();
    }

    fn surface(&self) -> Result<()> {
        self.latch
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .surface()
    }

    /// Recycles a drained interval buffer for the producer, returning its
    /// bytes to the shared budget. Every buffer arriving here was
    /// admitted by [`LossyPipeline::submit_interval`] with its length
    /// intact, so the release mirrors that acquire exactly.
    fn recycle(&self, mut buf: Vec<u64>, cap: usize) {
        if let Some(budget) = &self.budget {
            budget.release(buf.len() as u64 * 8);
        }
        buf.clear();
        let mut q = self.queue();
        if q.spare.len() < cap {
            q.spare.push(buf);
        }
    }

    /// Returns budgeted bytes for an interval that was *dropped* instead
    /// of recycled (classification error/panic paths, where the buffer
    /// dies inside the failing call).
    fn release_interval_bytes(&self, bytes: u64) {
        if let Some(budget) = &self.budget {
            budget.release(bytes);
        }
    }
}

/// The engine-backed lossy write pipeline (see [`LossyBack::Engine`]).
#[derive(Debug)]
struct LossyPipeline {
    engine: Engine,
    /// Home worker for this writer's tasks (idle workers steal from it).
    home: usize,
    shared: Arc<LossyShared>,
    /// Per-worker [`StreamScratch`] threaded through every chunk file a
    /// worker writes, so only its first chunk pays the segment-buffer
    /// allocations.
    scratch: Arc<WorkerLocal<StreamScratch>>,
    /// Queue bound in intervals (producer blocks past it): each queued
    /// interval holds a whole `L`-address buffer, so the queue is the
    /// dominant memory cost.
    cap: usize,
}

impl LossyPipeline {
    fn new(engine: Engine, shared: Arc<LossyShared>, threads: usize) -> Self {
        let home = engine.assign_home();
        let scratch = Arc::new(WorkerLocal::new(&engine));
        Self {
            engine,
            home,
            shared,
            scratch,
            cap: threads.max(1) * 2,
        }
    }

    /// Hands a finished interval to the pipeline, swapping a recycled
    /// buffer into `interval`. Blocks while the queue is full.
    fn submit_interval(&self, interval: &mut Vec<u64>) -> Result<()> {
        let shared = &self.shared;
        let bytes = interval.len() as u64 * 8;
        // Admit the interval's bytes before taking the queue lock: the
        // budget is released by engine tasks (recycle), which never need
        // this queue's lock to make progress.
        if let Some(budget) = &shared.budget {
            budget.acquire(bytes);
        }
        let mut q = shared.queue();
        // The bound counts queued intervals AND chunk tasks in flight:
        // each holds a whole L-address buffer, so this is the writer's
        // memory cap. The producer is the only blocker — the actor
        // converts queued intervals to pending chunks one-for-one and
        // chunk tasks only ever decrement, so no engine task waits here.
        while q.intervals.len() + q.pending_chunks >= self.cap && !q.failed {
            q = shared.changed.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        if q.failed {
            drop(q);
            shared.release_interval_bytes(bytes);
            return shared.surface();
        }
        let replacement = q
            .spare
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(shared.interval_len.min(1 << 24)));
        q.intervals
            .push_back(std::mem::replace(interval, replacement));
        let schedule = !q.actor_live;
        if schedule {
            q.actor_live = true;
        }
        drop(q);
        if schedule {
            let engine = self.engine.clone();
            let home = self.home;
            let shared = Arc::clone(shared);
            let scratch = Arc::clone(&self.scratch);
            self.engine
                .submit(self.home, move || run_actor(engine, home, shared, scratch));
        }
        Ok(())
    }

    /// Blocks until the queue is drained, the actor retired, and every
    /// chunk task landed; then surfaces any pipeline failure.
    fn quiesce(&self) -> Result<()> {
        let shared = &self.shared;
        let mut q = shared.queue();
        while q.actor_live || !q.intervals.is_empty() || q.pending_chunks > 0 {
            q = shared.changed.wait(q).unwrap_or_else(|e| e.into_inner());
        }
        drop(q);
        shared.surface()
    }
}

/// Actor-task body: drains queued intervals strictly in arrival order —
/// classification is stateful (the chunk table), so it is serialized as
/// one live task rather than fanned out; the heavy per-interval work
/// still runs on the engine, off the producer thread, and the chunk
/// payloads it discovers fan out as independent tasks.
fn run_actor(
    engine: Engine,
    home: usize,
    shared: Arc<LossyShared>,
    scratch: Arc<WorkerLocal<StreamScratch>>,
) {
    loop {
        let (interval, failed) = {
            let mut q = shared.queue();
            match q.intervals.pop_front() {
                Some(iv) => {
                    let failed = q.failed;
                    drop(q);
                    // lock-held: not required — the pop happened under
                    // the queue mutex just above; producers blocked in
                    // `changed.wait` re-check queue depth under that
                    // same mutex, so the freed slot cannot be missed.
                    shared.changed.notify_all();
                    (iv, failed)
                }
                None => {
                    q.actor_live = false;
                    drop(q);
                    // lock-held: not required — `actor_live` was cleared
                    // under the queue mutex above; `quiesce` waits on
                    // that flag under the same mutex.
                    shared.changed.notify_all();
                    return;
                }
            }
        };
        if failed {
            // Drain cheaply once poisoned; finish() replays the error.
            shared.recycle(interval, usize::MAX);
            continue;
        }
        let bytes = interval.len() as u64 * 8;
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            classify_one(&engine, home, &shared, &scratch, interval)
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                // The interval buffer died inside the failing call (no
                // recycle ran): hand its bytes back so a producer blocked
                // on the budget wakes to observe the failure.
                shared.fail(e);
                shared.release_interval_bytes(bytes);
            }
            Err(p) => {
                shared.fail(AtcError::Format(format!(
                    "interval classification panicked: {}",
                    panic_message(&*p)
                )));
                shared.release_interval_bytes(bytes);
            }
        }
    }
}

/// Classifies one interval and writes its record; on `NewChunk`, fans the
/// chunk payload out as an engine task.
fn classify_one(
    engine: &Engine,
    home: usize,
    shared: &Arc<LossyShared>,
    scratch: &Arc<WorkerLocal<StreamScratch>>,
    interval: Vec<u64>,
) -> Result<()> {
    let mut actor = shared.actor.lock().unwrap_or_else(|e| e.into_inner());
    match actor.classify_and_record(interval, shared.interval_len)? {
        Recorded::StoreChunk { id, addrs } => {
            let path = shared.dir.join(format::chunk_file_name(id));
            shared.queue().pending_chunks += 1;
            let shared = Arc::clone(shared);
            let scratch = Arc::clone(scratch);
            engine.submit(home, move || run_chunk(shared, scratch, path, addrs));
        }
        Recorded::Imitated { addrs } => shared.recycle(addrs, 8),
    }
    Ok(())
}

/// Chunk-task body: compresses one chunk file through this worker's
/// reused [`StreamScratch`]. Chunk files are independent of each other
/// and of the interval trace, so they need no ordering — only completion
/// before `finish`.
fn run_chunk(
    shared: Arc<LossyShared>,
    scratch: Arc<WorkerLocal<StreamScratch>>,
    path: PathBuf,
    addrs: Vec<u64>,
) {
    let failed = shared.queue().failed;
    if !failed {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            scratch.with(|s| write_chunk_file_with(&shared.codec, &path, &addrs, shared.buffer, s))
        }));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => shared.fail(e),
            Err(p) => shared.fail(AtcError::Format(format!(
                "chunk compression panicked: {}",
                panic_message(&*p)
            ))),
        }
    }
    shared.recycle(addrs, 8);
    let mut q = shared.queue();
    q.pending_chunks -= 1;
    drop(q);
    // lock-held: not required — the decrement happened under the queue
    // mutex above; `quiesce` re-checks `pending_chunks` under that same
    // mutex, so this wakeup cannot race past an unseen update.
    shared.changed.notify_all();
}

/// Compresses one chunk file (inline path, no scratch carried over).
fn write_chunk_file(
    codec: &Arc<dyn Codec>,
    path: &Path,
    addrs: &[u64],
    buffer: usize,
) -> Result<()> {
    let mut scratch = StreamScratch::default();
    write_chunk_file_with(codec, path, addrs, buffer, &mut scratch)
}

/// Compresses one chunk file, cycling `scratch` through the stream so a
/// worker writing many chunks reuses its segment buffers (shared by the
/// inline path and the engine chunk tasks).
fn write_chunk_file_with(
    codec: &Arc<dyn Codec>,
    path: &Path,
    addrs: &[u64],
    buffer: usize,
    scratch: &mut StreamScratch,
) -> Result<()> {
    let file = BufWriter::new(File::create(path)?);
    let mut out = CodecWriter::with_scratch(
        file,
        Arc::clone(codec),
        atc_codec::DEFAULT_SEGMENT_SIZE,
        std::mem::take(scratch),
    );
    for chunk in addrs.chunks(buffer) {
        format::write_frame(&mut out, chunk)?;
    }
    // On success the stream's buffers come back for the next chunk; on
    // error they are dropped with the failed stream (the pipeline is
    // poisoned at that point anyway).
    let (_, reclaimed) = out.finish_with_scratch()?;
    *scratch = reclaimed;
    Ok(())
}

impl AtcWriter {
    /// Creates a trace directory with default options.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, already contains a trace,
    /// or the options are invalid.
    pub fn create<P: AsRef<Path>>(dir: P, mode: Mode) -> Result<Self> {
        Self::with_options(dir, mode, AtcOptions::default())
    }

    /// Creates a trace directory with explicit options, running any
    /// parallel work on the process-wide engine.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created, already contains a trace,
    /// the codec name is unknown, `buffer` is zero, or the lossy
    /// configuration is invalid.
    pub fn with_options<P: AsRef<Path>>(dir: P, mode: Mode, options: AtcOptions) -> Result<Self> {
        Self::build(dir, mode, options, None, None)
    }

    /// Like [`AtcWriter::with_options`], but submits parallel work to an
    /// explicit `engine` — the injection point for tests and for
    /// containers (the sharded store) that feed many writers into one
    /// worker set so an idle writer's capacity serves a busy one.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcWriter::with_options`].
    pub fn with_options_engine<P: AsRef<Path>>(
        dir: P,
        mode: Mode,
        options: AtcOptions,
        engine: Engine,
    ) -> Result<Self> {
        Self::build(dir, mode, options, Some(engine), None)
    }

    /// Like [`AtcWriter::with_options_engine`], but drawing all pipeline
    /// buffering (lossless raw segments, lossy queued intervals) from a
    /// shared [`ByteBudget`] — how the sharded store caps the *sum* of
    /// its shard writers' buffered bytes instead of letting each
    /// writer's window compound.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcWriter::with_options`].
    pub fn with_options_engine_budget<P: AsRef<Path>>(
        dir: P,
        mode: Mode,
        options: AtcOptions,
        engine: Engine,
        budget: Arc<ByteBudget>,
    ) -> Result<Self> {
        Self::build(dir, mode, options, Some(engine), Some(budget))
    }

    fn build<P: AsRef<Path>>(
        dir: P,
        mode: Mode,
        options: AtcOptions,
        engine: Option<Engine>,
        budget: Option<Arc<ByteBudget>>,
    ) -> Result<Self> {
        if options.buffer == 0 {
            return Err(AtcError::Format("buffer size must be positive".into()));
        }
        let codec: Arc<dyn Codec> = Arc::from(
            codec_by_name(&options.codec)
                .ok_or_else(|| AtcError::Format(format!("unknown codec {:?}", options.codec)))?,
        );
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        if dir.join(format::META_FILE).exists() {
            return Err(AtcError::Format(format!(
                "directory {} already contains an ATC trace",
                dir.display()
            )));
        }

        let threads = options.threads.max(1);
        let engine = if threads > 1 {
            Some(engine.unwrap_or_else(|| Engine::global_with(threads)))
        } else {
            None
        };
        let state = match mode {
            Mode::Lossless => {
                let file = BufWriter::new(File::create(dir.join(format::DATA_FILE))?);
                // threads <= 1 runs inline on this thread — exactly the
                // serial CodecWriter path and byte-identical output.
                let out = match engine {
                    Some(e) => ParallelCodecWriter::with_engine_budget(
                        file,
                        Arc::clone(&codec),
                        atc_codec::DEFAULT_SEGMENT_SIZE,
                        threads,
                        e,
                        budget,
                    ),
                    None => ParallelCodecWriter::new(file, Arc::clone(&codec), threads),
                };
                State::Lossless {
                    out: Box::new(out),
                    buf: Vec::with_capacity(options.buffer.min(1 << 24)),
                }
            }
            Mode::Lossy(cfg) => {
                cfg.validate().map_err(AtcError::Format)?;
                let interval_len = cfg.interval_len;
                let file = BufWriter::new(File::create(dir.join(format::INFO_FILE))?);
                let info = CodecWriter::new(file, Arc::clone(&codec));
                let classifier = PhaseClassifier::new(cfg);
                let back = match engine {
                    Some(e) => {
                        let shared = Arc::new(LossyShared {
                            queue: Mutex::new(LossyQueue::default()),
                            changed: Condvar::new(),
                            actor: Mutex::new(LossyCore {
                                classifier,
                                info: Some(info),
                                next_chunk_id: 0,
                                intervals: 0,
                                imitations: 0,
                            }),
                            latch: Mutex::new(ErrorLatch::default()),
                            budget,
                            dir: dir.clone(),
                            codec: Arc::clone(&codec),
                            buffer: options.buffer,
                            interval_len,
                        });
                        LossyBack::Engine(LossyPipeline::new(e, shared, threads))
                    }
                    None => LossyBack::Inline(Box::new(LossyCore {
                        classifier,
                        info: Some(info),
                        next_chunk_id: 0,
                        intervals: 0,
                        imitations: 0,
                    })),
                };
                State::Lossy {
                    interval: Vec::with_capacity(interval_len.min(1 << 24)),
                    interval_len,
                    back,
                }
            }
        };
        Ok(Self {
            dir,
            codec,
            codec_name: options.codec,
            buffer: options.buffer,
            count: 0,
            state,
        })
    }

    /// Compresses one 64-bit value (the original `atc_code`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors.
    pub fn code(&mut self, value: u64) -> Result<()> {
        self.count += 1;
        let buffer = self.buffer;
        match &mut self.state {
            State::Lossless { out, buf } => {
                buf.push(value);
                if buf.len() == buffer {
                    format::write_frame(out, buf)?;
                    buf.clear();
                }
                Ok(())
            }
            State::Lossy {
                interval,
                interval_len,
                ..
            } => {
                interval.push(value);
                if interval.len() == *interval_len {
                    self.end_interval()
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Compresses every value from an iterator.
    ///
    /// # Errors
    ///
    /// Propagates the first error from [`AtcWriter::code`].
    pub fn code_all<I: IntoIterator<Item = u64>>(&mut self, values: I) -> Result<()> {
        for v in values {
            self.code(v)?;
        }
        Ok(())
    }

    /// Number of addresses accepted so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Finishes the interval currently buffered (lossy mode only).
    fn end_interval(&mut self) -> Result<()> {
        let State::Lossy {
            interval,
            interval_len,
            back,
        } = &mut self.state
        else {
            unreachable!("end_interval is only called in lossy mode");
        };
        if interval.is_empty() {
            return Ok(());
        }
        match back {
            LossyBack::Engine(pipeline) => pipeline.submit_interval(interval),
            LossyBack::Inline(core) => {
                let mut addrs =
                    match core.classify_and_record(std::mem::take(interval), *interval_len)? {
                        Recorded::StoreChunk { id, addrs } => {
                            let path = self.dir.join(format::chunk_file_name(id));
                            write_chunk_file(&self.codec, &path, &addrs, self.buffer)?;
                            addrs
                        }
                        Recorded::Imitated { addrs } => addrs,
                    };
                // The payload buffer cycles back as the next interval's
                // accumulator.
                addrs.clear();
                *interval = addrs;
                Ok(())
            }
        }
    }

    /// Flushes buffered data, writes the `meta` header, and returns the
    /// compression statistics (the original `atc_close`).
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec errors.
    pub fn finish(mut self) -> Result<AtcStats> {
        if matches!(self.state, State::Lossy { .. }) {
            self.end_interval()?;
        }

        let mut seek_segments = None;
        let (intervals, chunks, imitations, interval_len, threshold) = match self.state {
            State::Lossless { mut out, buf } => {
                if !buf.is_empty() {
                    format::write_frame(&mut out, &buf)?;
                }
                // The writer has every segment's offsets on hand as it
                // seals them, so the seek sidecar is free: persist it and
                // record the segment count in `meta`.
                let (_, segments) = out.finish_with_segments()?;
                let table = format::SeekTable::from_records(segments)?;
                seek_segments = Some(table.len() as u64);
                fs::write(self.dir.join(format::SEEK_FILE), table.encode())?;
                (0, 0, 0, 0u64, 0.0)
            }
            State::Lossy {
                interval_len, back, ..
            } => match back {
                LossyBack::Inline(mut inline) => {
                    // atclint: allow(library-unwrap) -- infallible: finish()
                    // consumes self, so this take is the only one.
                    let info = inline.info.take().expect("info lives until finish");
                    info.finish()?;
                    (
                        inline.intervals,
                        inline.next_chunk_id,
                        inline.imitations,
                        interval_len as u64,
                        inline.classifier.config().threshold,
                    )
                }
                LossyBack::Engine(pipeline) => {
                    // All interval records and chunk files must be on
                    // disk before the header is written and the
                    // directory size measured.
                    pipeline.quiesce()?;
                    let mut actor = pipeline
                        .shared
                        .actor
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    // atclint: allow(library-unwrap) -- infallible: finish()
                    // consumes self and quiesce() stopped the actor, so this
                    // is the only take of the actor's info stream.
                    let info = actor.info.take().expect("info lives until finish");
                    info.finish()?;
                    (
                        actor.intervals,
                        actor.next_chunk_id,
                        actor.imitations,
                        interval_len as u64,
                        actor.classifier.config().threshold,
                    )
                }
            },
        };

        let meta = Meta {
            version: FORMAT_VERSION,
            mode: if interval_len == 0 {
                "lossless"
            } else {
                "lossy"
            }
            .into(),
            codec: self.codec_name.clone(),
            buffer: self.buffer as u64,
            interval_len,
            threshold,
            count: self.count,
            chunks,
            seek_segments,
        };
        fs::write(self.dir.join(format::META_FILE), meta.to_text())?;

        let compressed_bytes = dir_size(&self.dir)?;
        Ok(AtcStats {
            count: self.count,
            intervals,
            chunks,
            imitations,
            compressed_bytes,
        })
    }
}

/// Total size in bytes of all files directly inside `dir`.
pub(crate) fn dir_size(dir: &Path) -> Result<u64> {
    let mut total = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_type()?.is_file() {
            total += entry.metadata()?.len();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("atc-writer-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lossless_creates_layout() {
        let dir = tmp("layout");
        let mut w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.code_all((0..1000u64).map(|i| i * 64)).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 1000);
        assert!(dir.join("meta").exists());
        assert!(dir.join("data.atc").exists());
        assert!(stats.compressed_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_creates_chunks_and_info() {
        let dir = tmp("lossy");
        let cfg = LossyConfig {
            interval_len: 100,
            ..LossyConfig::default()
        };
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossy(cfg),
            AtcOptions {
                codec: "store".into(),
                buffer: 64,
                threads: 1,
            },
        )
        .unwrap();
        // 5 identical intervals: 1 chunk + 4 imitations.
        for _ in 0..5 {
            w.code_all((0..100u64).map(|i| i * 64)).unwrap();
        }
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 500);
        assert_eq!(stats.intervals, 5);
        assert_eq!(stats.chunks, 1);
        assert_eq!(stats.imitations, 4);
        assert!(dir.join("chunk-000000.atc").exists());
        assert!(dir.join("info.atc").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lossy_engine_pipeline_matches_inline_bytes() {
        // The classifier actor + chunk tasks must produce a directory
        // byte-identical to the inline path, at several worker counts
        // including workers < requested parallelism.
        let cfg = || LossyConfig {
            interval_len: 300,
            ..LossyConfig::default()
        };
        let mut addrs = Vec::new();
        for lap in 0..12u64 {
            for i in 0..300u64 {
                addrs.push(((lap % 4) << 32) + i * 64);
            }
        }
        addrs.extend((0..50u64).map(|i| i * 8)); // partial tail interval
        let write = |name: &str, threads: usize, engine: Option<Engine>| {
            let dir = tmp(name);
            let options = AtcOptions {
                codec: "bzip".into(),
                buffer: 128,
                threads,
            };
            let mut w = match engine {
                Some(e) => {
                    AtcWriter::with_options_engine(&dir, Mode::Lossy(cfg()), options, e).unwrap()
                }
                None => AtcWriter::with_options(&dir, Mode::Lossy(cfg()), options).unwrap(),
            };
            w.code_all(addrs.iter().copied()).unwrap();
            let stats = w.finish().unwrap();
            (dir, stats)
        };
        let (inline_dir, inline_stats) = write("lossy-eng-inline", 1, None);
        let read_all = |dir: &Path| {
            let mut names: Vec<String> = fs::read_dir(dir)
                .unwrap()
                .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
                .collect();
            names.sort();
            names
                .iter()
                .map(|n| (n.clone(), fs::read(dir.join(n)).unwrap()))
                .collect::<Vec<_>>()
        };
        let expect = read_all(&inline_dir);
        for workers in [1usize, 2, 4] {
            let (dir, stats) = write(
                &format!("lossy-eng-{workers}"),
                4,
                Some(Engine::new(workers)),
            );
            assert_eq!(stats.chunks, inline_stats.chunks, "workers={workers}");
            assert_eq!(stats.imitations, inline_stats.imitations);
            assert_eq!(stats.intervals, inline_stats.intervals);
            assert_eq!(read_all(&dir), expect, "workers={workers}");
            fs::remove_dir_all(&dir).unwrap();
        }
        fs::remove_dir_all(&inline_dir).unwrap();
    }

    #[test]
    fn refuses_double_create() {
        let dir = tmp("double");
        let w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        w.finish().unwrap();
        assert!(AtcWriter::create(&dir, Mode::Lossless).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_bad_options() {
        let dir = tmp("badopt");
        assert!(AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "nope".into(),
                buffer: 10,
                threads: 1,
            }
        )
        .is_err());
        assert!(AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions {
                codec: "store".into(),
                buffer: 0,
                threads: 1,
            }
        )
        .is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_bpa() {
        let s = AtcStats {
            count: 1000,
            intervals: 0,
            chunks: 0,
            imitations: 0,
            compressed_bytes: 250,
        };
        assert!((s.bits_per_address() - 2.0).abs() < 1e-12);
        assert!((s.ratio() - 32.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let dir = tmp("empty");
        let w = AtcWriter::create(&dir, Mode::Lossless).unwrap();
        let stats = w.finish().unwrap();
        assert_eq!(stats.count, 0);
        assert_eq!(stats.bits_per_address(), 0.0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
