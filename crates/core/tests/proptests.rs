//! Property-based tests for atc-core internals: the container format's
//! record and frame layers, histogram/translation algebra, and classifier
//! invariants under arbitrary inputs.

use proptest::collection::vec;
use proptest::prelude::*;

use atc_core::bytesort::{bytes_to_columns, bytesort_forward, columns_to_bytes, BytesortInverse};
use atc_core::format::{read_frame, write_frame, IntervalRecord, Meta};
use atc_core::hist::{ByteHistograms, Translation, COLUMNS};
use atc_core::lossy::{Classification, LossyConfig, PhaseClassifier};
use atc_core::{AtcOptions, AtcReader, AtcWriter, Mode, ReadOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frames_roundtrip_in_sequence(
        a in vec(any::<u64>(), 0..500),
        b in vec(any::<u64>(), 0..500),
        c in vec(any::<u64>(), 0..500),
    ) {
        let mut buf = Vec::new();
        for part in [&a, &b, &c] {
            write_frame(&mut buf, part).unwrap();
        }
        let mut cur = &buf[..];
        prop_assert_eq!(read_frame(&mut cur).unwrap().unwrap(), a);
        prop_assert_eq!(read_frame(&mut cur).unwrap().unwrap(), b);
        prop_assert_eq!(read_frame(&mut cur).unwrap().unwrap(), c);
        prop_assert!(read_frame(&mut cur).unwrap().is_none());
    }

    #[test]
    fn column_stream_roundtrip(addrs in vec(any::<u64>(), 0..800)) {
        let cols = bytesort_forward(&addrs);
        let bytes = columns_to_bytes(&cols);
        prop_assert_eq!(bytes.len(), addrs.len() * 8);
        prop_assert_eq!(bytes_to_columns(&bytes).unwrap(), cols);
    }

    #[test]
    fn streaming_inverse_matches_batch_inverse(
        frames in vec(vec(any::<u64>(), 0..300), 1..4),
    ) {
        // One decoder instance across several frames must agree with the
        // batch inverse on each.
        let mut inv = BytesortInverse::default();
        for addrs in &frames {
            let cols = bytesort_forward(addrs);
            inv.begin(addrs.len());
            for col in &cols {
                inv.push_column(col).unwrap();
            }
            prop_assert_eq!(inv.finish().unwrap(), &addrs[..]);
        }
    }

    #[test]
    fn next_frame_agrees_with_decode(
        addrs in vec(any::<u64>(), 0..3000),
        buffer in 1usize..500,
        threads_idx in 0usize..2,
    ) {
        let threads = [1usize, 4][threads_idx];
        // The frame path and the value path must produce the same stream
        // at any buffer size and thread count, and the frame path must
        // cut frames exactly at bytesort-buffer boundaries.
        let dir = std::env::temp_dir().join(format!(
            "atc-prop-frames-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut w = AtcWriter::with_options(
            &dir,
            Mode::Lossless,
            AtcOptions { codec: "lz".into(), buffer, threads: 1 },
        )
        .unwrap();
        w.code_all(addrs.iter().copied()).unwrap();
        w.finish().unwrap();

        let options = || ReadOptions { threads, ..ReadOptions::default() };
        let mut by_decode = AtcReader::open_with(&dir, options()).unwrap();
        let expect = by_decode.decode_all().unwrap();
        let mut by_frames = AtcReader::open_with(&dir, options()).unwrap();
        let mut got = Vec::new();
        while let Some(frame) = by_frames.next_frame().unwrap() {
            prop_assert!(frame.len() <= buffer);
            got.extend_from_slice(frame);
        }
        prop_assert_eq!(&got, &expect);
        prop_assert_eq!(&got, &addrs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chunk_records_roundtrip(chunk_id in any::<u64>(), len in any::<u64>()) {
        let rec = IntervalRecord::NewChunk { chunk_id, len };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        let mut cur = &buf[..];
        prop_assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
    }

    #[test]
    fn imitate_records_roundtrip(
        chunk_id in any::<u64>(),
        mask in any::<u8>(),
        shift in any::<u8>(),
    ) {
        // Build rotations as translation tables (always permutations).
        let mut translations: Box<[Option<Translation>; COLUMNS]> = Box::default();
        for j in 0..COLUMNS {
            if mask & (1 << j) != 0 {
                let table: [u8; 256] =
                    std::array::from_fn(|i| (i as u8).wrapping_add(shift).wrapping_add(j as u8));
                translations[j] = Some(Translation::from_table(table).unwrap());
            }
        }
        let rec = IntervalRecord::Imitate { chunk_id, translations };
        let mut buf = Vec::new();
        rec.write(&mut buf).unwrap();
        let mut cur = &buf[..];
        prop_assert_eq!(IntervalRecord::read(&mut cur).unwrap().unwrap(), rec);
    }

    #[test]
    fn record_streams_never_panic_on_garbage(bytes in vec(any::<u8>(), 0..400)) {
        let mut cur = &bytes[..];
        // Reading records from arbitrary bytes must return Ok or Err,
        // never panic; loop until error or end.
        for _ in 0..64 {
            match IntervalRecord::read(&mut cur) {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }

    #[test]
    fn meta_text_roundtrip(
        buffer in any::<u64>(),
        interval in any::<u64>(),
        count in any::<u64>(),
        chunks in any::<u64>(),
        thr_millis in 0u32..2000,
        seek in any::<u64>(),
    ) {
        // The vendored proptest has no Option strategy: odd draws map to
        // None, even draws to Some(half), covering both meta shapes.
        let seek_segments = seek.is_multiple_of(2).then_some(seek / 2);
        let m = Meta {
            version: 1,
            mode: "lossy".into(),
            codec: "bzip".into(),
            buffer,
            interval_len: interval,
            threshold: thr_millis as f64 / 1000.0,
            count,
            chunks,
            seek_segments,
        };
        prop_assert_eq!(Meta::parse(&m.to_text()).unwrap(), m);
    }

    #[test]
    fn distance_shift_invariance(addrs in vec(any::<u64>(), 1..400), shift in 0u32..8) {
        // Rotating every address's bytes permutes columns; the *sorted*
        // histograms of each column are preserved under a constant byte
        // rotation, so distance to the rotated trace through matching
        // columns stays bounded by construction. Weaker, always-true
        // invariant tested here: distance of a trace to itself after any
        // per-column relabeling of byte values via translation is 0.
        let s = ByteHistograms::from_addrs(&addrs).sorted();
        let table: [u8; 256] = std::array::from_fn(|i| (i as u8).wrapping_add(shift as u8));
        let t = Translation::from_table(table).unwrap();
        let mut translations: [Option<Translation>; COLUMNS] = Default::default();
        translations[(shift % 8) as usize] = Some(t);
        let relabeled: Vec<u64> = addrs
            .iter()
            .map(|&a| atc_core::hist::translate_addr(a, &translations))
            .collect();
        let s2 = ByteHistograms::from_addrs(&relabeled).sorted();
        prop_assert!(s.distance(&s2) < 1e-12);
    }

    #[test]
    fn classifier_imitates_relabelled_intervals(
        addrs in vec(any::<u64>(), 100..400),
        shift in 1u8..255,
    ) {
        // An interval whose bytes are relabelled by per-column permutations
        // has identical sorted histograms, so it must imitate, and the
        // recorded translations must map the chunk back onto it exactly
        // when the relabeling is consistent per column.
        let mut classifier = PhaseClassifier::new(LossyConfig {
            interval_len: addrs.len(),
            ..LossyConfig::default()
        });
        prop_assert!(matches!(classifier.classify(&addrs, 0), Classification::NewChunk));
        let table: [u8; 256] = std::array::from_fn(|i| (i as u8).wrapping_add(shift));
        let t = Translation::from_table(table).unwrap();
        let mut translations: [Option<Translation>; COLUMNS] = Default::default();
        translations[3] = Some(t);
        let relabeled: Vec<u64> = addrs
            .iter()
            .map(|&a| atc_core::hist::translate_addr(a, &translations))
            .collect();
        match classifier.classify(&relabeled, 1) {
            Classification::Imitate { chunk_id, distance, .. } => {
                prop_assert_eq!(chunk_id, 0);
                prop_assert!(distance < 1e-12);
            }
            other => prop_assert!(false, "expected imitation, got {:?}", other),
        }
    }
}
