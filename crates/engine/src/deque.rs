//! Hand-written Chase–Lev lock-free work-stealing deque.
//!
//! The offline vendor set has no `crossbeam`, so this is a from-scratch
//! implementation of the classic algorithm (Chase & Lev, *Dynamic
//! Circular Work-Stealing Deque*, SPAA 2005), with the acquire/release
//! orderings of the C11 formulation (Lê, Pop, Cohen & Zappa Nardelli,
//! *Correct and Efficient Work-Stealing for Weak Memory Models*, PPoPP
//! 2013). One thread — the **owner** — pushes and pops at the *bottom*
//! of the deque; any number of **thief** threads concurrently remove
//! elements from the *top* with a compare-and-swap.
//!
//! # Ownership and ordering invariants
//!
//! * `push` and `pop` may only be called by the deque's single owner
//!   thread (the engine worker the deque belongs to). `steal` may be
//!   called by any thread. [`ChaseLev`] is `Sync` *only* under that
//!   protocol; the engine enforces it structurally — `push`/`pop` are
//!   reached exclusively from the owning worker's run loop.
//! * `top` only ever increases, so a successful `compare_exchange` on it
//!   can never ABA.
//! * Cells are `AtomicPtr` slots holding boxed tasks. A thief reads the
//!   cell *before* claiming it with the CAS on `top`; that read may race
//!   with the owner recycling the slot, which is exactly why the slots
//!   are atomics (a plain read would be UB) — if the slot was recycled,
//!   the CAS is guaranteed to fail and the stale value is discarded.
//! * The element at index `i` lives in `cells[i % capacity]`; the owner
//!   can only recycle that slot at index `i + capacity`, which requires
//!   `bottom - top >= capacity`, which triggers a grow first. Grown-out
//!   buffers are *retired*, never freed in place, because a slow thief
//!   may still read (then fail its CAS and discard) cells in them; they
//!   are reclaimed when the deque itself drops.
//! * `push` publishes the cell write with a release store of `bottom`;
//!   a thief's acquire load of `bottom` therefore sees the task pointer.
//!   `grow` publishes the copied buffer with a release store of the
//!   buffer pointer. The `SeqCst` fences in `pop`/`steal` order the
//!   owner's `bottom` decrement against the thief's `top` read — the
//!   one place acquire/release alone is too weak (both would otherwise
//!   be allowed to miss the other's write and pop the same last task).
//!
//! The `Miri` CI leg runs the engine test suite (including the stress
//! tests at the bottom of `lib.rs`) under the memory-model checker.

use std::cell::UnsafeCell;
use std::ptr;
use std::sync::atomic::{fence, AtomicIsize, AtomicPtr, Ordering};

use crate::Task;

/// A task parked in a deque cell: a thin pointer to a boxed [`Task`]
/// (the `dyn FnOnce` box itself is a fat pointer, which `AtomicPtr`
/// cannot hold, so it is boxed once more).
pub(crate) type TaskPtr = *mut Task;

/// Boxes a task into the thin-pointer form the deque stores.
pub(crate) fn into_ptr(task: Task) -> TaskPtr {
    Box::into_raw(Box::new(task))
}

/// Recovers a task from [`into_ptr`] form.
///
/// # Safety
///
/// `ptr` must come from [`into_ptr`] and must not be redeemed twice —
/// guaranteed here because a task pointer is handed out exactly once:
/// by the owner's `pop` or by the single thief whose CAS claimed it.
pub(crate) unsafe fn from_ptr(ptr: TaskPtr) -> Task {
    unsafe { *Box::from_raw(ptr) }
}

/// Outcome of a [`ChaseLev::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Steal {
    /// The deque was observed empty.
    Empty,
    /// Another thread claimed the top element first; worth retrying.
    Retry,
    /// An element was stolen.
    Success(TaskPtr),
}

/// The circular buffer backing a deque, sized to a power of two.
struct Buffer {
    mask: usize,
    cells: Box<[AtomicPtr<Task>]>,
}

impl Buffer {
    fn alloc(capacity: usize) -> *mut Buffer {
        debug_assert!(capacity.is_power_of_two());
        let cells: Box<[AtomicPtr<Task>]> = (0..capacity)
            .map(|_| AtomicPtr::new(ptr::null_mut()))
            .collect();
        Box::into_raw(Box::new(Buffer {
            mask: capacity - 1,
            cells,
        }))
    }

    /// # Safety: `ptr` must come from [`Buffer::alloc`], exactly once.
    unsafe fn free(ptr: *mut Buffer) {
        drop(unsafe { Box::from_raw(ptr) });
    }

    fn capacity(&self) -> usize {
        self.mask + 1
    }

    // ordering: cell loads/stores are Relaxed — a cell's contents are
    // published to thieves by the Release store of `bottom` in `push`
    // and *validated* by the CAS on `top` in `steal`; a stale read is
    // discarded when that CAS fails, so the cell itself needs no
    // ordering (it only needs to be atomic, not synchronizing).
    fn get(&self, index: isize) -> TaskPtr {
        self.cells[index as usize & self.mask].load(Ordering::Relaxed)
    }

    fn put(&self, index: isize, task: TaskPtr) {
        // ordering: Relaxed — see `get` above; `push` publishes.
        self.cells[index as usize & self.mask].store(task, Ordering::Relaxed);
    }
}

/// The work-stealing deque. See the module docs for the invariants.
pub(crate) struct ChaseLev {
    /// Next index a thief will claim. Monotonically increasing.
    top: AtomicIsize,
    /// One past the owner's last pushed index.
    bottom: AtomicIsize,
    /// Current circular buffer (owner swaps it on grow).
    buffer: AtomicPtr<Buffer>,
    /// Grown-out buffers, kept alive for slow thieves; owner-only.
    retired: UnsafeCell<Vec<*mut Buffer>>,
}

// SAFETY: all cross-thread state (`top`, `bottom`, `buffer`, the cells)
// is atomic. `retired` is touched only by the owner thread (push/grow)
// and by `drop` (exclusive access); the engine upholds the owner-only
// protocol for `push`/`pop`. Tasks are `Send`, so handing a stolen
// pointer to another thread is sound.
unsafe impl Send for ChaseLev {}
unsafe impl Sync for ChaseLev {}

impl ChaseLev {
    pub(crate) fn new() -> Self {
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(64)),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Owner-only: pushes a task at the bottom.
    pub(crate) fn push(&self, task: TaskPtr) {
        // ordering: `bottom` is Relaxed — only the owner (us) writes
        // it, so we always see our own latest value. `top` is Acquire
        // to observe thief CASes, giving an accurate (or conservative:
        // `top` only grows) fullness estimate for the grow decision.
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        // SAFETY: the buffer pointer is always valid — it is only
        // replaced by the owner (us) and old buffers are retired, not
        // freed.
        // ordering: Relaxed buffer load — only the owner swaps it, so
        // the owner always sees its own latest store.
        let mut buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        if b - t >= buf.capacity() as isize {
            self.grow(t, b);
            buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        }
        buf.put(b, task);
        // ordering: Release — a thief that Acquire-loads this `bottom`
        // store sees the cell write above.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pops a task from the bottom (LIFO).
    pub(crate) fn pop(&self) -> Option<TaskPtr> {
        // ordering: owner-only values (`bottom`, the buffer pointer)
        // are Relaxed — we always see our own latest stores, and the
        // SeqCst fence below orders the decrement for everyone else.
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        // SAFETY: as in `push`.
        let buf = unsafe { &*self.buffer.load(Ordering::Relaxed) };
        self.bottom.store(b, Ordering::Relaxed);
        // ordering: the decrement of `bottom` must be globally visible
        // before we read `top`, and a thief's CAS on `top` must be
        // visible before it reads `bottom` — otherwise both sides could
        // take the last element. Acquire/release cannot express this
        // (it is a store→load ordering), hence the SeqCst fence; the
        // `top` load after it can stay Relaxed.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            if t == b {
                // Last element: race the thieves for it via `top`.
                // ordering: SeqCst on the CAS keeps it in the single
                // total order with the fences, so exactly one of
                // {owner, thief} wins the last element; the failure
                // load is Relaxed (the value is discarded).
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                // ordering: Relaxed — resetting our own `bottom`;
                // thieves never read past `top`, which the CAS already
                // published.
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then(|| buf.get(b))
            } else {
                Some(buf.get(b))
            }
        } else {
            // Already empty; undo the decrement. ordering: Relaxed —
            // owner-only value, nothing to publish (no cell was
            // written).
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: attempts to steal the top (oldest) task.
    pub(crate) fn steal(&self) -> Steal {
        // ordering: Acquire on `top` so a retry observes other thieves'
        // claims; the SeqCst fence pairs with the fence in `pop` (see
        // the comment there) so our `bottom` read cannot pass the
        // owner's decrement; Acquire on `bottom` pairs with the Release
        // store in `push` to make the pushed cell visible.
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t < b {
            // ordering: Acquire pairs with the Release buffer store in
            // `grow`, so the buffer we read contains index `t` if it
            // was ever grown.
            // SAFETY: buffers are retired, never freed, while the deque
            // lives — this read is valid even if the owner grew the
            // buffer after we loaded the pointer.
            let buf = unsafe { &*self.buffer.load(Ordering::Acquire) };
            let task = buf.get(t);
            // Claim index t. Success means no other thief nor the
            // owner's last-element pop took it, so `task` is ours; on
            // failure the (possibly stale) read is discarded.
            // ordering: SeqCst CAS — same total order as `pop`'s
            // last-element CAS; Relaxed failure load (value unused).
            if self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(task)
            } else {
                Steal::Retry
            }
        } else {
            Steal::Empty
        }
    }

    /// Owner-only: doubles the buffer, copying live indices `t..b`.
    fn grow(&self, t: isize, b: isize) {
        // ordering: Relaxed — owner-only load, as in `push`.
        let old_ptr = self.buffer.load(Ordering::Relaxed);
        // SAFETY: as in `push`; `new_ptr` is freshly allocated and
        // unshared until the Release store below publishes it.
        let old = unsafe { &*old_ptr };
        let new_ptr = Buffer::alloc(old.capacity() * 2);
        let new = unsafe { &*new_ptr };
        for i in t..b {
            new.put(i, old.get(i));
        }
        // ordering: Release-publish the filled buffer — a thief's
        // Acquire load in `steal` then sees every cell copied above.
        self.buffer.store(new_ptr, Ordering::Release);
        // Thieves may still hold `old_ptr`: retire it until drop.
        // SAFETY: `retired` is owner-only and we are the owner.
        unsafe { (*self.retired.get()).push(old_ptr) };
    }
}

impl Drop for ChaseLev {
    fn drop(&mut self) {
        // Exclusive access: no owner, no thieves. Engine workers drain
        // their deques before exiting, so this is normally empty — but a
        // panicking drop path must not leak queued closures.
        while let Some(ptr) = self.pop() {
            // SAFETY: popped exactly once, from `into_ptr` form.
            drop(unsafe { from_ptr(ptr) });
        }
        // SAFETY: the current buffer and every retired buffer came from
        // `Buffer::alloc` and are freed exactly once, here.
        // ordering: Relaxed — `&mut self` proves exclusive access, so
        // there is nothing to synchronize with.
        unsafe {
            Buffer::free(self.buffer.load(Ordering::Relaxed));
            for ptr in self.retired.get_mut().drain(..) {
                Buffer::free(ptr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn counting_task(counter: &Arc<AtomicUsize>) -> TaskPtr {
        let counter = Arc::clone(counter);
        into_ptr(Box::new(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        }))
    }

    fn run(ptr: TaskPtr) {
        // SAFETY: every `ptr` in these tests comes from `into_ptr` and
        // reaches `run` exactly once (via a single pop or won steal).
        (unsafe { from_ptr(ptr) })();
    }

    #[test]
    fn owner_push_pop_is_lifo_and_grows() {
        let dq = ChaseLev::new();
        let ran = Arc::new(AtomicUsize::new(0));
        // Push past the initial capacity to force a grow.
        for _ in 0..200 {
            dq.push(counting_task(&ran));
        }
        let mut popped = 0;
        while let Some(p) = dq.pop() {
            run(p);
            popped += 1;
        }
        assert_eq!(popped, 200);
        assert_eq!(ran.load(Ordering::Relaxed), 200);
        assert!(dq.pop().is_none());
    }

    #[test]
    fn steal_takes_oldest_and_empty_reports() {
        let dq = ChaseLev::new();
        assert_eq!(dq.steal(), Steal::Empty);
        let ran = Arc::new(AtomicUsize::new(0));
        dq.push(counting_task(&ran));
        dq.push(counting_task(&ran));
        match dq.steal() {
            Steal::Success(p) => run(p),
            other => panic!("expected steal success, got {other:?}"),
        }
        assert!(dq.pop().is_some_and(|p| {
            run(p);
            true
        }));
        assert_eq!(dq.steal(), Steal::Empty);
        assert_eq!(ran.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn drop_reclaims_queued_tasks() {
        // No task may leak if a deque drops while still holding work.
        let dq = ChaseLev::new();
        for _ in 0..100 {
            dq.push(into_ptr(Box::new(|| {})));
        }
        drop(dq); // Miri verifies nothing leaks.
    }

    #[test]
    fn concurrent_owner_and_thieves_account_for_every_task() {
        // The core stress: one owner pushes and pops while thieves CAS
        // the top; every task must run exactly once (the counter is the
        // proof — a double-run would overshoot, a loss would undershoot).
        let total: usize = if cfg!(miri) { 200 } else { 20_000 };
        let thieves = 3;
        let dq = Arc::new(ChaseLev::new());
        let ran = Arc::new(AtomicUsize::new(0));
        let stolen = Arc::new(AtomicUsize::new(0));
        let done = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..thieves {
            let dq = Arc::clone(&dq);
            let stolen = Arc::clone(&stolen);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match dq.steal() {
                    Steal::Success(p) => {
                        run(p);
                        stolen.fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Retry => {}
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) == 1 {
                            return;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        let mut popped = 0usize;
        for i in 0..total {
            dq.push(counting_task(&ran));
            // Interleave owner pops to exercise the last-element race.
            if i % 3 == 0 {
                if let Some(p) = dq.pop() {
                    run(p);
                    popped += 1;
                }
            }
        }
        while let Some(p) = dq.pop() {
            run(p);
            popped += 1;
        }
        done.store(1, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(ran.load(Ordering::Relaxed), total, "every task ran once");
        assert_eq!(popped + stolen.load(Ordering::Relaxed), total);
    }
}
