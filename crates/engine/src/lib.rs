//! Shared work-stealing execution runtime for the compression pipelines.
//!
//! Before this crate, every parallel layer of the workspace owned its own
//! thread pool: the segment pool of `ParallelCodecWriter`, the readahead
//! decode pool, the multi-block `Bzip` scoped threads, and the lossy
//! chunk pool — plus a *static* per-shard split of the store's thread
//! budget. Idle capacity in one pool could not help a busy neighbour.
//!
//! [`Engine`] replaces all of them with one scheduler over independent
//! tasks: a fixed set of long-lived worker threads, each owning a
//! **lock-free Chase–Lev deque** (see `deque.rs`) plus a small
//! finely-locked *inbox* for tasks submitted from other threads, and a
//! shared finely-locked injector queue. A submitter is assigned a *home*
//! worker ([`Engine::assign_home`]); its tasks land in that worker's
//! inbox, the worker spills them onto its own deque, and any worker that
//! runs dry first drains the injector, then **steals** — lock-free CAS
//! on a sibling deque's top, falling back to a sibling's inbox. A shard
//! (or stream) with nothing to do therefore automatically donates its
//! capacity to a busy one — the [`EngineStats::steals`] counter makes
//! the donation observable. No global lock exists anywhere on the
//! submit/pop/steal path; the counters are relaxed atomics.
//!
//! Idle workers park on a condvar behind a sleeping-workers count:
//! a submit wakes **one** sleeper (and touches the condvar mutex only if
//! someone is actually asleep), so submitting to a saturated engine is
//! wait-free and never stampedes the other sleepers. Dropping the last
//! handle wakes everyone, and the workers drain what is queued, then
//! exit (joined by the final drop, except from inside an engine task).
//!
//! Ordering is deliberately *not* the engine's job: tasks are independent,
//! and each submitter restores its own order (the codec writers reassemble
//! frames by sequence number, the lossy classifier is a single serialized
//! actor task). That per-block independence is what lets the same bytes
//! come out at every worker count.
//!
//! Three task-submission shapes cover every pipeline in the workspace:
//!
//! * [`Engine::submit`] — fire-and-forget `'static` task on a home deque
//!   (segment compression, readahead decode, chunk files).
//! * [`Engine::scope`] — structured fork/join over tasks that may borrow
//!   the caller's stack ([`Scope::spawn`]); the scoping thread helps run
//!   its own tasks, so a scope opened *from inside* an engine task cannot
//!   deadlock.
//! * [`WorkerLocal`] — per-worker scratch storage, so a task category can
//!   reuse buffers across tasks without locking during the work itself.
//!
//! There is one process-wide default engine ([`Engine::global_with`]),
//! grown to the largest worker count any caller has asked for; writers and
//! readers also accept an injected [`Engine`] so tests can pin worker
//! counts and read isolated counters.
//!
//! # Examples
//!
//! ```
//! use atc_engine::Engine;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let engine = Engine::new(2);
//! let sum = Arc::new(AtomicU64::new(0));
//! engine.scope(|s| {
//!     for i in 0..10u64 {
//!         let sum = Arc::clone(&sum);
//!         s.spawn(move || {
//!             sum.fetch_add(i, Ordering::Relaxed);
//!         });
//!     }
//! });
//! assert_eq!(sum.load(Ordering::Relaxed), 45);
//! assert!(engine.stats().tasks_run <= 10); // scoper helps run its own tasks
//! ```

#![warn(missing_docs)]

mod deque;

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use deque::{ChaseLev, Steal};

/// A queued unit of work.
pub(crate) type Task = Box<dyn FnOnce() + Send + 'static>;

/// Hard cap on workers per engine: the worker registry is a fixed slab
/// of this many slots so readers can index it without any lock or
/// reallocation hazard. Far above any sane oversubscription level.
const MAX_WORKERS: usize = 256;

/// Renders a caught panic payload for an error message.
///
/// Submitters that `catch_unwind` inside their tasks (to convert a
/// panicking codec into a latched stream error) share this one
/// downcast-and-borrow helper.
pub fn panic_message(payload: &(dyn Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

thread_local! {
    /// Index of the engine worker running on this thread (None on
    /// producer/consumer threads).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Snapshot of an engine's counters (see [`Engine::stats`]).
///
/// All counters are cumulative since the engine was created and are
/// updated with relaxed atomics — exact totals once the engine is
/// quiescent, approximate while tasks are in flight.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Tasks handed to the engine (home inboxes + injector).
    pub submitted: u64,
    /// Tasks executed by engine workers (excludes scope tasks the
    /// scoping thread ran itself).
    pub tasks_run: u64,
    /// Tasks a worker took from *another* worker's deque or inbox — the
    /// work-donation counter: nonzero means an idle worker picked up a
    /// busy submitter's backlog.
    pub steals: u64,
    /// Tasks that panicked (the panic is caught; the submitter observes
    /// it through its own result channel).
    pub panics: u64,
    /// [`WorkerLocal`] slots initialized fresh.
    pub scratch_fresh: u64,
    /// [`WorkerLocal`] slots reused from an earlier task on the same
    /// worker.
    pub scratch_reused: u64,
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    tasks_run: AtomicU64,
    steals: AtomicU64,
    panics: AtomicU64,
    scratch_fresh: AtomicU64,
    scratch_reused: AtomicU64,
}

/// Per-worker scheduling state.
///
/// The deque is owner-only on its bottom end (`push`/`pop` are reached
/// exclusively from the owning worker's loop); the inbox is where every
/// *other* thread leaves tasks for this worker, under a lock that is
/// held only for a queue operation, never during work. `inbox_len`
/// mirrors the inbox's length (updated inside the lock) so scan loops
/// skip empty inboxes without acquiring anything.
struct WorkerState {
    deque: ChaseLev,
    inbox: Mutex<VecDeque<Task>>,
    inbox_len: AtomicUsize,
}

impl WorkerState {
    fn new() -> Self {
        Self {
            deque: ChaseLev::new(),
            inbox: Mutex::new(VecDeque::new()),
            inbox_len: AtomicUsize::new(0),
        }
    }
}

struct Shared {
    /// Fixed slab of worker slots; `slots[..count]` are initialized.
    /// `OnceLock` gives lock-free reads after publication.
    slots: Box<[OnceLock<WorkerState>]>,
    /// Number of published workers (store-release after the slot is set).
    count: AtomicUsize,
    /// Overflow/anonymous queue drained by whichever worker is free.
    injector: Mutex<VecDeque<Task>>,
    /// Length mirror of `injector` (updated inside its lock): lets the
    /// scan skip an empty injector without the lock. A stale-empty read
    /// is safe — `pending` guarantees a re-scan before anyone parks.
    injector_len: AtomicUsize,
    /// Tasks enqueued anywhere but not yet claimed by a worker. The
    /// sleep protocol's Dekker flag: a parking worker re-checks it after
    /// registering as a sleeper, a submitter increments it before
    /// checking `sleepers` (both `SeqCst`), so one side always sees the
    /// other and no wakeup is lost.
    pending: AtomicUsize,
    /// Workers currently parked (or committing to park) on `wake`.
    /// Modified only under `sleep`; read lock-free by submitters.
    sleepers: AtomicUsize,
    /// Mutex the condvar parks on; protects no data of its own.
    sleep: Mutex<()>,
    wake: Condvar,
    counters: Counters,
    /// Set when the last owning handle drops: workers drain what is
    /// queued, then exit.
    shutdown: AtomicBool,
    next_home: AtomicUsize,
    /// Serializes growth; also stores the worker join handles for the
    /// final drop.
    lifecycle: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// The published worker at `index` (< `count`).
    fn slot(&self, index: usize) -> &WorkerState {
        // atclint: allow(library-unwrap) -- infallible: callers index
        // below `count`, and `grow_to` sets each slot before the
        // Release store of `count` that makes the index reachable.
        self.slots[index].get().expect("worker slot published")
    }

    /// Makes a freshly pushed task findable: bumps the pending count and
    /// wakes exactly one parked worker if there is one. Lock-free unless
    /// a worker is actually asleep.
    fn signal_work(&self) {
        // ordering: SeqCst pending increment + SeqCst sleepers load is
        // one half of the Dekker handshake with `worker`'s park path
        // (SeqCst sleepers increment + SeqCst pending re-check): in the
        // single total order, either we see their sleeper registration
        // (and notify) or they see our pending increment (and re-scan).
        self.pending.fetch_add(1, Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            // lock-held: `sleep` — taking the mutex orders this notify
            // against a worker mid-way into parking: it is either still
            // before its pending re-check (and will see our increment)
            // or already waiting (and receives the notify).
            let _guard = self.sleep.lock().unwrap_or_else(|e| e.into_inner());
            self.wake.notify_one();
        }
    }
}

/// Guard owned by [`Engine`] handles only (never by worker threads or
/// queued tasks' captured handles... those clone the whole `Engine`, which
/// keeps the guard alive until the task ran). Dropping the last one tells
/// the workers to drain and exit, then joins them.
struct ShutdownGuard {
    shared: Arc<Shared>,
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        // ordering: SeqCst — the shutdown flag joins the pending/
        // sleepers total order, so a worker's final `pending == 0 &&
        // shutdown` check cannot see a stale false for both.
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Shutdown is the one broadcast: every sleeper must wake to
        // observe the flag. lock-held: `sleep` — notifying under the
        // mutex means a worker between its shutdown check and `wait`
        // cannot miss it.
        {
            let _guard = self.shared.sleep.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.wake.notify_all();
        }
        // Join the workers so engine teardown is deterministic (and so
        // tools like Miri see no threads outlive the test). If the last
        // handle drops *inside* an engine task, that worker cannot join
        // itself — it is skipped and exits on its own right after.
        let handles = std::mem::take(
            &mut *self
                .shared
                .lifecycle
                .lock()
                .unwrap_or_else(|e| e.into_inner()),
        );
        let me = std::thread::current().id();
        for handle in handles {
            if handle.thread().id() != me {
                let _ = handle.join();
            }
        }
    }
}

/// A handle to a work-stealing task engine.
///
/// Cheap to clone; the worker threads live until every handle is dropped
/// (they finish whatever is queued first). The process-wide default
/// engine from [`Engine::global_with`] is never shut down.
#[derive(Clone)]
pub struct Engine {
    shared: Arc<Shared>,
    _guard: Arc<ShutdownGuard>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.workers())
            .finish()
    }
}

impl Engine {
    /// Spawns an engine with `workers` worker threads (`0` is clamped
    /// to 1, and counts above 256 to 256).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            slots: (0..MAX_WORKERS).map(|_| OnceLock::new()).collect(),
            count: AtomicUsize::new(0),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            sleepers: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            next_home: AtomicUsize::new(0),
            lifecycle: Mutex::new(Vec::new()),
        });
        let engine = Self {
            _guard: Arc::new(ShutdownGuard {
                shared: Arc::clone(&shared),
            }),
            shared,
        };
        engine.grow_to(workers.max(1));
        engine
    }

    /// The process-wide default engine, grown to at least `min_workers`.
    ///
    /// Every writer/reader that is not handed an explicit engine submits
    /// here, so one process shares one set of compression workers no
    /// matter how many streams are open. The worker count only ever
    /// grows (to the largest count any caller requested) and the engine
    /// lives for the rest of the process.
    pub fn global_with(min_workers: usize) -> Engine {
        static GLOBAL: OnceLock<Engine> = OnceLock::new();
        let engine = GLOBAL.get_or_init(|| Engine::new(min_workers.max(1)));
        engine.grow_to(min_workers);
        engine.clone()
    }

    /// Adds workers until the engine has at least `target` of them.
    fn grow_to(&self, target: usize) {
        let target = target.min(MAX_WORKERS);
        // ordering: Acquire pairs with the Release `count` store below,
        // so a reader that sees index i published also sees slot i set.
        if self.shared.count.load(Ordering::Acquire) >= target {
            return;
        }
        let mut handles = self
            .shared
            .lifecycle
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        // ordering: Acquire — re-read under the lifecycle lock (another
        // handle may have grown the engine while we waited for it).
        let mut count = self.shared.count.load(Ordering::Acquire);
        while count < target {
            self.shared.slots[count]
                .set(WorkerState::new())
                .unwrap_or_else(|_| unreachable!("slot {count} published twice"));
            // ordering: Release — publish the slot set above before any
            // reader can compute this index from `count`.
            self.shared.count.store(count + 1, Ordering::Release);
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("atc-engine-{count}"))
                .spawn(move || worker(shared, count))
                // atclint: allow(library-unwrap) -- OS thread-spawn
                // failure at engine construction has no fallback; the
                // engine contract is workers exist or the process dies.
                .expect("spawn engine worker");
            handles.push(handle);
            count += 1;
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        // ordering: Acquire — see `grow_to`'s publication protocol.
        self.shared.count.load(Ordering::Acquire)
    }

    /// Assigns a home worker index for a new submitter (round-robin).
    ///
    /// Tasks submitted to a home land on that worker's queues; idle
    /// workers steal from it, so the home is an affinity hint, never a
    /// constraint.
    pub fn assign_home(&self) -> usize {
        // ordering: Relaxed — a round-robin ticket; only atomicity
        // matters, no other memory rides on it.
        self.shared.next_home.fetch_add(1, Ordering::Relaxed)
    }

    /// Queues `task` for `home`'s worker (modulo the worker count).
    /// Never blocks; submitters bound their own in-flight work.
    pub fn submit(&self, home: usize, task: impl FnOnce() + Send + 'static) {
        // ordering: Acquire — see `grow_to`'s publication protocol.
        let slot = self
            .shared
            .slot(home % self.shared.count.load(Ordering::Acquire));
        {
            let mut inbox = slot.inbox.lock().unwrap_or_else(|e| e.into_inner());
            inbox.push_back(Box::new(task));
            // ordering: Release length mirror, stored inside the lock;
            // lets `find_task` skip an empty inbox without locking. A
            // stale-empty read is safe — `pending` (SeqCst) forces a
            // re-scan before any worker parks.
            slot.inbox_len.store(inbox.len(), Ordering::Release);
        }
        // ordering: Relaxed — monotonic stats counter.
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.signal_work();
    }

    /// Queues `task` on the shared injector (no home affinity).
    pub fn submit_any(&self, task: impl FnOnce() + Send + 'static) {
        {
            let mut injector = self
                .shared
                .injector
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            injector.push_back(Box::new(task));
            // ordering: Release length mirror inside the lock — same
            // protocol as `submit`'s inbox_len.
            self.shared
                .injector_len
                .store(injector.len(), Ordering::Release);
        }
        // ordering: Relaxed — monotonic stats counter.
        self.shared
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.signal_work();
    }

    /// Runs `f` with a [`Scope`] that can spawn tasks borrowing from the
    /// caller's stack, and returns once every spawned task finished.
    ///
    /// Spawned tasks are offered to the engine workers, and the scoping
    /// thread *also* runs them itself while it waits — so a scope is never
    /// slower than doing the work inline, and a scope opened from inside
    /// an engine task cannot deadlock even with a single worker.
    ///
    /// # Panics
    ///
    /// If a spawned task panics, the panic is resumed on the scoping
    /// thread after all other tasks in the scope finished (mirroring
    /// `std::thread::scope`).
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        let inner = Arc::new(ScopeInner::default());
        let scope = Scope {
            engine: self.clone(),
            inner: Arc::clone(&inner),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help: run this scope's not-yet-started tasks on this thread.
        while let Some(task) = inner.pop_task() {
            inner.run_one(task);
        }
        let panic = inner.wait_done();
        match (result, panic) {
            (Ok(r), None) => r,
            (_, Some(p)) => std::panic::resume_unwind(p),
            (Err(p), None) => std::panic::resume_unwind(p),
        }
    }

    /// Snapshot of the engine's counters.
    pub fn stats(&self) -> EngineStats {
        let c = &self.shared.counters;
        // ordering: Relaxed — observability counters; a snapshot has no
        // cross-counter consistency promise.
        EngineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            tasks_run: c.tasks_run.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            panics: c.panics.load(Ordering::Relaxed),
            scratch_fresh: c.scratch_fresh.load(Ordering::Relaxed), // ordering: ditto
            scratch_reused: c.scratch_reused.load(Ordering::Relaxed),
        }
    }

    /// Index of the engine worker running the current thread, if any.
    pub fn current_worker() -> Option<usize> {
        WORKER_INDEX.with(Cell::get)
    }
}

/// Finds a task for worker `index`: own deque, own inbox (spilling the
/// backlog onto the deque so thieves can help), the injector, then a
/// round-robin steal sweep over the siblings' deques and inboxes.
/// Returns the task and whether it was stolen.
fn find_task(shared: &Shared, me: &WorkerState, index: usize) -> Option<(Task, bool)> {
    if let Some(ptr) = me.deque.pop() {
        // SAFETY: `pop` hands out a pushed pointer exactly once.
        return Some((unsafe { deque::from_ptr(ptr) }, false));
    }
    // ordering: Acquire/Release on the queue-length mirrors throughout
    // this scan — stores happen inside the owning lock, loads gate the
    // lock acquisition. A stale-empty read only skips a queue; the
    // SeqCst `pending` handshake forces a full re-scan before any
    // worker parks, so no task is stranded.
    if me.inbox_len.load(Ordering::Acquire) > 0 {
        let mut inbox = me.inbox.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(first) = inbox.pop_front() {
            // Spill the rest of the backlog onto our own (owner-side)
            // deque: thieves can then relieve us without touching the
            // inbox lock again.
            for task in inbox.drain(..) {
                me.deque.push(deque::into_ptr(task));
            }
            // ordering: Release mirror store under the inbox lock.
            me.inbox_len.store(0, Ordering::Release);
            return Some((first, false));
        }
    }
    // ordering: Acquire gate, Release mirror — as above.
    if shared.injector_len.load(Ordering::Acquire) > 0 {
        let mut injector = shared.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(task) = injector.pop_front() {
            shared.injector_len.store(injector.len(), Ordering::Release);
            return Some((task, false));
        }
    }
    // ordering: Acquire pairs with `grow_to`'s Release count store.
    let n = shared.count.load(Ordering::Acquire);
    for d in 1..n {
        let j = (index + d) % n;
        let sibling = shared.slot(j);
        loop {
            match sibling.deque.steal() {
                // SAFETY: a successful CAS hands out the pointer once.
                Steal::Success(ptr) => return Some((unsafe { deque::from_ptr(ptr) }, true)),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        // ordering: Acquire gate, Release mirror — as above.
        if sibling.inbox_len.load(Ordering::Acquire) > 0 {
            let mut inbox = sibling.inbox.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(task) = inbox.pop_front() {
                sibling.inbox_len.store(inbox.len(), Ordering::Release);
                return Some((task, true));
            }
        }
    }
    None
}

/// Worker-thread body: run tasks while any are findable, park otherwise.
fn worker(shared: Arc<Shared>, index: usize) {
    WORKER_INDEX.with(|w| w.set(Some(index)));
    let me = shared.slot(index);
    loop {
        if let Some((task, stolen)) = find_task(&shared, me, index) {
            // ordering: SeqCst — `pending` lives in the Dekker total
            // order with `signal_work`; see the field docs.
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            if stolen {
                // ordering: Relaxed — stats counters, both below too.
                shared.counters.steals.fetch_add(1, Ordering::Relaxed);
            }
            shared.counters.tasks_run.fetch_add(1, Ordering::Relaxed);
            if catch_unwind(AssertUnwindSafe(task)).is_err() {
                // Submitters observe the failure through their own result
                // channels (a missing result / poisoned latch); the worker
                // itself must survive to run unrelated submitters' tasks.
                // ordering: Relaxed — stats counter.
                shared.counters.panics.fetch_add(1, Ordering::Relaxed);
            }
            continue;
        }
        // Nothing findable. If tasks were enqueued while the scan was
        // running (pending > 0), retry the scan instead of touching the
        // sleep mutex — the transient miss is common under a fast
        // producer and must not cost a lock acquisition.
        // ordering: SeqCst — every `pending`/`sleepers`/`shutdown`
        // access in this park path stays in the one total order with
        // `signal_work`'s increment+check, so either the submitter sees
        // our sleeper registration or we see its pending increment.
        if shared.pending.load(Ordering::SeqCst) > 0 {
            continue;
        }
        // Park. Register as a sleeper *before* the final pending
        // re-check (the Dekker handshake with `signal_work`), all under
        // the sleep mutex so a notify cannot slip between the re-check
        // and the wait.
        let guard = shared.sleep.lock().unwrap_or_else(|e| e.into_inner());
        // ordering: SeqCst — see the park-path comment above.
        if shared.pending.load(Ordering::SeqCst) == 0 && shared.shutdown.load(Ordering::SeqCst) {
            // Quiescent and shutting down: exit. (With pending > 0 we
            // loop again instead — queued work is drained even during
            // shutdown.)
            return;
        }
        // ordering: SeqCst — see the park-path comment above.
        shared.sleepers.fetch_add(1, Ordering::SeqCst);
        if shared.pending.load(Ordering::SeqCst) == 0 && !shared.shutdown.load(Ordering::SeqCst) {
            let _guard = shared.wake.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
        // ordering: SeqCst — see the park-path comment above.
        shared.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

#[derive(Default)]
struct ScopeSync {
    spawned: usize,
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

#[derive(Default)]
struct ScopeInner {
    /// Spawned-but-not-started closures (lifetime-erased; see the safety
    /// argument in [`Scope::spawn`]).
    tasks: Mutex<VecDeque<Task>>,
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

impl ScopeInner {
    fn pop_task(&self) -> Option<Task> {
        self.tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    fn run_one(&self, task: Task) {
        let result = catch_unwind(AssertUnwindSafe(task));
        let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(p) = result {
            sync.panic.get_or_insert(p);
        }
        sync.completed += 1;
        // lock-held: `sync` — the guard is live until the end of this
        // function, so `wait_done` cannot check `completed` and park
        // between our increment and this notify.
        self.done.notify_all();
    }

    /// Blocks until every spawned task completed; returns the first
    /// panic payload, if any.
    fn wait_done(&self) -> Option<Box<dyn Any + Send>> {
        let mut sync = self.sync.lock().unwrap_or_else(|e| e.into_inner());
        while sync.completed < sync.spawned {
            sync = self.done.wait(sync).unwrap_or_else(|e| e.into_inner());
        }
        sync.panic.take()
    }
}

/// Spawn surface of [`Engine::scope`]: fork tasks that may borrow from
/// the enclosing stack frame.
pub struct Scope<'env> {
    engine: Engine,
    inner: Arc<ScopeInner>,
    /// Invariant over `'env`, like `std::thread::Scope`.
    _env: PhantomData<&'env mut &'env ()>,
}

impl std::fmt::Debug for Scope<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scope").finish_non_exhaustive()
    }
}

impl<'env> Scope<'env> {
    /// Spawns a task that may borrow `'env` data.
    ///
    /// The task runs on an engine worker or on the scoping thread itself
    /// (whichever gets to it first); [`Engine::scope`] does not return
    /// until it finished either way.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        let boxed: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: the closure may borrow 'env data, but `Engine::scope`
        // does not return before `wait_done` saw every spawned closure
        // complete, so no borrow outlives its stack frame. Workers that
        // pick up the ticket below after the scope already drained the
        // queue find it empty and touch nothing.
        let boxed: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Task>(boxed) };
        {
            let mut sync = self.inner.sync.lock().unwrap_or_else(|e| e.into_inner());
            sync.spawned += 1;
        }
        self.inner
            .tasks
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(boxed);
        let inner = Arc::clone(&self.inner);
        self.engine.submit_any(move || {
            if let Some(task) = inner.pop_task() {
                inner.run_one(task);
            }
        });
    }
}

/// Per-worker scratch storage: one `T` slot per engine worker, taken for
/// the duration of a task and put back afterwards.
///
/// This is how task categories thread reusable buffers through the shared
/// engine without a lock held during the work itself: [`WorkerLocal::with`]
/// removes the current worker's slot under a short lock, runs the
/// closure lock-free, and restores the slot. Calls from non-worker
/// threads (the inline `threads <= 1` paths) get a fresh `T` each time.
/// Fresh-vs-reused counts feed [`EngineStats::scratch_fresh`] /
/// [`EngineStats::scratch_reused`].
#[derive(Debug)]
pub struct WorkerLocal<T> {
    slots: Mutex<Vec<Option<T>>>,
    engine: Engine,
}

impl<T: Default + Send> WorkerLocal<T> {
    /// Creates empty per-worker storage bound to `engine`'s counters.
    pub fn new(engine: &Engine) -> Self {
        Self {
            slots: Mutex::new(Vec::new()),
            engine: engine.clone(),
        }
    }

    /// Runs `f` with this worker's slot (default-initialized on first
    /// use), restoring the slot afterwards.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let index = Engine::current_worker();
        let counters = &self.engine.shared.counters;
        let mut value = match index {
            Some(i) => {
                let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
                if slots.len() <= i {
                    slots.resize_with(i + 1, || None);
                }
                slots[i].take()
            }
            None => None,
        };
        // ordering: Relaxed — stats counters.
        match &value {
            Some(_) => counters.scratch_reused.fetch_add(1, Ordering::Relaxed),
            None => counters.scratch_fresh.fetch_add(1, Ordering::Relaxed),
        };
        let mut v = value.take().unwrap_or_default();
        let result = f(&mut v);
        if let Some(i) = index {
            let mut slots = self.slots.lock().unwrap_or_else(|e| e.into_inner());
            slots[i] = Some(v);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn runs_all_submitted_tasks() {
        let engine = Engine::new(3);
        assert_eq!(engine.workers(), 3);
        let (tx, rx) = mpsc::channel::<usize>();
        let home = engine.assign_home();
        for n in 0..100usize {
            let tx = tx.clone();
            engine.submit(home, move || tx.send(n).unwrap());
        }
        drop(tx);
        let sum: usize = rx.iter().sum();
        assert_eq!(sum, (0..100).sum::<usize>());
        let stats = engine.stats();
        assert_eq!(stats.submitted, 100);
        assert_eq!(stats.tasks_run, 100);
    }

    #[test]
    fn idle_workers_steal_from_a_busy_home() {
        // All tasks target home 0; with 4 workers and tasks that take a
        // little while, the other three must steal to finish the batch.
        let engine = Engine::new(4);
        let (tx, rx) = mpsc::channel::<()>();
        for _ in 0..64 {
            let tx = tx.clone();
            engine.submit(0, move || {
                std::thread::sleep(Duration::from_millis(1));
                tx.send(()).unwrap();
            });
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 64);
        assert!(
            engine.stats().steals > 0,
            "idle workers must steal a skewed backlog"
        );
    }

    #[test]
    fn scope_joins_borrowed_tasks() {
        let engine = Engine::new(2);
        let mut outputs = [0u64; 16];
        let input = 7u64;
        engine.scope(|s| {
            for (i, slot) in outputs.iter_mut().enumerate() {
                s.spawn(move || *slot = input * i as u64);
            }
        });
        for (i, &v) in outputs.iter().enumerate() {
            assert_eq!(v, 7 * i as u64);
        }
    }

    #[test]
    fn nested_scope_on_one_worker_does_not_deadlock() {
        // A task running on the single worker opens a scope of its own;
        // the scoping (worker) thread must help itself to the sub-tasks.
        let engine = Engine::new(1);
        let (tx, rx) = mpsc::channel::<u64>();
        let inner_engine = engine.clone();
        engine.submit(0, move || {
            let mut total = 0u64;
            inner_engine.scope(|s| {
                let total = &mut total;
                s.spawn(move || *total = 42);
            });
            tx.send(total).unwrap();
        });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(30)).unwrap(),
            42,
            "nested scope must complete"
        );
    }

    #[test]
    fn scope_propagates_panics_after_joining() {
        let engine = Engine::new(2);
        let finished = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&finished);
        let result = catch_unwind(AssertUnwindSafe(|| {
            engine.scope(|s| {
                let f = Arc::clone(&f);
                s.spawn(move || {
                    f.fetch_add(1, Ordering::SeqCst);
                });
                s.spawn(|| panic!("boom"));
            });
        }));
        assert!(result.is_err(), "panic must propagate out of the scope");
        assert_eq!(finished.load(Ordering::SeqCst), 1, "siblings still ran");
    }

    #[test]
    fn task_panic_does_not_kill_the_worker() {
        let engine = Engine::new(1);
        let (tx, rx) = mpsc::channel::<&'static str>();
        engine.submit(0, || panic!("task panic"));
        let tx2 = tx.clone();
        engine.submit(0, move || tx2.send("alive").unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(30)).unwrap(), "alive");
        assert_eq!(engine.stats().panics, 1);
    }

    #[test]
    fn worker_local_reuses_per_worker_state() {
        let engine = Engine::new(2);
        let local: Arc<WorkerLocal<Vec<u8>>> = Arc::new(WorkerLocal::new(&engine));
        let (tx, rx) = mpsc::channel::<usize>();
        for _ in 0..40 {
            let local = Arc::clone(&local);
            let tx = tx.clone();
            engine.submit(0, move || {
                local.with(|buf| {
                    buf.push(1);
                    tx.send(buf.len()).unwrap();
                });
            });
        }
        drop(tx);
        let lens: Vec<usize> = rx.iter().collect();
        assert_eq!(lens.len(), 40);
        assert!(
            *lens.iter().max().unwrap() > 1,
            "state must persist across tasks on a worker"
        );
        let stats = engine.stats();
        assert!(
            stats.scratch_fresh <= 2,
            "at most one fresh slot per worker"
        );
        assert_eq!(stats.scratch_fresh + stats.scratch_reused, 40);
    }

    #[test]
    #[cfg(not(miri))] // the global engine's workers outlive the test
    fn global_engine_grows_to_the_largest_request() {
        let a = Engine::global_with(1);
        let before = a.workers();
        let b = Engine::global_with(before + 1);
        assert!(b.workers() > before);
        // Handles alias the same engine.
        let c = Engine::global_with(1);
        assert_eq!(b.workers(), c.workers());
    }

    #[test]
    fn drop_finishes_queued_tasks() {
        let (tx, rx) = mpsc::channel::<usize>();
        {
            let engine = Engine::new(2);
            let home = engine.assign_home();
            for n in 0..50usize {
                let tx = tx.clone();
                engine.submit(home, move || tx.send(n).unwrap());
            }
            // engine handle drops here with tasks possibly still queued
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 50, "queued tasks still run after drop");
    }

    #[test]
    fn submit_any_round_robins_through_the_injector() {
        let engine = Engine::new(2);
        let (tx, rx) = mpsc::channel::<()>();
        for _ in 0..10 {
            let tx = tx.clone();
            engine.submit_any(move || tx.send(()).unwrap());
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 10);
    }

    #[test]
    fn worker_count_is_clamped_to_the_slab() {
        let engine = Engine::new(100_000);
        assert_eq!(engine.workers(), 256);
    }

    /// Many producers × oversubscribed homes: every task must run
    /// exactly once no matter how submissions interleave with steals.
    #[test]
    fn stress_many_producers_oversubscribed_homes() {
        let producers = 8usize;
        let per_producer = if cfg!(miri) { 25 } else { 2_000 };
        let engine = Engine::new(4);
        let ran = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for p in 0..producers {
                let engine = engine.clone();
                let ran = Arc::clone(&ran);
                s.spawn(move || {
                    // 23 distinct homes on 4 workers: heavy aliasing.
                    for i in 0..per_producer {
                        let ran = Arc::clone(&ran);
                        engine.submit(p * 31 + i, move || {
                            ran.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        drop(engine); // joins workers after the queues drain
        assert_eq!(ran.load(Ordering::Relaxed), producers * per_producer);
    }

    /// Regression test: dropping the engine while thieves are mid-steal
    /// (a skewed backlog being actively redistributed) must neither hang
    /// nor lose tasks — shutdown drains everything, then joins.
    #[test]
    fn shutdown_while_stealing_drains_everything() {
        let total = if cfg!(miri) { 50 } else { 1_000 };
        for _ in 0..if cfg!(miri) { 2 } else { 20 } {
            let engine = Engine::new(4);
            let ran = Arc::new(AtomicUsize::new(0));
            for _ in 0..total {
                let ran = Arc::clone(&ran);
                // Everything on one home: the other three workers are
                // stealing the backlog when the drop lands.
                engine.submit(0, move || {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
            drop(engine);
            assert_eq!(ran.load(Ordering::Relaxed), total);
        }
    }

    /// A submit with every worker busy must not wake anyone (there is no
    /// one to wake): the sleeping-workers count gates the notify, so a
    /// saturated engine takes the wait-free path. Indirectly observable:
    /// the engine still finishes everything, and quickly.
    #[test]
    fn submit_on_saturated_engine_completes() {
        let engine = Engine::new(2);
        let (tx, rx) = mpsc::channel::<()>();
        let gate = Arc::new(AtomicUsize::new(0));
        // Occupy both workers.
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            let tx = tx.clone();
            engine.submit_any(move || {
                while gate.load(Ordering::Acquire) == 0 {
                    std::thread::yield_now();
                }
                tx.send(()).unwrap();
            });
        }
        // Saturated submits: sleepers == 0, pure queue pushes.
        for _ in 0..100 {
            let tx = tx.clone();
            engine.submit(0, move || tx.send(()).unwrap());
        }
        gate.store(1, Ordering::Release);
        drop(tx);
        assert_eq!(rx.iter().count(), 102);
    }
}
