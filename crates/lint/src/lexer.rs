//! A hand-rolled Rust lexer sufficient for invariant linting.
//!
//! The container has no registry access (so no `syn`); this lexer
//! tokenizes Rust source precisely enough that the rules in
//! [`crate::rules`] never look inside string literals or comments by
//! accident. It handles the classically fiddly corners:
//!
//! * line comments and **nested** block comments (doc variants included),
//! * string literals with escapes, raw strings `r"…"` / `r#"…"#` (any
//!   number of `#`s), byte strings `b"…"` / `br#"…"#`, and C strings,
//! * char literals vs. lifetimes (`'a'` is a char, `'a` is a lifetime,
//!   `'\u{1F600}'` is a char),
//! * raw identifiers (`r#match`),
//! * numeric literals including hex/octal/binary and type suffixes.
//!
//! On top of the token stream it derives the two pieces of file
//! structure the rules need: per-line comment text (for adjacency
//! checks like `// SAFETY:`) and `#[cfg(test)]` / `#[test]` brace
//! regions (so "library code" rules skip inline test modules).

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` including `///` and `//!` doc comments.
    LineComment,
    /// `/* … */` including doc variants; nesting is handled.
    BlockComment,
    /// `"…"`, `b"…"`, `c"…"` (escapes understood).
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` with any number of `#`s.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, `b'x'`.
    CharLit,
    /// `'a`, `'static` — no closing quote.
    Lifetime,
    /// Identifiers and keywords, including raw identifiers.
    Ident,
    /// Numeric literals (integer or float, any base, with suffixes).
    Number,
    /// Any other single character (`{`, `}`, `#`, `.`, `::` is two).
    Punct,
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
    /// 1-based column (in bytes) of `start`.
    pub col: u32,
}

impl Token {
    /// The token's source text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for comment tokens of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// closed at end of input rather than reported — the rules only need a
/// best-effort stream, and `rustc` itself rejects such files long
/// before CI runs `atclint`.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    line_start: usize,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            line_start: 0,
            tokens: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Advances one byte, tracking line numbers.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.line_start = self.pos + 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            start,
            end: self.pos,
            line,
            col,
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let col = (self.pos - self.line_start + 1) as u32;
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.block_comment();
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string();
                    self.emit(TokenKind::Str, start, line, col);
                }
                b'\'' => {
                    let kind = self.char_or_lifetime();
                    self.emit(kind, start, line, col);
                }
                b'0'..=b'9' => {
                    self.number();
                    self.emit(TokenKind::Number, start, line, col);
                }
                _ if is_ident_start(c) => {
                    let kind = self.ident_or_prefixed_literal();
                    self.emit(kind, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.tokens
    }

    /// Consumes `/* … */` honoring nesting, starting at the `/*`.
    fn block_comment(&mut self) {
        self.bump_n(2);
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump_n(2);
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump_n(2);
            } else {
                self.bump();
            }
        }
    }

    /// Consumes `"…"` with escapes, starting at the opening quote.
    fn string(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes `r"…"` / `r##"…"##` starting at the first `#` or `"`
    /// (the `r`/`br` prefix is already consumed).
    fn raw_string(&mut self) {
        let mut hashes = 0usize;
        while self.peek(0) == b'#' {
            hashes += 1;
            self.bump();
        }
        debug_assert_eq!(self.peek(0), b'"');
        self.bump();
        while self.pos < self.bytes.len() {
            if self.peek(0) == b'"' {
                let mut matched = 0usize;
                while matched < hashes && self.peek(1 + matched) == b'#' {
                    matched += 1;
                }
                if matched == hashes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime) from `'\n'`.
    fn char_or_lifetime(&mut self) -> TokenKind {
        self.bump(); // the opening quote
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume to the closing quote.
            while self.pos < self.bytes.len() {
                match self.peek(0) {
                    b'\\' => self.bump_n(2),
                    b'\'' => {
                        self.bump();
                        break;
                    }
                    _ => self.bump(),
                }
            }
            return TokenKind::CharLit;
        }
        if is_ident_start(self.peek(0)) {
            // Could be 'a' (char) or 'abc (lifetime): a lifetime is an
            // identifier run NOT followed by a closing quote.
            let mut n = 1;
            while is_ident_continue(self.peek(n)) {
                n += 1;
            }
            if self.peek(n) == b'\'' {
                self.bump_n(n + 1);
                return TokenKind::CharLit;
            }
            self.bump_n(n);
            return TokenKind::Lifetime;
        }
        // Non-identifier char literal like '(' or '0'.
        while self.pos < self.bytes.len() && self.peek(0) != b'\'' {
            self.bump();
        }
        self.bump();
        TokenKind::CharLit
    }

    /// Consumes a numeric literal (loose: any base, suffixes, floats).
    fn number(&mut self) {
        self.bump();
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if c.is_ascii_alphanumeric()
                || c == b'_'
                || (c == b'.' && self.peek(1).is_ascii_digit())
            {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// Consumes an identifier, or dispatches to the raw/byte string
    /// literal lexers when the "identifier" is actually an `r`/`b`/`br`
    /// prefix glued to a quote.
    fn ident_or_prefixed_literal(&mut self) -> TokenKind {
        let c = self.peek(0);
        // r"…" | r#"…"# | r#ident
        if c == b'r' {
            if self.peek(1) == b'"' {
                self.bump();
                self.raw_string();
                return TokenKind::RawStr;
            }
            if self.peek(1) == b'#' {
                // Count hashes, then decide: quote → raw string,
                // ident-start → raw identifier.
                let mut n = 1;
                while self.peek(n) == b'#' {
                    n += 1;
                }
                if self.peek(n) == b'"' {
                    self.bump();
                    self.raw_string();
                    return TokenKind::RawStr;
                }
                if n == 2 && is_ident_start(self.peek(2)) {
                    // r#ident — consume prefix then fall through.
                    self.bump_n(2);
                }
            }
        }
        // b"…" | b'…' | br"…" | c"…"
        if c == b'b' || c == b'c' {
            if self.peek(1) == b'"' {
                self.bump();
                self.string();
                return TokenKind::Str;
            }
            if c == b'b' && self.peek(1) == b'\'' {
                self.bump();
                return self.char_or_lifetime();
            }
            if c == b'b' && self.peek(1) == b'r' && (self.peek(2) == b'"' || (self.peek(2) == b'#'))
            {
                // Distinguish br#"…"# from an identifier starting with
                // "br#"-ish text: after the hashes there must be a quote.
                let mut n = 2;
                while self.peek(n) == b'#' {
                    n += 1;
                }
                if self.peek(n) == b'"' {
                    self.bump_n(2);
                    self.raw_string();
                    return TokenKind::RawStr;
                }
            }
        }
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        TokenKind::Ident
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` item bodies, plus any
/// trailing unclosed region (a test module spanning to end of file).
#[derive(Debug, Default)]
pub struct TestRegions {
    ranges: Vec<(usize, usize)>,
}

impl TestRegions {
    /// Is byte offset `pos` inside a test-gated region?
    pub fn contains(&self, pos: usize) -> bool {
        self.ranges.iter().any(|&(s, e)| pos >= s && pos < e)
    }

    /// The raw ranges (fixture tests inspect these).
    pub fn ranges(&self) -> &[(usize, usize)] {
        &self.ranges
    }
}

/// Walks the token stream and records the brace bodies of items marked
/// `#[cfg(test)]` (but not `#[cfg(not(test))]`) or `#[test]`.
///
/// The attribute "arms" the next `{` at the same nesting level; an
/// intervening `;` or `}` disarms it (e.g. `#[cfg(test)] use x;`).
pub fn test_regions(src: &str, tokens: &[Token]) -> TestRegions {
    let mut regions = TestRegions::default();
    let mut armed = false;
    // Stack entry: byte offset of a `{` that opened a test region (or
    // usize::MAX for ordinary braces).
    let mut stack: Vec<usize> = Vec::new();
    let mut in_test_depth: Option<usize> = None;
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_comment() {
            i += 1;
            continue;
        }
        match (t.kind, t.text(src)) {
            (TokenKind::Punct, "#") => {
                // Attribute: `#[ … ]` (or inner `#![ … ]`). Scan its
                // tokens for a test marker.
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].text(src) == "!" {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].text(src) == "[" {
                    let mut depth = 0usize;
                    let mut idents: Vec<&str> = Vec::new();
                    while j < tokens.len() {
                        let tj = &tokens[j];
                        match tj.text(src) {
                            "[" | "(" => depth += 1,
                            "]" | ")" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if tj.kind == TokenKind::Ident {
                                    idents.push(tj.text(src));
                                }
                            }
                        }
                        j += 1;
                    }
                    if is_test_attr(&idents) {
                        armed = true;
                    }
                    i = j + 1;
                    continue;
                }
            }
            (TokenKind::Punct, "{") => {
                stack.push(t.start);
                if armed && in_test_depth.is_none() {
                    in_test_depth = Some(stack.len());
                }
                armed = false;
            }
            (TokenKind::Punct, "}") => {
                if let Some(open) = stack.pop() {
                    if in_test_depth == Some(stack.len() + 1) {
                        regions.ranges.push((open, t.end));
                        in_test_depth = None;
                    }
                }
                armed = false;
            }
            (TokenKind::Punct, ";") => armed = false,
            _ => {}
        }
        i += 1;
    }
    if let Some(depth) = in_test_depth {
        // Unclosed test region (truncated file): extend to the end.
        if let Some(&open) = stack.get(depth - 1) {
            regions.ranges.push((open, src.len()));
        }
    }
    regions
}

/// Does an attribute's identifier list mark a test-only item?
fn is_test_attr(idents: &[&str]) -> bool {
    match idents.first() {
        Some(&"test") => idents.len() == 1,
        Some(&"cfg") => idents.contains(&"test") && !idents.contains(&"not"),
        _ => false,
    }
}

/// Lower-cased comment text per 1-based line, for annotation adjacency
/// checks (`// SAFETY:`, `// ordering:`…). Block comments contribute
/// each of their lines separately.
pub fn comment_lines(src: &str, tokens: &[Token]) -> std::collections::HashMap<u32, String> {
    let mut map: std::collections::HashMap<u32, String> = std::collections::HashMap::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        for (off, piece) in t.text(src).split('\n').enumerate() {
            let entry = map.entry(t.line + off as u32).or_default();
            entry.push_str(&piece.to_ascii_lowercase());
            entry.push(' ');
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let s = 'static; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(chars, vec!["'x'"]);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let src = "/* outer /* inner */ still outer */ fn x() {}";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert_eq!(toks[0].1, "/* outer /* inner */ still outer */");
        assert_eq!(toks[1].1, "fn");
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let src = r####"let s = r#"contains "quotes" and \ no escapes"#; f();"####;
        let toks = kinds(src);
        let raw: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::RawStr)
            .collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].1.starts_with("r#\""));
        assert!(toks.iter().any(|(_, s)| s == "f"));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let toks = kinds(r##"let a = b"bytes"; let b = br#"raw"#; let r#match = 1;"##);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Str && s == "b\"bytes\""));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::RawStr && s == "br#\"raw\"#"));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::Ident && s == "r#match"));
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let a = '\n'; let b = '\u{1F600}'; let c = '\'';");
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, s)| s.clone())
            .collect();
        assert_eq!(chars, vec![r"'\n'", r"'\u{1F600}'", r"'\''"]);
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n  c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
        assert_eq!(toks[2].col, 3);
    }

    #[test]
    fn cfg_test_region_tracking() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn lib2() {}";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        let lib2_pos = src.find("lib2").unwrap();
        let t_pos = src.find("fn t").unwrap();
        assert!(regions.contains(t_pos));
        assert!(!regions.contains(lib2_pos));
        assert!(!regions.contains(0));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    fn r() {}\n}";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert!(regions.ranges().is_empty());
    }

    #[test]
    fn attribute_then_semicolon_disarms() {
        let src = "#[cfg(test)]\nuse std::vec::Vec;\nfn lib() { body(); }";
        let toks = lex(src);
        let regions = test_regions(src, &toks);
        assert!(regions.ranges().is_empty());
    }
}
