//! `atc-lint` — the workspace invariant checker behind the `atclint`
//! binary.
//!
//! Nine PRs of growth accumulated a set of load-bearing invariants
//! (engine-only threading, SAFETY-commented unsafe, justified atomic
//! orderings, notify-under-lock, length-checked wire allocations) that
//! were enforced only by reviewer memory. This crate turns that review
//! checklist into a machine-checked static-analysis pass: a hand-rolled
//! Rust [`lexer`] (the container has no registry, so no `syn`) feeding
//! a [`rules`] registry, with per-rule `--explain`, JSON and human
//! output, and mandatory-reason inline suppressions
//! (`// atclint: allow(rule) -- reason`).
//!
//! The rule catalog lives in `docs/LINTS.md`; CI runs
//! `atclint --deny-all crates src examples` plus a meta-test asserting
//! the live workspace is finding-free.

pub mod lexer;
pub mod rules;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{check_file, FileContext, Finding};

/// Directories never scanned, wherever they appear in a path: vendored
/// stand-ins aren't ours to annotate, and build output isn't source.
const SKIP_DIRS: &[&str] = &["vendor", "target", ".git", ".github"];

/// Aggregate result of scanning a set of paths.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All unsuppressed findings, in path order.
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Recursively collects `.rs` files under each root (a root may itself
/// be a file), skipping `vendor`, `target`, `.git`, and `.github`, sorted for deterministic output.
pub fn collect_files(roots: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for root in roots {
        walk(root, &mut files)?;
    }
    files.sort();
    files.dedup();
    Ok(files)
}

fn walk(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let meta = fs::metadata(path)?;
    if meta.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    if SKIP_DIRS.contains(&name) {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(path)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        walk(&entry.path(), out)?;
    }
    Ok(())
}

/// Scans the given roots with every rule (or the `only` subset).
pub fn scan(roots: &[PathBuf], only: Option<&[String]>) -> io::Result<ScanReport> {
    let files = collect_files(roots)?;
    let mut report = ScanReport::default();
    for file in &files {
        let src = fs::read_to_string(file)?;
        let display = file.to_string_lossy().into_owned();
        let ctx = FileContext::new(&display, &src);
        report.findings.extend(check_file(&ctx, only));
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Scans in-memory sources (`(path, src)` pairs) — the seeded-fixture
/// self-tests use this to avoid writing violation files to disk (which
/// the workspace scan would then flag).
pub fn scan_sources(sources: &[(&str, &str)], only: Option<&[String]>) -> ScanReport {
    let mut report = ScanReport::default();
    for (path, src) in sources {
        let ctx = FileContext::new(path, src);
        report.findings.extend(check_file(&ctx, only));
        report.files_scanned += 1;
    }
    report
}

/// Renders findings in `path:line:col: rule: message` form with the
/// offending line underneath, plus a summary line.
pub fn render_human(report: &ScanReport) -> String {
    let mut out = String::new();
    for f in &report.findings {
        out.push_str(&format!(
            "{}:{}:{}: {}: {}\n",
            f.file, f.line, f.col, f.rule, f.message
        ));
        if !f.snippet.is_empty() {
            out.push_str(&format!("    | {}\n", f.snippet));
        }
    }
    out.push_str(&format!(
        "atclint: {} finding{} across {} file{}\n",
        report.findings.len(),
        if report.findings.len() == 1 { "" } else { "s" },
        report.files_scanned,
        if report.files_scanned == 1 { "" } else { "s" },
    ));
    out
}

/// Renders the report as a single JSON object (hand-rolled — the
/// vendor set has no serde): `{"files_scanned": N, "findings": […]}`.
pub fn render_json(report: &ScanReport) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"files_scanned\":{},", report.files_scanned));
    out.push_str("\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"file\":{},\"line\":{},\"col\":{},\"message\":{},\"snippet\":{}}}",
            json_str(f.rule),
            json_str(&f.file),
            f.line,
            f.col,
            json_str(&f.message),
            json_str(&f.snippet),
        ));
    }
    out.push_str("]}");
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_round_trips_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn scan_sources_counts_files_and_findings() {
        let report = scan_sources(
            &[("crates/x/src/lib.rs", "fn f() { unsafe { danger() } }")],
            None,
        );
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "undocumented-unsafe");
        let json = render_json(&report);
        assert!(json.contains("\"rule\":\"undocumented-unsafe\""));
        let human = render_human(&report);
        assert!(human.contains("crates/x/src/lib.rs:1:"));
        assert!(human.contains("atclint: 1 finding across 1 file"));
    }
}
