//! `atclint` — the workspace invariant checker CLI.
//!
//! ```text
//! atclint [--deny-all] [--json] [--rules a,b] PATH...
//! atclint --list
//! atclint --explain RULE
//! ```
//!
//! Scans the given paths (files or directories, recursively; `vendor/`
//! and `target/` are always skipped) with the rule registry in
//! `atc_lint::rules`. Without `--deny-all` the exit code is always 0
//! (report-only); with it, any finding exits 1 — that is the CI mode.

use std::path::PathBuf;
use std::process::ExitCode;

use atc_lint::rules::{find_rule, registry};
use atc_lint::{render_human, render_json, scan};

fn usage() -> &'static str {
    "usage: atclint [--deny-all] [--json] [--rules ID[,ID...]] PATH...\n\
     \n\
     modes:\n\
       --list           list registered rules\n\
       --explain RULE   print a rule's invariant, rationale, and annotation form\n\
     \n\
     flags:\n\
       --deny-all       exit 1 if any finding is reported (CI mode)\n\
       --json           machine-readable output\n\
       --rules a,b      run only the named rules (meta-suppression always runs)\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut deny_all = false;
    let mut json = false;
    let mut only: Option<Vec<String>> = None;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-all" => deny_all = true,
            "--json" => json = true,
            "--list" => {
                for rule in registry() {
                    println!("{:24} {}", rule.id, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                i += 1;
                let Some(id) = args.get(i) else {
                    eprintln!("--explain needs a rule id; try --list");
                    return ExitCode::FAILURE;
                };
                match find_rule(id) {
                    Some(rule) => {
                        println!("{} — {}\n\n{}", rule.id, rule.summary, rule.explain);
                        return ExitCode::SUCCESS;
                    }
                    None => {
                        eprintln!("unknown rule `{id}`; try --list");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--rules" => {
                i += 1;
                let Some(list) = args.get(i) else {
                    eprintln!("--rules needs a comma-separated id list");
                    return ExitCode::FAILURE;
                };
                let ids: Vec<String> = list.split(',').map(|s| s.trim().to_string()).collect();
                for id in &ids {
                    if find_rule(id).is_none() {
                        eprintln!("unknown rule `{id}`; try --list");
                        return ExitCode::FAILURE;
                    }
                }
                only = Some(ids);
            }
            "--help" | "-h" => {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag}\n{}", usage());
                return ExitCode::FAILURE;
            }
            path => paths.push(PathBuf::from(path)),
        }
        i += 1;
    }
    if paths.is_empty() {
        eprint!("{}", usage());
        return ExitCode::FAILURE;
    }
    let report = match scan(&paths, only.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("atclint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if json {
        println!("{}", render_json(&report));
    } else {
        print!("{}", render_human(&report));
    }
    if deny_all && !report.findings.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
