//! The rule registry: each rule encodes one load-bearing workspace
//! invariant (see `docs/LINTS.md` for the catalog with rationale).
//!
//! Rules operate on the token stream from [`crate::lexer`] plus derived
//! file structure (test regions, per-line comment text). Annotation
//! rules accept the required marker as a trailing comment on the same
//! line or in a comment within the [`ADJACENCY_WINDOW`] lines above the
//! use — wide enough to cover a comment above a multi-line statement.

use std::collections::HashMap;

use crate::lexer::{comment_lines, lex, test_regions, TestRegions, Token, TokenKind};

/// How many lines above a use site an annotation comment may sit.
pub const ADJACENCY_WINDOW: u32 = 4;

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (e.g. `undocumented-unsafe`).
    pub rule: &'static str,
    /// Path as given to the scanner (workspace-relative in CI).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// What part of the workspace a file belongs to; decides rule scope.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` (excluding `src/bin/`) or the root `src/`.
    LibrarySrc {
        /// Crate directory name (`engine`, `net`, …); `"atc"` for the
        /// workspace-root facade crate.
        crate_name: String,
    },
    /// `crates/<name>/src/bin/**` — binaries, not library surface.
    BinSrc,
    /// `**/tests/**` integration tests.
    Tests,
    /// `**/benches/**`.
    Benches,
    /// `examples/**` — CLI front ends.
    Examples,
    /// Anything else (build scripts, fixtures).
    Other,
}

impl FileKind {
    /// Classifies a path by its components. Matches anywhere in the
    /// path so absolute and relative invocations agree.
    pub fn classify(path: &str) -> FileKind {
        let comps: Vec<&str> = path.split(['/', '\\']).filter(|c| !c.is_empty()).collect();
        if comps.contains(&"tests") {
            return FileKind::Tests;
        }
        if comps.contains(&"benches") {
            return FileKind::Benches;
        }
        if comps.contains(&"examples") {
            return FileKind::Examples;
        }
        if let Some(i) = comps.iter().position(|c| *c == "crates") {
            if comps.get(i + 2) == Some(&"src") {
                if comps.get(i + 3) == Some(&"bin") || comps.last() == Some(&"main.rs") {
                    return FileKind::BinSrc;
                }
                return FileKind::LibrarySrc {
                    crate_name: comps[i + 1].to_string(),
                };
            }
            return FileKind::Other;
        }
        if comps.contains(&"src") {
            if comps.contains(&"bin") || comps.last() == Some(&"main.rs") {
                return FileKind::BinSrc;
            }
            return FileKind::LibrarySrc {
                crate_name: "atc".to_string(),
            };
        }
        FileKind::Other
    }
}

/// An inline suppression: `// atclint: allow(rule) -- reason` or
/// `// atclint: file-allow(rule) -- reason`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids listed in `allow(…)` (comma-separated).
    pub rules: Vec<String>,
    /// Line the comment sits on.
    pub line: u32,
    /// Whether a non-empty reason follows `--`.
    pub has_reason: bool,
    /// `file-allow` covers the whole file; `allow` covers its own line
    /// and the next line of code.
    pub file_level: bool,
}

/// Everything the rules need to know about one file.
pub struct FileContext<'a> {
    /// Display path (as passed on the command line).
    pub path: &'a str,
    /// Scope classification.
    pub kind: FileKind,
    /// Raw source.
    pub src: &'a str,
    /// Full token stream.
    pub tokens: Vec<Token>,
    /// Indices (into `tokens`) of non-comment tokens.
    pub sig: Vec<usize>,
    /// `#[cfg(test)]` / `#[test]` brace regions.
    pub test_regions: TestRegions,
    /// Lower-cased comment text per line.
    pub comments: HashMap<u32, String>,
    /// Parsed suppressions.
    pub suppressions: Vec<Suppression>,
    /// Source lines for snippets (0-indexed storage).
    pub lines: Vec<&'a str>,
}

impl<'a> FileContext<'a> {
    /// Lexes and indexes `src`.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = lex(src);
        let sig = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let test_regions = test_regions(src, &tokens);
        let comments = comment_lines(src, &tokens);
        let suppressions = parse_suppressions(src, &tokens);
        FileContext {
            path,
            kind: FileKind::classify(path),
            src,
            tokens,
            sig,
            test_regions,
            comments,
            suppressions,
            lines: src.lines().collect(),
        }
    }

    fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn finding(&self, rule: &'static str, tok: &Token, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: self.snippet(tok.line),
        }
    }

    /// Does a comment containing `marker` (lower-case) sit adjacent to
    /// `line`? Adjacent means: on the line itself (trailing comment),
    /// or above it — walking upward through comment lines without
    /// limit (so a long `# Safety` doc block counts in full) while
    /// tolerating at most [`ADJACENCY_WINDOW`] intervening non-comment
    /// lines in total (so a comment above a multi-line statement, or
    /// above an `unsafe fn` signature whose body opens with an unsafe
    /// block, still counts).
    pub fn has_annotation(&self, line: u32, marker: &str) -> bool {
        let contains = |l: u32| self.comments.get(&l).map(|text| text.contains(marker));
        if contains(line) == Some(true) {
            return true;
        }
        let mut budget = ADJACENCY_WINDOW;
        let mut l = line;
        while l > 1 {
            l -= 1;
            match contains(l) {
                Some(true) => return true,
                Some(false) => {}
                None => {
                    if budget == 0 {
                        return false;
                    }
                    budget -= 1;
                }
            }
        }
        false
    }

    /// Is a finding on `line` for `rule` covered by a suppression
    /// (with or without a reason — reasonless ones are themselves
    /// findings, but still suppress to avoid double reporting)?
    ///
    /// A line-level suppression covers its own line (trailing-comment
    /// form) and the first code line after its comment block (a
    /// multi-line `// atclint: allow(…) -- long reason` still reaches
    /// the statement it guards).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            s.rules.iter().any(|r| r == rule)
                && (s.file_level
                    || s.line == line
                    || (s.line < line && self.next_code_line(s.line) == Some(line)))
        })
    }

    /// The first line after `from` that is not blank and not a pure
    /// comment line.
    fn next_code_line(&self, from: u32) -> Option<u32> {
        let mut l = from + 1;
        while let Some(text) = self.lines.get(l as usize - 1) {
            let trimmed = text.trim_start();
            if trimmed.is_empty() || trimmed.starts_with("//") {
                l += 1;
                continue;
            }
            return Some(l);
        }
        None
    }

    /// The token `offset` significant steps after `sig_idx` (an index
    /// into `self.sig`).
    fn sig_tok(&self, sig_idx: usize, offset: usize) -> Option<&Token> {
        self.sig.get(sig_idx + offset).map(|&ti| &self.tokens[ti])
    }

    fn sig_text(&self, sig_idx: usize, offset: usize) -> &str {
        self.sig_tok(sig_idx, offset)
            .map(|t| t.text(self.src))
            .unwrap_or("")
    }
}

/// Parses suppressions from comment tokens. Only a comment whose
/// content *begins* with `atclint:` (after the `//`/`/*`/doc sigils)
/// counts — prose *mentioning* the syntax mid-sentence does not.
fn parse_suppressions(src: &str, tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        for (off, piece) in t.text(src).split('\n').enumerate() {
            let line = t.line + off as u32;
            let content = piece.trim_start_matches(['/', '*', '!', ' ', '\t']);
            let Some(rest) = content.strip_prefix("atclint:") else {
                continue;
            };
            let trimmed = rest.trim_start();
            let file_level = trimmed.starts_with("file-allow");
            if !file_level && !trimmed.starts_with("allow") {
                continue;
            }
            let kw_len = if file_level {
                "file-allow".len()
            } else {
                "allow".len()
            };
            let after_kw = trimmed[kw_len..].trim_start();
            let Some(inner) = after_kw.strip_prefix('(') else {
                continue;
            };
            let Some(close) = inner.find(')') else {
                continue;
            };
            let rules: Vec<String> = inner[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = inner[close + 1..].trim_start();
            let has_reason = tail
                .strip_prefix("--")
                .is_some_and(|r| !r.trim_end_matches(['*', '/']).trim().is_empty());
            out.push(Suppression {
                rules,
                line,
                has_reason,
                file_level,
            });
        }
    }
    out.sort_by_key(|s| s.line);
    out
}

/// A registered rule: id, one-line summary, and the long `--explain`
/// text (the invariant, its rationale, and the accepted annotation).
pub struct Rule {
    /// Stable identifier used in findings and suppressions.
    pub id: &'static str,
    /// One-line summary for `--list`.
    pub summary: &'static str,
    /// Multi-paragraph explanation for `--explain`.
    pub explain: &'static str,
    check: fn(&FileContext<'_>, &mut Vec<Finding>),
}

impl Rule {
    /// Runs the rule over one file, appending findings.
    pub fn check(&self, ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
        (self.check)(ctx, out);
    }
}

/// All rules, in reporting order. `meta-suppression` is the engine's
/// own hygiene rule (reasonless or unknown-rule suppressions).
pub fn registry() -> &'static [Rule] {
    &RULES
}

/// Looks a rule up by id.
pub fn find_rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

static RULES: [Rule; 7] = [
    Rule {
        id: "undocumented-unsafe",
        summary: "every unsafe block/fn/impl needs an adjacent SAFETY comment",
        explain: "\
Invariant: every `unsafe` block, function, or impl carries a comment
containing `SAFETY` (e.g. `// SAFETY: …` or a `# Safety` doc section)
on the same line or within the 4 lines above it.

Rationale: the unsafe concurrency core (the hand-written Chase-Lev
deque, the SA-IS allocation counter, `split_at_mut` flat decodes) is
only reviewable if each unsafe site states the proof obligation it
discharges. Miri checks executions; SAFETY comments check reasoning.

Scope: all scanned files, including tests.
Annotation: a comment containing `SAFETY` adjacent to the `unsafe`
keyword. Suppression: `// atclint: allow(undocumented-unsafe) -- why`.",
        check: check_undocumented_unsafe,
    },
    Rule {
        id: "rogue-thread-spawn",
        summary: "thread::spawn/scope forbidden in library src outside crates/engine",
        explain: "\
Invariant: library code (crates/*/src, excluding src/bin) never calls
`thread::spawn` or `thread::scope` directly, except inside
`crates/engine` — every pool, scope, and background task goes through
`Engine` so the whole process shares one work-stealing runtime.

Rationale: PR 4 unified four ad-hoc pools onto the engine; a stray
spawn reintroduces unaccounted parallelism, breaks the worker-count
contract (ATC_TEST_THREADS pinning), and dodges panic isolation.

Scope: library src outside crates/engine; `#[cfg(test)]` regions,
tests/, benches/, and examples/ are exempt (test harnesses may spawn
scaffolding threads).
Suppression: `// atclint: allow(rogue-thread-spawn) -- why` for the
rare justified helper (e.g. an OS signal listener that must outlive
the engine).",
        check: check_rogue_thread_spawn,
    },
    Rule {
        id: "unchecked-ordering",
        summary: "every Ordering::* use needs an adjacent `ordering:` justification",
        explain: "\
Invariant: each line using `Ordering::Relaxed/Acquire/Release/AcqRel/
SeqCst` in library or bin src carries an adjacent comment containing
`ordering:` stating why that strength is sufficient (what it pairs
with, or why no synchronization is needed).

Rationale: the lock-free deque and the engine's sleep/wake protocol
are correct only under specific pairings (Release store -> Acquire
load, SeqCst Dekker handshake). An ordering without a written pairing
argument is unreviewable and rots silently when code moves.

Scope: library and src/bin code; `#[cfg(test)]` regions and test
files are exempt (test counters use Relaxed incidentally).
Annotation: a comment containing `ordering:` on the line or within 4
lines above. One annotation covers every Ordering use on that line.
Whole files with a module-level ordering proof may use
`// atclint: file-allow(unchecked-ordering) -- see module docs`.",
        check: check_unchecked_ordering,
    },
    Rule {
        id: "library-unwrap",
        summary: ".unwrap()/.expect() denied in non-test library code",
        explain: "\
Invariant: library code (crates/*/src) does not call `.unwrap()` or
`.expect(…)` outside `#[cfg(test)]` regions. Fallible paths propagate
`AtcError`/`CodecError`; provably-infallible uses carry a suppression
naming the proof.

Rationale: a panic inside an engine task poisons the whole writer; a
panic while holding a lock poisons the lock for every sibling thread.
The byte-identity contract means callers retry or surface errors --
they cannot do either through a panic. PR 10 converted the poisoned
channel/lock unwraps in the codec hot paths to error propagation.

Scope: library src only (bins, examples, tests, benches exempt --
CLIs may panic on startup errors).
Suppression: `// atclint: allow(library-unwrap) -- proof` on or above
the line, e.g. '-- receiver outlives sender, send cannot fail'.",
        check: check_library_unwrap,
    },
    Rule {
        id: "naked-notify",
        summary: "Condvar notify_* requires a `lock-held:` annotation",
        explain: "\
Invariant: every `notify_one()`/`notify_all()` call site carries an
adjacent comment containing `lock-held:` naming the mutex held (or
the reason none is needed) when the notify fires.

Rationale: the PR 4/PR 6 lost-wakeup class — a notify issued after a
waiter checked its predicate but before it parked is lost unless the
notifier holds the mutex guarding the predicate (or the protocol
proves the waiter must re-check). The annotation forces that proof to
be written where the notify happens.

Scope: library and bin src; test regions exempt.
Annotation: comment containing `lock-held:` on the line or within 4
lines above. Suppression: `// atclint: allow(naked-notify) -- why`.",
        check: check_naked_notify,
    },
    Rule {
        id: "wire-alloc",
        summary: "non-literal-length allocations in net/format need a `bounded:` annotation",
        explain: "\
Invariant: in `crates/net` and `crates/core/src/format.rs`, any
allocation sized by a runtime value — `with_capacity(n)`,
`vec![x; n]`, `resize(n, …)`, `reserve(n)` with non-literal `n` —
carries an adjacent comment containing `bounded:` stating the bound
(e.g. 'bounded: n <= NET_MAX_FRAME, checked above').

Rationale: wire-facing code allocates from attacker-controlled
declared lengths. The NET_MAX_FRAME check-before-alloc pattern only
protects frames whose allocation actually follows a check; the
annotation makes 'where is the check?' a lint question instead of a
review question.

Scope: crates/net/src and crates/core/src/format.rs; test regions
exempt. Integer-literal lengths are always fine.
Annotation: comment containing `bounded:` on the line or within 4
lines above. Suppression: `// atclint: allow(wire-alloc) -- why`.",
        check: check_wire_alloc,
    },
    Rule {
        id: "meta-suppression",
        summary: "suppressions must name a known rule and carry a `-- reason`",
        explain: "\
Invariant: every `// atclint: allow(rule) -- reason` (and file-allow)
names a registered rule and carries a non-empty reason after `--`.

Rationale: a suppression is a reviewed exception; one without a
written reason is indistinguishable from a silenced bug. Unknown rule
ids usually mean a typo that silently suppresses nothing.

This rule cannot be suppressed.",
        check: check_meta_suppression,
    },
];

/// True when this file's kind means "library source" (rules that
/// protect the library surface).
fn is_library(kind: &FileKind) -> bool {
    matches!(kind, FileKind::LibrarySrc { .. })
}

/// Library or bin source — concurrency rules cover both.
fn is_library_or_bin(kind: &FileKind) -> bool {
    matches!(kind, FileKind::LibrarySrc { .. } | FileKind::BinSrc)
}

fn check_undocumented_unsafe(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "unsafe" {
            continue;
        }
        let next = ctx.sig_text(si, 1);
        let what = match next {
            "{" => "unsafe block",
            "fn" => "unsafe fn",
            "impl" => "unsafe impl",
            "trait" => "unsafe trait",
            "extern" => "unsafe extern block",
            // `unsafe` inside attribute args (`#[unsafe(no_mangle)]`)
            // or other positions we don't classify — still require the
            // comment; the keyword is load-bearing wherever it appears.
            _ => "unsafe",
        };
        if !ctx.has_annotation(t.line, "safety") {
            out.push(ctx.finding(
                "undocumented-unsafe",
                t,
                format!("{what} without an adjacent `SAFETY` comment"),
            ));
        }
    }
}

fn check_rogue_thread_spawn(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    match &ctx.kind {
        FileKind::LibrarySrc { crate_name } if crate_name != "engine" => {}
        _ => return,
    }
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "thread" {
            continue;
        }
        if ctx.test_regions.contains(t.start) {
            continue;
        }
        // Match `thread :: spawn` / `thread :: scope` (the `::` lexes
        // as two `:` puncts).
        if ctx.sig_text(si, 1) == ":" && ctx.sig_text(si, 2) == ":" {
            let callee = ctx.sig_text(si, 3);
            if callee == "spawn" || callee == "scope" {
                out.push(ctx.finding(
                    "rogue-thread-spawn",
                    t,
                    format!(
                        "thread::{callee} in library code outside crates/engine — \
                         route work through Engine (Engine::scope / submit)"
                    ),
                ));
            }
        }
    }
}

fn check_unchecked_ordering(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !is_library_or_bin(&ctx.kind) {
        return;
    }
    let mut last_line = 0u32;
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "Ordering" {
            continue;
        }
        if ctx.test_regions.contains(t.start) {
            continue;
        }
        if !(ctx.sig_text(si, 1) == ":" && ctx.sig_text(si, 2) == ":") {
            continue;
        }
        let strength = ctx.sig_text(si, 3);
        if !matches!(
            strength,
            "Relaxed" | "Acquire" | "Release" | "AcqRel" | "SeqCst"
        ) {
            continue;
        }
        // One annotation covers every Ordering use on the line.
        if t.line == last_line {
            continue;
        }
        last_line = t.line;
        if !ctx.has_annotation(t.line, "ordering:") {
            out.push(ctx.finding(
                "unchecked-ordering",
                t,
                format!("Ordering::{strength} without an adjacent `ordering:` justification"),
            ));
        }
    }
}

fn check_library_unwrap(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !is_library(&ctx.kind) {
        return;
    }
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        if name != "unwrap" && name != "expect" {
            continue;
        }
        // Method call position only: preceded by `.`, followed by `(`.
        if si == 0 || ctx.sig_text(si - 1, 0) != "." || ctx.sig_text(si, 1) != "(" {
            continue;
        }
        if ctx.test_regions.contains(t.start) {
            continue;
        }
        out.push(ctx.finding(
            "library-unwrap",
            t,
            format!(
                ".{name}() in library code — propagate AtcError/CodecError, or \
                 suppress with a written infallibility proof"
            ),
        ));
    }
}

fn check_naked_notify(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !is_library_or_bin(&ctx.kind) {
        return;
    }
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text(ctx.src);
        if name != "notify_one" && name != "notify_all" {
            continue;
        }
        if si == 0 || ctx.sig_text(si - 1, 0) != "." || ctx.sig_text(si, 1) != "(" {
            continue;
        }
        if ctx.test_regions.contains(t.start) {
            continue;
        }
        if !ctx.has_annotation(t.line, "lock-held:") {
            out.push(ctx.finding(
                "naked-notify",
                t,
                format!(
                    "{name} without an adjacent `lock-held:` annotation — \
                     prove the guarding mutex is held (lost-wakeup class)"
                ),
            ));
        }
    }
}

/// Is `wire-alloc` in scope for this file?
fn wire_alloc_in_scope(ctx: &FileContext<'_>) -> bool {
    match &ctx.kind {
        FileKind::LibrarySrc { crate_name } if crate_name == "net" => true,
        FileKind::LibrarySrc { crate_name } if crate_name == "core" => {
            ctx.path.replace('\\', "/").ends_with("src/format.rs")
        }
        _ => false,
    }
}

fn check_wire_alloc(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !wire_alloc_in_scope(ctx) {
        return;
    }
    for (si, &ti) in ctx.sig.iter().enumerate() {
        let t = &ctx.tokens[ti];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if ctx.test_regions.contains(t.start) {
            continue;
        }
        let name = t.text(ctx.src);
        match name {
            "with_capacity" | "reserve" | "reserve_exact" | "resize" => {
                if ctx.sig_text(si, 1) != "(" {
                    continue;
                }
                // Literal first argument is always fine.
                let arg = ctx.sig_tok(si, 2);
                let after = ctx.sig_text(si, 3);
                let literal_len = arg.is_some_and(|a| a.kind == TokenKind::Number)
                    && (after == ")" || after == ",");
                if literal_len {
                    continue;
                }
                if !ctx.has_annotation(t.line, "bounded:") {
                    out.push(ctx.finding(
                        "wire-alloc",
                        t,
                        format!(
                            "{name} with a non-literal length in wire-facing code — \
                             check against NET_MAX_FRAME (or similar) and annotate `bounded:`"
                        ),
                    ));
                }
            }
            "vec" => {
                // vec![elem; len] with non-literal len.
                if ctx.sig_text(si, 1) != "!" || ctx.sig_text(si, 2) != "[" {
                    continue;
                }
                // Find the `;` at depth 1, then inspect the length expr.
                let mut depth = 1usize;
                let mut j = si + 3;
                let mut semi = None;
                while let Some(tok) = ctx.sig_tok(j, 0) {
                    match tok.text(ctx.src) {
                        "[" | "(" | "{" => depth += 1,
                        "]" | ")" | "}" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        ";" if depth == 1 => {
                            semi = Some(j);
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let Some(semi) = semi else { continue };
                let len_tok = ctx.sig_tok(semi, 1);
                let after = ctx.sig_text(semi, 2);
                let literal_len =
                    len_tok.is_some_and(|a| a.kind == TokenKind::Number) && after == "]";
                if literal_len {
                    continue;
                }
                if !ctx.has_annotation(t.line, "bounded:") {
                    out.push(
                        ctx.finding(
                            "wire-alloc",
                            t,
                            "vec![…; len] with a non-literal length in wire-facing code — \
                         check the length before allocating and annotate `bounded:`"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

fn check_meta_suppression(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for s in &ctx.suppressions {
        let fake = Token {
            kind: TokenKind::LineComment,
            start: 0,
            end: 0,
            line: s.line,
            col: 1,
        };
        if !s.has_reason {
            out.push(
                ctx.finding(
                    "meta-suppression",
                    &fake,
                    "suppression without a `-- reason`; every exception needs a written why"
                        .to_string(),
                ),
            );
        }
        for r in &s.rules {
            if r == "meta-suppression" {
                out.push(ctx.finding(
                    "meta-suppression",
                    &fake,
                    "meta-suppression cannot be suppressed".to_string(),
                ));
            } else if find_rule(r).is_none() {
                out.push(ctx.finding(
                    "meta-suppression",
                    &fake,
                    format!("suppression names unknown rule `{r}` (typo suppresses nothing)"),
                ));
            }
        }
    }
}

/// Runs every rule (or the `only` subset) over one file and filters
/// findings through the file's suppressions. `meta-suppression`
/// findings are never suppressible.
pub fn check_file(ctx: &FileContext<'_>, only: Option<&[String]>) -> Vec<Finding> {
    let mut raw = Vec::new();
    for rule in registry() {
        if let Some(ids) = only {
            if rule.id != "meta-suppression" && !ids.iter().any(|i| i == rule.id) {
                continue;
            }
        }
        rule.check(ctx, &mut raw);
    }
    raw.retain(|f| f.rule == "meta-suppression" || !ctx.suppressed(f.rule, f.line));
    raw
}
