//! Lexer-boundary fixtures: rule patterns hidden inside comments,
//! strings, raw strings, and char literals must never fire, and
//! `#[cfg(test)]` region edges must be exact.

use atc_lint::scan_sources;

fn rules_fired(path: &str, src: &str) -> Vec<String> {
    scan_sources(&[(path, src)], None)
        .findings
        .iter()
        .map(|f| f.rule.to_string())
        .collect()
}

#[test]
fn patterns_in_comments_do_not_fire() {
    let src = r#"
// std::thread::spawn(|| {}); v.unwrap(); c.notify_one();
/* Ordering::SeqCst and unsafe { } in a block comment
   /* nested: vec![0u8; n] */
   still one comment */
pub fn f() {}
"#;
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn patterns_in_strings_do_not_fire() {
    let src = r##"
pub fn f() -> Vec<String> {
    vec![
        "std::thread::spawn(|| {})".to_string(),
        r#"x.unwrap() and Ordering::SeqCst"#.to_string(),
        String::from_utf8_lossy(b"unsafe { *p }").into_owned(),
    ]
}
"##;
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn raw_string_hashes_terminate_correctly() {
    // A `"#` inside an `r##"…"##` string must not end it early — if the
    // lexer dropped out at the inner quote, the unwrap would go unseen
    // AND the trailing garbage would break later tokens.
    let src = r###"
pub fn f(v: Option<u8>) -> u8 {
    let _s = r##"ends with "# but not here"##;
    v.unwrap()
}
"###;
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["library-unwrap"]);
}

#[test]
fn lifetimes_are_not_char_literals() {
    // If `'a` were lexed as an unterminated char literal, everything
    // after it (including the unwrap) would be swallowed as string data.
    let src = r#"
pub struct Holder<'a> {
    inner: &'a str,
}
pub fn f<'a>(h: &Holder<'a>, v: Option<u8>) -> u8 {
    let _c = 'x';
    let _esc = '\n';
    let _ = h.inner;
    v.unwrap()
}
"#;
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["library-unwrap"]);
}

#[test]
fn byte_and_char_literal_quotes_do_not_open_strings() {
    let src = r#"
pub fn f(v: Option<u8>) -> u8 {
    let _b = b'"';
    let _c = '"';
    v.unwrap()
}
"#;
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["library-unwrap"]);
}

#[test]
fn cfg_test_region_ends_at_its_closing_brace() {
    // The unwrap after the test module's closing brace is back in
    // library land; thread::spawn inside the module is exempt.
    let src = r#"
pub fn lib_code() {}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        std::thread::spawn(|| {});
        Some(1u8).unwrap();
    }
}

pub fn after(v: Option<u8>) -> u8 {
    v.unwrap()
}
"#;
    let got = rules_fired("crates/x/src/lib.rs", src);
    assert_eq!(got, ["library-unwrap"], "only the post-module unwrap");
}

#[test]
fn cfg_not_test_is_not_a_test_region() {
    let src = r#"
#[cfg(not(test))]
pub fn f(v: Option<u8>) -> u8 {
    v.unwrap()
}
"#;
    assert_eq!(rules_fired("crates/x/src/lib.rs", src), ["library-unwrap"]);
}

#[test]
fn braces_in_strings_do_not_shift_test_regions() {
    // A `}` inside a string inside the test module must not end the
    // region early and expose the test's unwrap.
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let _s = "}}}}";
        Some(1u8).unwrap();
    }
}
"#;
    assert!(rules_fired("crates/x/src/lib.rs", src).is_empty());
}
