//! Seeded-violation fixtures: every rule must fire on a known-bad
//! source and stay quiet once the required annotation is present.
//!
//! Fixtures live in raw strings (not on disk) so the live-workspace
//! meta-test in `workspace.rs` never trips over them.

use atc_lint::scan_sources;

/// Runs every rule over one in-memory file.
fn findings(path: &str, src: &str) -> Vec<String> {
    scan_sources(&[(path, src)], None)
        .findings
        .iter()
        .map(|f| format!("{}:{}", f.rule, f.line))
        .collect()
}

#[test]
fn undocumented_unsafe_fires_and_clears() {
    let bad = r#"
pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
"#;
    assert_eq!(
        findings("crates/x/src/lib.rs", bad),
        ["undocumented-unsafe:3"]
    );

    let good = r#"
pub fn peek(p: *const u8) -> u8 {
    // SAFETY: caller guarantees p is valid for reads.
    unsafe { *p }
}
"#;
    assert!(findings("crates/x/src/lib.rs", good).is_empty());
}

#[test]
fn undocumented_unsafe_applies_inside_tests_too() {
    let bad = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = 1u8;
        let _ = unsafe { *(&x as *const u8) };
    }
}
"#;
    assert_eq!(
        findings("crates/x/src/lib.rs", bad),
        ["undocumented-unsafe:7"]
    );
}

#[test]
fn rogue_thread_spawn_fires_in_library_src_only() {
    let bad = r#"
pub fn go() {
    std::thread::spawn(|| {});
}
"#;
    assert_eq!(
        findings("crates/x/src/lib.rs", bad),
        ["rogue-thread-spawn:3"]
    );
    // The engine crate owns the workspace's threads.
    assert!(findings("crates/engine/src/lib.rs", bad).is_empty());
    // Tests, benches and examples may spawn freely.
    assert!(findings("crates/x/tests/t.rs", bad).is_empty());
    assert!(findings("examples/e.rs", bad).is_empty());
}

#[test]
fn rogue_thread_spawn_exempts_test_regions() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        std::thread::scope(|s| { let _ = s; });
    }
}
"#;
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn unchecked_ordering_fires_and_clears() {
    let bad = r#"
use std::sync::atomic::{AtomicBool, Ordering};
pub fn f(b: &AtomicBool) -> bool {
    b.load(Ordering::Acquire)
}
"#;
    assert_eq!(
        findings("crates/x/src/lib.rs", bad),
        ["unchecked-ordering:4"]
    );

    let good = r#"
use std::sync::atomic::{AtomicBool, Ordering};
pub fn f(b: &AtomicBool) -> bool {
    // ordering: Acquire — pairs with the Release store in g().
    b.load(Ordering::Acquire)
}
"#;
    assert!(findings("crates/x/src/lib.rs", good).is_empty());
}

#[test]
fn unchecked_ordering_one_finding_per_line() {
    let bad = r#"
use std::sync::atomic::{AtomicUsize, Ordering};
pub fn f(a: &AtomicUsize) -> usize {
    a.fetch_add(1, Ordering::AcqRel) + a.load(Ordering::Acquire)
}
"#;
    assert_eq!(
        findings("crates/x/src/lib.rs", bad),
        ["unchecked-ordering:4"]
    );
}

#[test]
fn library_unwrap_fires_in_library_src_only() {
    let bad = r#"
pub fn f(v: Option<u8>) -> u8 {
    v.unwrap()
}
"#;
    assert_eq!(findings("crates/x/src/lib.rs", bad), ["library-unwrap:3"]);
    assert!(findings("crates/x/tests/t.rs", bad).is_empty());
    assert!(findings("crates/x/benches/b.rs", bad).is_empty());
    assert!(findings("src/main.rs", bad).is_empty());
}

#[test]
fn library_unwrap_suppression_requires_reason() {
    let reasonless = r#"
// atclint: allow(library-unwrap)
pub fn f(v: Option<u8>) -> u8 {
    v.unwrap()
}
"#;
    let got = findings("crates/x/src/lib.rs", reasonless);
    // The allow still suppresses, but the missing reason is itself a
    // finding — a suppression never lowers the total below 1.
    assert!(
        got.contains(&"meta-suppression:2".to_string()),
        "reasonless allow must be flagged, got {got:?}"
    );

    let good = r#"
pub fn f(v: Option<u8>) -> u8 {
    // atclint: allow(library-unwrap) -- infallible: f is only called
    // with Some by construction.
    v.unwrap()
}
"#;
    assert!(findings("crates/x/src/lib.rs", good).is_empty());
}

#[test]
fn naked_notify_fires_and_clears() {
    let bad = r#"
use std::sync::Condvar;
pub fn f(c: &Condvar) {
    c.notify_one();
}
"#;
    assert_eq!(findings("crates/x/src/lib.rs", bad), ["naked-notify:4"]);

    let good = r#"
use std::sync::Condvar;
pub fn f(c: &Condvar) {
    // lock-held: callers notify with the state mutex held.
    c.notify_one();
}
"#;
    assert!(findings("crates/x/src/lib.rs", good).is_empty());
}

#[test]
fn wire_alloc_fires_in_wire_scope_only() {
    let bad = r#"
pub fn f(n: usize) -> Vec<u8> {
    vec![0u8; n]
}
"#;
    assert_eq!(findings("crates/net/src/helper.rs", bad), ["wire-alloc:3"]);
    assert_eq!(findings("crates/core/src/format.rs", bad), ["wire-alloc:3"]);
    // Non-wire library code allocates freely.
    assert!(findings("crates/x/src/lib.rs", bad).is_empty());

    let good = r#"
pub fn f(n: usize) -> Vec<u8> {
    // bounded: n was checked against NET_MAX_FRAME by the caller.
    vec![0u8; n]
}
"#;
    assert!(findings("crates/net/src/helper.rs", good).is_empty());
}

#[test]
fn wire_alloc_accepts_literal_lengths() {
    let src = r#"
pub fn f() -> Vec<u8> {
    let mut v = Vec::with_capacity(64);
    v.resize(8, 0);
    v
}
"#;
    assert!(findings("crates/net/src/helper.rs", src).is_empty());
}

#[test]
fn meta_suppression_flags_unknown_rules() {
    let src = r#"
// atclint: allow(no-such-rule) -- because
pub fn f() {}
"#;
    assert_eq!(findings("crates/x/src/lib.rs", src), ["meta-suppression:2"]);
}

#[test]
fn meta_suppression_cannot_suppress_itself() {
    let src = r#"
// atclint: allow(meta-suppression) -- trying to silence the police
// atclint: allow(library-unwrap)
pub fn f(v: Option<u8>) -> u8 {
    v.unwrap()
}
"#;
    let got = findings("crates/x/src/lib.rs", src);
    assert!(
        got.iter().any(|f| f.starts_with("meta-suppression:")),
        "meta-suppression must survive its own allow, got {got:?}"
    );
}

#[test]
fn file_allow_covers_the_whole_file() {
    let src = r#"
// atclint: file-allow(library-unwrap) -- harness code: panics are the
// error-reporting strategy here.
pub fn f(v: Option<u8>) -> u8 {
    v.unwrap()
}
pub fn g(v: Option<u8>) -> u8 {
    v.expect("still covered")
}
"#;
    assert!(findings("crates/x/src/lib.rs", src).is_empty());
}

#[test]
fn rule_filter_limits_output() {
    let src = r#"
pub fn f(v: Option<u8>) -> u8 {
    std::thread::spawn(|| {});
    v.unwrap()
}
"#;
    let only = vec!["library-unwrap".to_string()];
    let report = scan_sources(&[("crates/x/src/lib.rs", src)], Some(&only));
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "library-unwrap");
}
