//! Meta-test: the live workspace must be atclint-clean.
//!
//! This is the same gate CI's `lint-invariants` job applies via
//! `atclint --deny-all crates src examples`, kept here too so a plain
//! `cargo test` catches a new violation before CI does.

use std::path::{Path, PathBuf};

use atc_lint::{render_human, scan};

fn workspace_root() -> PathBuf {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn live_workspace_has_zero_findings() {
    let root = workspace_root();
    let roots: Vec<PathBuf> = ["crates", "src", "examples"]
        .iter()
        .map(|d| root.join(d))
        .filter(|p| p.exists())
        .collect();
    assert!(!roots.is_empty(), "no scan roots under {}", root.display());
    let report = scan(&roots, None).expect("scan workspace sources");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.findings.is_empty(),
        "workspace has atclint findings:\n{}",
        render_human(&report)
    );
}
