//! The blocking trace-service client.

use std::io::{BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::time::Duration;

use atc_core::format::{
    read_net_frame, NetRequest, NetResponse, NetStat, NET_MAGIC, NET_PROTOCOL_VERSION,
};
use atc_core::{AtcError, Result};

/// Tuning knobs for [`AtcClient::connect_with`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Per-attempt TCP connect deadline.
    pub connect_timeout: Duration,
    /// Deadline for every read and write on the established connection.
    pub io_timeout: Duration,
    /// Extra connect attempts after the first fails. The generous
    /// default doubles as "wait for the daemon to come up" in scripts
    /// that start `atcd` in the background.
    pub connect_retries: u32,
    /// Pause between connect attempts.
    pub retry_delay: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(10),
            connect_retries: 20,
            retry_delay: Duration::from_millis(250),
        }
    }
}

/// A blocking connection to an `atcd` trace server.
///
/// One request is in flight at a time (the protocol has no request
/// pipelining); open more clients for concurrency — the server decodes
/// each hot segment only once across all of them. Any transport or
/// protocol error poisons the connection: subsequent calls keep
/// failing, reconnect to recover. A server-side *query* rejection (bad
/// range, unknown shard) is returned as [`AtcError::Format`] with the
/// server's message and does **not** poison the connection.
#[derive(Debug)]
pub struct AtcClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    server_version: u32,
}

impl AtcClient {
    /// Connects with [`ClientOptions::default`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`AtcClient::connect_with`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self> {
        Self::connect_with(addr, ClientOptions::default())
    }

    /// Connects to `addr`, retrying per `options`, and runs the magic +
    /// `Hello` handshake.
    ///
    /// # Errors
    ///
    /// Fails when every connect attempt fails, on handshake I/O errors,
    /// and when the peer is not an ATCNET1 server (wrong banner) or
    /// speaks an unsupported protocol version.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, options: ClientOptions) -> Result<Self> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(AtcError::Format("address resolved to nothing".into()));
        }
        let mut last: Option<std::io::Error> = None;
        let mut stream = None;
        'attempts: for attempt in 0..=options.connect_retries {
            if attempt > 0 {
                std::thread::sleep(options.retry_delay);
            }
            for a in &addrs {
                match TcpStream::connect_timeout(a, options.connect_timeout) {
                    Ok(s) => {
                        stream = Some(s);
                        break 'attempts;
                    }
                    Err(e) => last = Some(e),
                }
            }
        }
        let stream = stream.ok_or_else(|| {
            AtcError::Io(last.unwrap_or_else(|| ErrorKind::ConnectionRefused.into()))
        })?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(options.io_timeout))?;
        stream.set_write_timeout(Some(options.io_timeout))?;
        let writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);

        // Banner in, banner + Hello out, Hello back.
        let mut magic = [0u8; NET_MAGIC.len()];
        reader.read_exact(&mut magic)?;
        if magic != NET_MAGIC {
            return Err(AtcError::Format(
                "peer did not present the ATCNET1 banner".into(),
            ));
        }
        let mut client = Self {
            reader,
            writer,
            server_version: 0,
        };
        client.writer.write_all(&NET_MAGIC)?;
        client.send(&NetRequest::Hello {
            version: NET_PROTOCOL_VERSION,
        })?;
        match client.receive()? {
            NetResponse::Hello { version } => client.server_version = version,
            NetResponse::Error { message } => {
                return Err(AtcError::Format(format!("server: {message}")))
            }
            other => return Err(AtcError::Format(format!("expected Hello, got {other:?}"))),
        }
        Ok(client)
    }

    /// The protocol version the server announced in its `Hello`.
    pub fn server_version(&self) -> u32 {
        self.server_version
    }

    /// Fetches the store's manifest summary and the server's cache
    /// counters.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and server-reported errors.
    pub fn stat(&mut self) -> Result<NetStat> {
        self.send(&NetRequest::StatStore)?;
        match self.receive()? {
            NetResponse::Stat(stat) => Ok(stat),
            NetResponse::Error { message } => Err(AtcError::Format(format!("server: {message}"))),
            other => Err(AtcError::Format(format!("expected Stat, got {other:?}"))),
        }
    }

    /// Fetches merged global positions `range.start..range.end`; the
    /// result equals the local
    /// [`StoreReader::read_range`](atc_store::StoreReader::read_range)
    /// over the same store.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and server-reported errors (inverted
    /// or out-of-bounds ranges are rejected by the server).
    pub fn read_range(&mut self, range: Range<u64>) -> Result<Vec<u64>> {
        let expect = range.end.saturating_sub(range.start);
        self.send(&NetRequest::ReadRange {
            start: range.start,
            end: range.end,
        })?;
        self.collect_stream(expect)
    }

    /// Streams shard `shard`'s sub-stream from its value position
    /// `from` to the shard's end.
    ///
    /// # Errors
    ///
    /// Fails on transport errors and server-reported errors (unknown
    /// shards, offsets past the shard, seeking into lossy shards).
    pub fn stream_shard(&mut self, shard: u32, from: u64) -> Result<Vec<u64>> {
        self.send(&NetRequest::StreamShard { shard, from })?;
        self.collect_stream(u64::MAX)
    }

    fn send(&mut self, request: &NetRequest) -> Result<()> {
        request.write(&mut self.writer)?;
        self.writer.flush()?;
        Ok(())
    }

    fn receive(&mut self) -> Result<NetResponse> {
        let body = read_net_frame(&mut self.reader)?
            .ok_or_else(|| AtcError::Format("server closed the connection".into()))?;
        NetResponse::decode(&body)
    }

    /// Drains one `Data*`/`Done` stream. `expect` is a sanity bound on
    /// the value count when the caller knows it (`u64::MAX` otherwise).
    fn collect_stream(&mut self, expect: u64) -> Result<Vec<u64>> {
        // bounded: the reservation is clamped to 16Mi values (128 MiB)
        // even when the caller passes u64::MAX; beyond the clamp the Vec
        // grows only as frames actually arrive, and the `expect` check
        // below rejects streams that overrun the declared count.
        let mut out = Vec::with_capacity(expect.min(1 << 24) as usize);
        loop {
            match self.receive()? {
                NetResponse::Data(values) => {
                    if out.len() as u64 + values.len() as u64 > expect {
                        return Err(AtcError::Format(format!(
                            "server sent more than the {expect} values asked for"
                        )));
                    }
                    out.extend_from_slice(&values);
                }
                NetResponse::Done { values } => {
                    if values != out.len() as u64 {
                        return Err(AtcError::Format(format!(
                            "server says it sent {values} values, received {}",
                            out.len()
                        )));
                    }
                    return Ok(out);
                }
                NetResponse::Error { message } => {
                    if !out.is_empty() {
                        return Err(AtcError::Format(format!(
                            "server aborted mid-stream: {message}"
                        )));
                    }
                    return Err(AtcError::Format(format!("server: {message}")));
                }
                other => {
                    return Err(AtcError::Format(format!(
                        "expected Data/Done, got {other:?}"
                    )))
                }
            }
        }
    }
}
