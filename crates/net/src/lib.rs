//! # atc-net — the trace service
//!
//! The paper's point is that cache-filtered traces become small enough to
//! *move and share*; this crate closes that loop by putting a packed
//! [`atc_store`] root on the wire. [`NetServer`] is a `std::net` daemon
//! (the `atcd` example binary) that answers merged-range and per-shard
//! stream queries for many concurrent clients; [`AtcClient`] is the
//! blocking client with connect retries and I/O timeouts.
//!
//! The wire protocol lives in [`atc_core::format`] next to the on-disk
//! formats: a `ATCNET1` magic exchange, then varint length-prefixed
//! request/response frames ([`atc_core::format::NetRequest`] /
//! [`atc_core::format::NetResponse`]). Values travel as little-endian
//! `u64`s in bounded `Data` frames, so a response is byte-identical to
//! the local [`atc_store::StoreReader::read_range`] over the same range.
//!
//! Three pieces make many-client service cheap:
//!
//! * each connection is one long-lived [`atc_engine::Engine`] task, so
//!   the worker count bounds concurrent connections without a
//!   thread-per-connection explosion;
//! * every connection's reader shares one
//!   [`SegmentCache`](atc_cache::SegmentCache), so concurrent clients
//!   hitting the same region decode each segment once;
//! * each connection meters its decoded-but-unsent bytes through a
//!   [`ByteBudget`](atc_codec::ByteBudget) send window, so a slow or
//!   stalled client bounds its own memory and eventually gets dropped
//!   instead of wedging the server.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use atc_core::Mode;
//! use atc_net::{AtcClient, NetServer, ServeOptions};
//! use atc_store::{AtcStore, StoreOptions};
//!
//! let root = std::env::temp_dir().join("atc-net-lib-doc");
//! # let _ = std::fs::remove_dir_all(&root);
//! let mut store = AtcStore::create(&root, Mode::Lossless, StoreOptions::default())?;
//! store.code_all(0..4_000u64)?;
//! store.finish()?;
//!
//! let server = NetServer::bind(&root, "127.0.0.1:0", ServeOptions::default())?;
//! let addr = server.local_addr()?;
//! let handle = server.handle();
//! // The accept loop blocks, so the *application* gives it a thread —
//! // the library itself never spawns: connections run on the shared
//! // engine (see the `rogue-thread-spawn` invariant in docs/LINTS.md).
//! let join = std::thread::spawn(move || server.run());
//!
//! let mut client = AtcClient::connect(addr)?;
//! assert_eq!(client.read_range(100..110)?, (100..110u64).collect::<Vec<_>>());
//! assert_eq!(client.stat()?.count, 4_000);
//!
//! handle.shutdown();
//! let stats = join.join().unwrap()?;
//! assert_eq!(stats.connections, 1);
//! # std::fs::remove_dir_all(&root)?;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod client;
mod server;

pub use client::{AtcClient, ClientOptions};
pub use server::{NetServer, ServeOptions, ServerHandle, ServerStats};
