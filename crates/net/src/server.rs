//! The `atcd` server loop: one engine task per connection.

use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atc_cache::{SegmentCache, SegmentCacheStats};
use atc_codec::ByteBudget;
use atc_core::format::{
    net_check_frame_len, NetRequest, NetResponse, NetStat, NET_MAGIC, NET_PROTOCOL_VERSION,
};
use atc_core::{AtcError, ReadOptions, Result};
use atc_engine::Engine;
use atc_store::StoreService;

/// How often a blocked read re-checks the shutdown flag.
const STOP_POLL: Duration = Duration::from_millis(25);

/// How long the accept loop sleeps when no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Tuning knobs for [`NetServer::bind`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Engine workers, which is also the **maximum number of concurrent
    /// connections**: each connection occupies one long-lived engine
    /// task, and further accepts queue until a worker frees up.
    pub workers: usize,
    /// Per-connection send window in bytes: the cap on values decoded
    /// but not yet handed to the socket, metered through a
    /// [`ByteBudget`]. Also sizes the `Data` frames (half a window).
    pub window_bytes: u64,
    /// Deadline for mid-frame reads, the opening handshake, and socket
    /// writes. A peer that stalls past it loses its connection; *idle*
    /// connections (between requests) are not subject to it.
    pub io_timeout: Duration,
    /// Decoded-segment cache shared by every connection's reader.
    /// `None` uses [`SegmentCache::global`]; tests and embedders inject
    /// an isolated instance ([`SegmentCache::isolated`]) so the stats
    /// the server reports are its own traffic only.
    pub segment_cache: Option<Arc<SegmentCache>>,
    /// Engine running the connection tasks. `None` (the default) spins
    /// up a dedicated engine with `workers` workers, so connection
    /// tasks never compete with decode pipelines on the process-wide
    /// engine.
    pub engine: Option<Engine>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            workers: 4,
            window_bytes: 1 << 20,
            io_timeout: Duration::from_secs(5),
            segment_cache: None,
            engine: None,
        }
    }
}

/// Counter snapshot of a server (see [`ServerHandle::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered (including ones answered with an `Error`).
    pub requests: u64,
    /// Connections closed for protocol violations (bad magic, unknown
    /// tags, oversized frames, truncated requests).
    pub proto_errors: u64,
    /// Connections dropped for I/O trouble (timeouts, resets, stalled
    /// readers, mid-stream failures).
    pub dropped: u64,
    /// Segment-cache traffic attributable to this server (delta since
    /// bind; cross-connection reuse shows up as `cache.hits`).
    pub cache: SegmentCacheStats,
}

/// State shared between the accept loop, connection tasks, and handles.
#[derive(Debug)]
struct Shared {
    service: StoreService,
    cache: Arc<SegmentCache>,
    cache_base: SegmentCacheStats,
    window: u64,
    io_timeout: Duration,
    stop: AtomicBool,
    active: AtomicUsize,
    connections: AtomicU64,
    requests: AtomicU64,
    proto_errors: AtomicU64,
    dropped: AtomicU64,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            // ordering: Relaxed — monotonic observability counters; a
            // snapshot needs no cross-counter consistency. (Applies to
            // the four loads below.)
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            proto_errors: self.proto_errors.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            cache: self.cache.stats().since(&self.cache_base),
        }
    }

    fn stopping(&self) -> bool {
        // ordering: Acquire — pairs with shutdown's Release store so
        // whatever the stopping thread wrote before requesting shutdown
        // is visible to loops that observe the flag and wind down.
        self.stop.load(Ordering::Acquire)
    }
}

/// A cloneable remote control for a running [`NetServer`]: request
/// shutdown and read counters from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Asks the server to stop: the accept loop exits, idle connections
    /// close at their next stop poll (~25 ms), and [`NetServer::run`]
    /// returns once every connection has finished.
    pub fn shutdown(&self) {
        // ordering: Release — pairs with the Acquire in stopping();
        // publishes any state the requester wrote before the flag.
        self.shared.stop.store(true, Ordering::Release);
    }

    /// Current counter snapshot (valid during and after the run).
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }
}

/// A bound-but-not-yet-running trace server (see the crate docs for the
/// protocol and an end-to-end example).
#[derive(Debug)]
pub struct NetServer {
    listener: TcpListener,
    engine: Engine,
    shared: Arc<Shared>,
}

impl NetServer {
    /// Binds `addr` and validates the store under `root` (a bad
    /// manifest fails here, not on the first request). Port 0 picks an
    /// ephemeral port — read it back with [`NetServer::local_addr`].
    ///
    /// # Errors
    ///
    /// Fails on bind errors and on anything
    /// [`StoreService::open_with`] can fail on.
    pub fn bind<P: AsRef<Path>, A: ToSocketAddrs>(
        root: P,
        addr: A,
        options: ServeOptions,
    ) -> Result<Self> {
        let cache = options.segment_cache.unwrap_or_else(SegmentCache::global);
        // Connections decode serially (threads: 1): each already has a
        // whole engine task to itself, and nested decode tasks could
        // deadlock a worker pool full of blocked connections.
        let service = StoreService::open_with(
            root,
            ReadOptions {
                threads: 1,
                segment_cache: Some(Arc::clone(&cache)),
                ..ReadOptions::default()
            },
        )?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let workers = options.workers.max(1);
        let engine = options.engine.unwrap_or_else(|| Engine::new(workers));
        let cache_base = cache.stats();
        Ok(Self {
            listener,
            engine,
            shared: Arc::new(Shared {
                service,
                cache,
                cache_base,
                window: options.window_bytes.max(64),
                io_timeout: options.io_timeout.max(Duration::from_millis(1)),
                stop: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                connections: AtomicU64::new(0),
                requests: AtomicU64::new(0),
                proto_errors: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        })
    }

    /// The bound address (the real port when bound to port 0).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> Result<SocketAddr> {
        Ok(self.listener.local_addr()?)
    }

    /// A remote control usable from other threads while `run` blocks.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serves until [`ServerHandle::shutdown`], then waits for the
    /// in-flight connections to finish and returns the final counters.
    ///
    /// # Errors
    ///
    /// Fails only on accept-loop I/O errors (individual connection
    /// failures are counted, never fatal).
    pub fn run(self) -> Result<ServerStats> {
        while !self.shared.stopping() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // ordering: Relaxed — observability counter only.
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    // ordering: AcqRel — `active` gates shutdown: the
                    // increment must be visible before the connection
                    // does work, and the matching decrement (below, in
                    // Leave::drop) must publish the connection's effects
                    // to the Acquire drain loop at the end of run().
                    self.shared.active.fetch_add(1, Ordering::AcqRel);
                    let shared = Arc::clone(&self.shared);
                    self.engine.submit_any(move || {
                        // Decrement on every exit path, panics included,
                        // or shutdown would wait forever.
                        struct Leave<'a>(&'a Shared);
                        impl Drop for Leave<'_> {
                            fn drop(&mut self) {
                                // ordering: AcqRel — the Release half
                                // publishes this connection's counter
                                // updates to run()'s Acquire drain loop.
                                self.0.active.fetch_sub(1, Ordering::AcqRel);
                            }
                        }
                        let _leave = Leave(&shared);
                        serve_connection(stream, &shared);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // ordering: Acquire — pairs with Leave::drop's AcqRel decrement
        // so the final stats snapshot sees every connection's counters.
        while self.shared.active.load(Ordering::Acquire) > 0 {
            std::thread::sleep(ACCEPT_POLL);
        }
        Ok(self.shared.stats())
    }
}

/// Is this error a read/write that merely hit its timeout?
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Fills `buf` from a socket carrying a short poll timeout, giving up at
/// `deadline`. Unlike `read_exact`, a timeout mid-way surfaces as
/// `TimedOut` only after the deadline truly lapsed — short pauses under
/// the deadline just keep reading.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], deadline: Instant) -> std::io::Result<()> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if Instant::now() >= deadline {
                    return Err(ErrorKind::TimedOut.into());
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// How a connection ended (drives which counter it lands in).
enum ConnExit {
    /// Peer closed cleanly, or the server is shutting down.
    Clean,
    /// Protocol violation: bad magic, malformed or oversized frames.
    Protocol,
    /// I/O trouble: timeouts, resets, stalled reader, mid-stream abort.
    Io,
}

/// Serves one connection to completion, filing its exit in the stats.
fn serve_connection(stream: TcpStream, shared: &Shared) {
    let exit = match drive_connection(stream, shared) {
        Ok(exit) => exit,
        // Socket trouble (timeouts, resets, truncation) files under
        // `dropped`; anything else that escaped as an error was the
        // peer speaking the protocol wrong.
        Err(AtcError::Io(_)) => ConnExit::Io,
        Err(_) => ConnExit::Protocol,
    };
    match exit {
        ConnExit::Clean => {}
        ConnExit::Protocol => {
            // ordering: Relaxed — observability counter; published to
            // the final snapshot by Leave::drop's AcqRel decrement.
            shared.proto_errors.fetch_add(1, Ordering::Relaxed);
        }
        ConnExit::Io => {
            // ordering: Relaxed — ditto.
            shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The connection state machine: handshake, then a request loop.
fn drive_connection(mut stream: TcpStream, shared: &Shared) -> Result<ConnExit> {
    stream.set_nodelay(true).ok();
    // Reads poll in short slices so the stop flag is never more than
    // ~STOP_POLL away; writes block up to the full I/O deadline.
    stream.set_read_timeout(Some(STOP_POLL))?;
    stream.set_write_timeout(Some(shared.io_timeout))?;
    let mut writer = BufWriter::new(stream.try_clone()?);

    // Handshake: banner out, the client's banner + Hello back in, both
    // under the I/O deadline (a connect-and-ignore peer must not pin a
    // worker forever).
    writer.get_mut().write_all(&NET_MAGIC)?;
    writer.get_mut().flush()?;
    let deadline = Instant::now() + shared.io_timeout;
    let mut magic = [0u8; NET_MAGIC.len()];
    read_full(&mut stream, &mut magic, deadline)?;
    if magic != NET_MAGIC {
        send_error(&mut writer, "bad magic: this is an ATCNET1 trace service");
        return Ok(ConnExit::Protocol);
    }
    match checked_frame(&mut stream, shared, Some(deadline), &mut writer)? {
        None => return Ok(ConnExit::Clean),
        Some(Err(exit)) => return Ok(exit),
        Some(Ok(body)) => match NetRequest::decode(&body) {
            Ok(NetRequest::Hello { version }) if version <= NET_PROTOCOL_VERSION => {
                NetResponse::Hello {
                    version: NET_PROTOCOL_VERSION,
                }
                .write(&mut writer)?;
                writer.flush()?;
            }
            Ok(NetRequest::Hello { version }) => {
                send_error(
                    &mut writer,
                    &format!("unsupported protocol version {version}"),
                );
                return Ok(ConnExit::Protocol);
            }
            Ok(_) => {
                send_error(&mut writer, "expected Hello as the first request");
                return Ok(ConnExit::Protocol);
            }
            Err(e) => {
                send_error(&mut writer, &e.to_string());
                return Ok(ConnExit::Protocol);
            }
        },
    }

    // Request loop: idle waits are unbounded (but stop-aware), bodies
    // must arrive within the I/O deadline once their length starts.
    loop {
        let body = match checked_frame(&mut stream, shared, None, &mut writer)? {
            None => return Ok(ConnExit::Clean),
            Some(Err(exit)) => return Ok(exit),
            Some(Ok(body)) => body,
        };
        // ordering: Relaxed — observability counter; published to the
        // final snapshot by Leave::drop's AcqRel decrement.
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let request = match NetRequest::decode(&body) {
            Ok(request) => request,
            Err(e) => {
                send_error(&mut writer, &e.to_string());
                return Ok(ConnExit::Protocol);
            }
        };
        match request {
            NetRequest::Hello { .. } => {
                // A repeat Hello is harmless; answer it again.
                NetResponse::Hello {
                    version: NET_PROTOCOL_VERSION,
                }
                .write(&mut writer)?;
                writer.flush()?;
            }
            NetRequest::StatStore => {
                let manifest = shared.service.manifest();
                let cache = shared.cache.stats().since(&shared.cache_base);
                NetResponse::Stat(NetStat {
                    manifest_version: manifest.version,
                    policy: manifest.policy.clone(),
                    count: manifest.count,
                    shard_counts: manifest.shard_counts.clone(),
                    exact_merge: shared.service.merge_is_exact(),
                    cache_hits: cache.hits,
                    cache_misses: cache.misses,
                })
                .write(&mut writer)?;
                writer.flush()?;
            }
            NetRequest::ReadRange { start, end } => {
                let keep = stream_response(shared, &mut writer, |chunk, sink| {
                    shared.service.read_range_chunked(start..end, chunk, sink)
                })?;
                if !keep {
                    return Ok(ConnExit::Io);
                }
            }
            NetRequest::StreamShard { shard, from } => {
                let keep = stream_response(shared, &mut writer, |chunk, sink| {
                    shared
                        .service
                        .stream_shard_chunked(shard as usize, from, chunk, sink)
                })?;
                if !keep {
                    return Ok(ConnExit::Io);
                }
            }
        }
    }
}

/// Runs one streaming query through the send window and writes its
/// `Data*`/`Done` (or `Error`) frames. Returns whether the connection
/// is still healthy enough to keep serving:
///
/// * query rejected before any data (bad range/shard) — `Error` frame,
///   keep the connection;
/// * failure after data went out, or during shutdown — best-effort
///   `Error` frame, drop the connection (the client's stream is torn
///   mid-way and cannot be resynchronized);
/// * socket errors propagate as `Err` (the peer is gone).
fn stream_response<W, Q>(shared: &Shared, writer: &mut BufWriter<W>, query: Q) -> Result<bool>
where
    W: Write,
    Q: FnOnce(usize, &mut dyn FnMut(&[u64]) -> Result<()>) -> Result<()>,
{
    // Half-window data frames: the window always holds the frame being
    // built plus the previous one still in flight.
    let chunk_values = ((shared.window / 2) / 8).clamp(1, 1 << 19) as usize;
    let budget = ByteBudget::new(shared.window);
    let mut sent_values = 0u64;
    let mut socket_error: Option<std::io::Error> = None;
    let result = query(chunk_values, &mut |chunk: &[u64]| {
        if shared.stopping() {
            return Err(AtcError::Format("server is shutting down".into()));
        }
        let bytes = chunk.len() as u64 * 8;
        // The budget meters decoded-but-unflushed bytes: once the next
        // chunk would overflow the window, the flush below blocks on
        // the client actually draining the socket — that stall *is*
        // the backpressure, and a reader stalled past the write
        // timeout surfaces here as an I/O error.
        if budget.in_use() > 0 && budget.in_use() + bytes > budget.cap() {
            if let Err(e) = writer.flush() {
                socket_error = Some(e);
                return Err(AtcError::Format("socket write failed".into()));
            }
            budget.release(budget.in_use());
        }
        budget.acquire(bytes);
        if let Err(e) = write_values(writer, chunk) {
            socket_error = Some(e);
            return Err(AtcError::Format("socket write failed".into()));
        }
        sent_values += chunk.len() as u64;
        Ok(())
    });
    if let Some(io) = socket_error {
        return Err(io.into());
    }
    match result {
        Ok(()) => {
            NetResponse::Done {
                values: sent_values,
            }
            .write(writer)?;
            writer.flush()?;
            Ok(true)
        }
        Err(e) => {
            send_error(writer, &e.to_string());
            // Before any data went out the reply is a clean one-frame
            // Error and the session can continue; after, the stream is
            // torn and the connection must go.
            Ok(sent_values == 0)
        }
    }
}

/// Writes one `Data` frame, unwrapping the error back to `io::Error` so
/// the caller can distinguish socket trouble from store trouble.
fn write_values<W: Write>(writer: &mut W, values: &[u64]) -> std::io::Result<()> {
    NetResponse::write_values_frame(writer, values).map_err(|e| match e {
        AtcError::Io(io) => io,
        other => std::io::Error::other(other.to_string()),
    })
}

/// Best-effort `Error` frame: the peer may already be gone, and the
/// connection is usually about to close anyway.
fn send_error<W: Write>(writer: &mut BufWriter<W>, message: &str) {
    let _ = NetResponse::Error {
        message: message.to_string(),
    }
    .write(writer);
    let _ = writer.flush();
}

/// [`read_request_frame`] with the protocol errors answered: a frame
/// the peer framed wrong (oversized declared length, overlong varint,
/// zero length) gets a best-effort `Error` frame before the close,
/// surfaced as `Some(Err(exit))`; socket errors still propagate.
fn checked_frame<W: Write>(
    stream: &mut TcpStream,
    shared: &Shared,
    deadline: Option<Instant>,
    writer: &mut BufWriter<W>,
) -> Result<Option<std::result::Result<Vec<u8>, ConnExit>>> {
    match read_request_frame(stream, shared, deadline) {
        Ok(None) => Ok(None),
        Ok(Some(body)) => Ok(Some(Ok(body))),
        Err(AtcError::Io(io)) => Err(AtcError::Io(io)),
        Err(e) => {
            send_error(writer, &e.to_string());
            Ok(Some(Err(ConnExit::Protocol)))
        }
    }
}

/// Reads one request frame. The wait for the *first* byte is unbounded
/// when `deadline` is `None` (an idle client costs nothing but its
/// socket) yet re-checks the stop flag every [`STOP_POLL`]; once a
/// length byte arrives, the rest of the frame must land within the
/// server's I/O deadline. `Ok(None)` means a clean close (EOF at a
/// frame boundary, or shutdown).
fn read_request_frame(
    stream: &mut TcpStream,
    shared: &Shared,
    deadline: Option<Instant>,
) -> Result<Option<Vec<u8>>> {
    let first = loop {
        if shared.stopping() {
            return Ok(None);
        }
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => break byte[0],
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => {
                if let Some(deadline) = deadline {
                    if Instant::now() >= deadline {
                        return Err(AtcError::Io(ErrorKind::TimedOut.into()));
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    };
    let deadline = Instant::now() + shared.io_timeout;
    // Finish the length varint whose first byte is already consumed.
    let len = if first & 0x80 == 0 {
        u64::from(first)
    } else {
        let mut value = u64::from(first & 0x7F);
        let mut shift = 7u32;
        loop {
            let mut byte = [0u8; 1];
            read_full(stream, &mut byte, deadline)?;
            value |= u64::from(byte[0] & 0x7F) << shift;
            if byte[0] & 0x80 == 0 {
                break;
            }
            shift += 7;
            if shift > 63 {
                return Err(AtcError::Format("frame length varint overflows".into()));
            }
        }
        value
    };
    net_check_frame_len(len)?;
    // bounded: len was checked against NET_MAX_FRAME just above.
    let mut body = vec![0u8; len as usize];
    read_full(stream, &mut body, deadline)?;
    Ok(Some(body))
}
