//! Shared fixtures for the net test binaries: scratch stores and
//! loopback servers on ephemeral ports.
#![allow(dead_code)]

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use atc_cache::SegmentCache;
use atc_core::{AtcOptions, Mode, Result};
use atc_net::{NetServer, ServeOptions, ServerHandle, ServerStats};
use atc_store::{AtcStore, ShardPolicy, StoreOptions, StoreReader};

/// A scratch directory unique to this test and process.
pub fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("atc-net-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Packs a lossless store of `n` keyed addresses under `root` and
/// returns them in arrival order (what the merged read-back replays).
pub fn build_store(
    root: &std::path::Path,
    shards: usize,
    policy: ShardPolicy,
    n: u64,
    buffer: usize,
    codec: &str,
) -> Vec<u64> {
    let mut store = AtcStore::create(
        root,
        Mode::Lossless,
        StoreOptions {
            shards,
            policy,
            atc: AtcOptions {
                codec: codec.into(),
                buffer,
                threads: 1,
            },
            max_buffered_bytes: None,
        },
    )
    .unwrap();
    let mut addrs = Vec::with_capacity(n as usize);
    for i in 0..n {
        // Bursty keys and a few address regions, so thread-id and
        // addr-range policies both produce non-trivial interleaves.
        let addr = (i % 5) << 16 | (i.wrapping_mul(8) & 0xFFFF);
        store.code_from((i / 13) % 4, addr).unwrap();
        addrs.push(addr);
    }
    store.finish().unwrap();
    addrs
}

/// A loopback server running on its own thread.
pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ServerHandle,
    pub cache: Arc<SegmentCache>,
    join: JoinHandle<Result<ServerStats>>,
}

impl TestServer {
    /// Binds an ephemeral port over `root` and starts serving. The
    /// cache is always an isolated instance, so the stats this server
    /// reports are this test's traffic only.
    pub fn start(root: &std::path::Path, mut options: ServeOptions) -> Self {
        let cache = match options.segment_cache.take() {
            Some(cache) => cache,
            None => SegmentCache::isolated(64 << 20),
        };
        options.segment_cache = Some(Arc::clone(&cache));
        let server = NetServer::bind(root, "127.0.0.1:0", options).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.run());
        Self {
            addr,
            handle,
            cache,
            join,
        }
    }

    /// Shuts down and returns the final counters (panics on a server
    /// that failed or hung past the deadline).
    pub fn stop(self) -> ServerStats {
        self.handle.shutdown();
        let deadline = Instant::now() + Duration::from_secs(30);
        while !self.join.is_finished() {
            assert!(Instant::now() < deadline, "server did not stop in time");
            std::thread::sleep(Duration::from_millis(10));
        }
        self.join.join().unwrap().unwrap()
    }

    /// Polls the live counters until `pred` holds or `wait` lapses.
    pub fn wait_for(&self, wait: Duration, pred: impl Fn(&ServerStats) -> bool) -> bool {
        let deadline = Instant::now() + wait;
        loop {
            if pred(&self.handle.stats()) {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

/// The store's merged stream read locally (the byte-identical oracle
/// for every network reply).
pub fn local_range(root: &std::path::Path, start: u64, end: u64) -> Vec<u64> {
    let mut reader = StoreReader::open(root).unwrap();
    reader.read_range(start..end).unwrap()
}

/// One shard's full sub-stream read locally.
pub fn local_shard(root: &std::path::Path, shard: usize) -> Vec<u64> {
    let mut reader = StoreReader::open(root).unwrap();
    reader.shard(shard).decode_all().unwrap()
}
