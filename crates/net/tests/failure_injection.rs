//! Protocol fault injection: hostile and broken peers must cost the
//! server at most the one offending connection — an `Error` frame or a
//! drop, never a panic, and never a wedged sibling connection. Every
//! case ends by proving a healthy client is still served.

mod common;

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use atc_core::format::{
    read_net_frame, NetRequest, NetResponse, NET_MAGIC, NET_MAX_FRAME, NET_PROTOCOL_VERSION,
};
use atc_net::{AtcClient, ServeOptions};
use atc_store::ShardPolicy;
use common::{build_store, local_range, scratch, TestServer};

/// A small store for the cheap cases.
fn small_store(root: &std::path::Path) -> Vec<u64> {
    build_store(root, 2, ShardPolicy::RoundRobin, 4_000, 500, "lz")
}

/// Server options tuned for fault tests: quick I/O deadline so stalls
/// resolve in test time, two workers so a poisoned connection always
/// leaves a worker for the healthy probe.
fn fault_options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        io_timeout: Duration::from_millis(400),
        ..ServeOptions::default()
    }
}

/// Connects raw and consumes the server banner.
fn raw_connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut banner = [0u8; NET_MAGIC.len()];
    (&stream).read_exact(&mut banner).unwrap();
    assert_eq!(banner, NET_MAGIC, "server leads with its banner");
    stream
}

/// Full magic + Hello handshake over a raw stream.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = raw_connect(addr);
    stream.write_all(&NET_MAGIC).unwrap();
    NetRequest::Hello {
        version: NET_PROTOCOL_VERSION,
    }
    .write(&mut stream)
    .unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("hello reply");
    assert!(matches!(
        NetResponse::decode(&body).unwrap(),
        NetResponse::Hello { .. }
    ));
    stream
}

/// The after-the-fault probe: a fresh well-behaved client must still be
/// served correctly.
fn assert_healthy(addr: std::net::SocketAddr, root: &std::path::Path) {
    let mut client = AtcClient::connect(addr).unwrap();
    assert_eq!(
        client.read_range(100..300).unwrap(),
        local_range(root, 100, 300),
        "healthy client after the fault"
    );
}

#[test]
fn garbage_magic_answers_error_and_closes() {
    let root = scratch("fault-magic");
    small_store(&root);
    let server = TestServer::start(&root, fault_options());

    let mut stream = raw_connect(server.addr);
    stream.write_all(b"HTTP/1.\r\n\r\n").unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("error frame");
    match NetResponse::decode(&body).unwrap() {
        NetResponse::Error { message } => assert!(message.contains("magic"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    assert!(server.wait_for(Duration::from_secs(5), |s| s.proto_errors == 1));

    assert_healthy(server.addr, &root);
    let stats = server.stop();
    assert_eq!(stats.proto_errors, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_request_frame_drops_only_that_connection() {
    let root = scratch("fault-truncated");
    small_store(&root);
    let server = TestServer::start(&root, fault_options());

    // Declare a 20-byte request, deliver 3 bytes, hang up.
    let mut stream = raw_handshake(server.addr);
    stream.write_all(&[20u8, 0x03, 0x01, 0x02]).unwrap();
    drop(stream);
    assert!(
        server.wait_for(Duration::from_secs(5), |s| s.dropped + s.proto_errors >= 1),
        "truncated frame not accounted: {:?}",
        server.handle.stats()
    );

    // Same shape, but the peer stalls instead of closing: the I/O
    // deadline reaps it.
    let mut stream = raw_handshake(server.addr);
    stream.write_all(&[20u8, 0x03]).unwrap();
    assert!(
        server.wait_for(Duration::from_secs(5), |s| s.dropped + s.proto_errors >= 2),
        "stalled frame not reaped: {:?}",
        server.handle.stats()
    );
    drop(stream);

    assert_healthy(server.addr, &root);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    let root = scratch("fault-oversized");
    small_store(&root);
    let server = TestServer::start(&root, fault_options());

    let mut stream = raw_handshake(server.addr);
    let mut frame = Vec::new();
    atc_codec::varint::write_u64(&mut frame, NET_MAX_FRAME + 1).unwrap();
    stream.write_all(&frame).unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("error frame");
    match NetResponse::decode(&body).unwrap() {
        NetResponse::Error { message } => assert!(message.contains("cap"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }
    // The connection is gone afterwards (EOF, not a hang).
    let mut probe = [0u8; 1];
    assert_eq!((&stream).read(&mut probe).unwrap_or(0), 0);

    assert!(server.wait_for(Duration::from_secs(5), |s| s.proto_errors >= 1));
    assert_healthy(server.addr, &root);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn unknown_tags_and_non_hello_openers_answer_error() {
    let root = scratch("fault-tags");
    small_store(&root);
    let server = TestServer::start(&root, fault_options());

    // Opening with a valid frame that is not Hello.
    let mut stream = raw_connect(server.addr);
    stream.write_all(&NET_MAGIC).unwrap();
    NetRequest::StatStore.write(&mut stream).unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("error frame");
    assert!(matches!(
        NetResponse::decode(&body).unwrap(),
        NetResponse::Error { .. }
    ));

    // An unknown tag after a good handshake.
    let mut stream = raw_handshake(server.addr);
    stream.write_all(&[1u8, 0x6F]).unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("error frame");
    match NetResponse::decode(&body).unwrap() {
        NetResponse::Error { message } => assert!(message.contains("tag"), "{message}"),
        other => panic!("expected Error, got {other:?}"),
    }

    assert!(server.wait_for(Duration::from_secs(5), |s| s.proto_errors >= 2));
    assert_healthy(server.addr, &root);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn connect_and_ignore_is_reaped_by_the_handshake_deadline() {
    let root = scratch("fault-mute");
    small_store(&root);
    let server = TestServer::start(&root, fault_options());

    // Never sends a byte: must not pin its worker past the deadline.
    let stream = TcpStream::connect(server.addr).unwrap();
    assert!(
        server.wait_for(Duration::from_secs(5), |s| s.dropped >= 1),
        "mute connection not reaped: {:?}",
        server.handle.stats()
    );
    drop(stream);

    assert_healthy(server.addr, &root);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

/// The big-store cases: enough bytes that a response cannot hide in
/// socket buffers, so write-side stalls really block the server.
fn big_store(root: &std::path::Path) -> u64 {
    build_store(root, 3, ShardPolicy::RoundRobin, 1_500_000, 50_000, "store").len() as u64
}

#[test]
fn midstream_disconnect_drops_one_connection_not_the_server() {
    let root = scratch("fault-disconnect");
    let count = big_store(&root);
    let server = TestServer::start(&root, fault_options());

    // Ask for everything, read one Data frame, vanish.
    let mut stream = raw_handshake(server.addr);
    NetRequest::ReadRange {
        start: 0,
        end: count,
    }
    .write(&mut stream)
    .unwrap();
    let body = read_net_frame(&mut &stream).unwrap().expect("first data");
    assert!(matches!(
        NetResponse::decode(&body).unwrap(),
        NetResponse::Data(_)
    ));
    drop(stream);
    assert!(
        server.wait_for(Duration::from_secs(10), |s| s.dropped >= 1),
        "disconnect not detected: {:?}",
        server.handle.stats()
    );

    assert_healthy(server.addr, &root);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stalled_reader_is_dropped_while_siblings_are_served() {
    let root = scratch("fault-stall");
    let count = big_store(&root);
    let server = TestServer::start(
        &root,
        ServeOptions {
            workers: 2,
            window_bytes: 64 << 10,
            io_timeout: Duration::from_millis(400),
            ..ServeOptions::default()
        },
    );

    // Request the whole store and then read nothing: the send window
    // fills, the flush blocks on the dead socket, and the write
    // deadline reaps the connection.
    let mut stream = raw_handshake(server.addr);
    NetRequest::ReadRange {
        start: 0,
        end: count,
    }
    .write(&mut stream)
    .unwrap();

    // While the stalled connection is being reaped, a sibling on the
    // other worker still gets its data.
    assert_healthy(server.addr, &root);
    assert!(
        server.wait_for(Duration::from_secs(10), |s| s.dropped >= 1),
        "stalled reader never dropped: {:?}",
        server.handle.stats()
    );
    drop(stream);

    assert_healthy(server.addr, &root);
    let stats = server.stop();
    assert!(stats.dropped >= 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&root);
}
